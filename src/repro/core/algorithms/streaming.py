"""Streaming best-matchset-by-location for MED and MAX (Section VII future work).

The paper observes that MED's by-location problem is "fundamentally not
amenable" to single-pass streaming because a far-future match with a high
enough score can still join the best matchset at an old anchor — but
suggests that "by further exploiting properties of the scoring function
and assuming upper bounds on individual match scores (e.g., if all of
them are in (0, 1]), it should be possible to develop less blocking
algorithms that prune their state more aggressively and return result
matchsets earlier."  This module implements that algorithm for MED.

The idea: with scores bounded by ``s_max``, a match at distance ``d``
from an anchor contributes at most ``g_j(s_max) − d``.  For a pending
anchor ``l``, once the stream has advanced to position ``p`` such that
every term's best *right-side* candidate already beats that bound for
all future distances (``vR_j ≥ g_j(s_max) − (p + 1 − l)`` for every term
``j``), no future match can enter the anchor's optimal matchset, and the
anchor's result can be emitted immediately.  Anchors are finalized in
location order, so output order matches the batch algorithm.
:func:`max_by_location_streaming` applies the same idea to MAX, where
the per-anchor state is even simpler (each term's best contribution at
the anchor; incremental dominance stacks seed new anchors in O(1)).

Emitted scores are identical to :func:`repro.core.algorithms.by_location.
med_by_location`; when several matchsets tie, the chosen matchset may
differ (both algorithms break ties among equal-contribution candidates,
just at different moments).

Worst-case memory is the number of still-unfinalizable anchors — small
whenever matches keep arriving for every term, degrading gracefully to
the batch behaviour (flush at end of stream) when a term goes silent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.algorithms.base import LocationResult, validate_inputs
from repro.core.algorithms.by_location import _assign_sides
from repro.core.errors import ScoringContractError
from repro.core.match import Match, MatchList, merge_by_location
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.core.scoring.base import MaxScoring, MedScoring

__all__ = ["med_by_location_streaming", "max_by_location_streaming", "MatchEvent"]

_NEG_INF = float("-inf")

#: one stream element: (term index, match), non-decreasing in location
MatchEvent = tuple[int, Match]


@dataclass
class _Candidate:
    match: Match | None = None
    value: float = _NEG_INF

    def offer(self, match: Match, value: float) -> None:
        if value > self.value:
            self.match, self.value = match, value

    def as_pair(self) -> tuple[Match | None, float]:
        return self.match, self.value


@dataclass
class _AnchorState:
    """Per-pending-anchor candidate tables (see med_by_location)."""

    location: int
    left: list[_Candidate]
    at: list[_Candidate]
    right: list[_Candidate] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.right:
            self.right = [_Candidate() for _ in self.left]


def med_by_location_streaming(
    query: Query,
    source: Sequence[MatchList] | Iterable[MatchEvent],
    scoring: MedScoring,
    *,
    score_upper_bound: float = 1.0,
) -> Iterator[LocationResult]:
    """Single-pass MED by-location with early emission.

    Parameters
    ----------
    source:
        Either the usual per-term match lists, or a raw iterable of
        ``(term_index, match)`` events in non-decreasing location order —
        the true streaming interface (used e.g. when matches are produced
        online by a scanner).
    score_upper_bound:
        The promised upper bound on individual match scores (the paper's
        "(0, 1]" assumption).  Matches violating the bound raise
        :class:`ScoringContractError` — silently accepting them would
        invalidate already-emitted results.
    """
    if not isinstance(scoring, MedScoring):
        raise ScoringContractError(
            f"med_by_location_streaming needs a MedScoring, got {type(scoring).__name__}"
        )

    n = len(query)
    terms = query.terms
    if isinstance(source, Sequence) and all(isinstance(x, MatchList) for x in source):
        if not validate_inputs(query, list(source)):
            return
        events: Iterable[MatchEvent] = merge_by_location(list(source))
    else:
        events = source  # type: ignore[assignment]

    g_bound = [scoring.g(j, score_upper_bound) for j in range(n)]
    median_rank = (n + 1) // 2

    # Per-term running maxima over already-seen matches:
    #   left candidates maximize g + loc  (contribution at l is that − l).
    best_left: list[_Candidate] = [_Candidate() for _ in range(n)]
    pending: deque[_AnchorState] = deque()  # in increasing anchor order

    def finalize(state: _AnchorState) -> LocationResult | None:
        best_total = _NEG_INF
        best_picked: dict[str, Match] | None = None
        for t in range(n):
            anchor_match, anchor_value = state.at[t].as_pair()
            if anchor_match is None:
                continue
            others = [j for j in range(n) if j != t]
            options = [
                (
                    state.left[j].as_pair(),
                    state.at[j].as_pair(),
                    state.right[j].as_pair(),
                )
                for j in others
            ]
            assignment = _assign_sides(options, median_rank - 1, median_rank - 1)
            if assignment is None:
                continue
            total, choices = assignment
            total += anchor_value
            if total > best_total:
                picked = {terms[t]: anchor_match}
                for idx, (j, side) in enumerate(zip(others, choices)):
                    chosen = options[idx][side][0]
                    assert chosen is not None
                    picked[terms[j]] = chosen
                best_total, best_picked = total, picked
        if best_picked is None:
            return None
        return LocationResult(
            state.location, MatchSet(query, best_picked), scoring.f(best_total)
        )

    def drain_finalizable(position: int) -> Iterator[LocationResult]:
        """Emit leading pending anchors no future match can improve.

        ``position`` is the last fully processed location; future matches
        sit at ``position + 1`` or later.
        """
        while pending:
            state = pending[0]
            distance = position + 1 - state.location
            if any(
                state.right[j].value < g_bound[j] - distance for j in range(n)
            ):
                break
            pending.popleft()
            result = finalize(state)
            if result is not None:
                yield result

    def process_group(location: int, group: list[MatchEvent]) -> Iterator[LocationResult]:
        # (a) the group's matches are right-side candidates of every
        # pending (strictly earlier) anchor;
        for state in pending:
            d = location - state.location
            for j, match in group:
                state.right[j].offer(match, scoring.g(j, match.score) - d)
        # (b) open the anchor at this location: left/at tables are fixed
        # from the prefix state and this group;
        state = _AnchorState(
            location=location,
            left=[
                _Candidate(c.match, c.value - location if c.match else _NEG_INF)
                for c in best_left
            ],
            at=[_Candidate() for _ in range(n)],
        )
        for j, match in group:
            state.at[j].offer(match, scoring.g(j, match.score))
        pending.append(state)
        # (c) fold the group into the left-prefix state;
        for j, match in group:
            best_left[j].offer(match, scoring.g(j, match.score) + match.location)
        # (d) emit every anchor that can no longer change.
        yield from drain_finalizable(location)

    current_location: int | None = None
    group: list[MatchEvent] = []
    for j, match in events:
        if match.score > score_upper_bound:
            raise ScoringContractError(
                f"match score {match.score} exceeds the promised upper bound "
                f"{score_upper_bound}"
            )
        if current_location is not None and match.location < current_location:
            raise ScoringContractError(
                "match events must arrive in non-decreasing location order"
            )
        if current_location is None or match.location == current_location:
            current_location = match.location
            group.append((j, match))
            continue
        yield from process_group(current_location, group)
        current_location = match.location
        group = [(j, match)]
    if group:
        assert current_location is not None
        yield from process_group(current_location, group)

    # End of stream: everything still pending is final.
    for state in pending:
        result = finalize(state)
        if result is not None:
            yield result


def max_by_location_streaming(
    query: Query,
    source: Sequence[MatchList] | Iterable[MatchEvent],
    scoring: MaxScoring,
    *,
    score_upper_bound: float = 1.0,
) -> Iterator[LocationResult]:
    """Single-pass MAX by-location with early emission.

    Same idea as :func:`med_by_location_streaming`, simpler state: the
    by-location MAX result at anchor ``l`` is the per-term best
    contribution at ``l`` (the dominating matches), so a pending anchor
    is final once every term's current best beats the bound
    ``g_j(s_max, distance)`` that any future match is subject to.
    Matches the batch :func:`repro.core.algorithms.by_location.
    max_by_location` anchor-for-anchor on scores.
    """
    if not isinstance(scoring, MaxScoring):
        raise ScoringContractError(
            f"max_by_location_streaming needs a MaxScoring, got {type(scoring).__name__}"
        )

    n = len(query)
    terms = query.terms
    if isinstance(source, Sequence) and all(isinstance(x, MatchList) for x in source):
        if not validate_inputs(query, list(source)):
            return
        events: Iterable[MatchEvent] = merge_by_location(list(source))
    else:
        events = source  # type: ignore[assignment]

    pending: deque[_AnchorState] = deque()  # reuse: only `right` is used
    # Per-term incremental dominance stacks (the Algorithm 2 stack pass,
    # maintained online).  At any location at-or-right of the whole
    # history, at-most-one-crossing makes the *last* stack element the
    # dominating historical match, so seeding a new anchor is O(1).
    stacks: list[list[Match]] = [[] for _ in range(n)]
    contributions = [
        (lambda m, l, j=j: scoring.contribution(j, m, l)) for j in range(n)
    ]

    def push(j: int, match: Match) -> None:
        stack = stacks[j]
        c = contributions[j]
        if stack and c(match, match.location) < c(stack[-1], match.location):
            return
        while stack and c(match, stack[-1].location) >= c(stack[-1], stack[-1].location):
            stack.pop()
        stack.append(match)

    def bound(j: int, distance: int) -> float:
        return scoring.g(j, score_upper_bound, distance)

    def finalize(state: _AnchorState) -> LocationResult | None:
        picked: dict[str, Match] = {}
        total = 0.0
        for j in range(n):
            match, value = state.right[j].as_pair()
            if match is None:
                return None
            picked[terms[j]] = match
            total += value
        return LocationResult(
            state.location, MatchSet(query, picked), scoring.f(total)
        )

    def drain(position: int) -> Iterator[LocationResult]:
        while pending:
            state = pending[0]
            distance = position + 1 - state.location
            if any(
                state.right[j].value < bound(j, distance) for j in range(n)
            ):
                break
            pending.popleft()
            result = finalize(state)
            if result is not None:
                yield result

    current_location: int | None = None
    group: list[MatchEvent] = []

    def process_group(location: int, members: list[MatchEvent]) -> Iterator[LocationResult]:
        # New anchor at this location; its per-term best starts from the
        # whole history (MAX contributions look both ways symmetrically).
        state = _AnchorState(
            location=location,
            left=[_Candidate() for _ in range(n)],  # unused for MAX
            at=[_Candidate() for _ in range(n)],  # unused for MAX
        )
        # The group's matches update every pre-existing pending anchor…
        for anchor in pending:
            for j, match in members:
                anchor.right[j].offer(
                    match, scoring.contribution(j, match, anchor.location)
                )
        # …and the new anchor is seeded with each term's dominating
        # historical match (the last stack element; this group included).
        for j, match in members:
            push(j, match)
        for j in range(n):
            if stacks[j]:
                top = stacks[j][-1]
                state.right[j].offer(top, contributions[j](top, location))
        pending.append(state)
        yield from drain(location)

    for j, match in events:
        if match.score > score_upper_bound:
            raise ScoringContractError(
                f"match score {match.score} exceeds the promised upper bound "
                f"{score_upper_bound}"
            )
        if current_location is not None and match.location < current_location:
            raise ScoringContractError(
                "match events must arrive in non-decreasing location order"
            )
        if current_location is None or match.location == current_location:
            current_location = match.location
            group.append((j, match))
            continue
        yield from process_group(current_location, group)
        current_location = match.location
        group = [(j, match)]
    if group:
        assert current_location is not None
        yield from process_group(current_location, group)

    for state in pending:
        result = finalize(state)
        if result is not None:
            yield result
