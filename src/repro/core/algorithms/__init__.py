"""Join algorithms: the paper's linear best-joins and naive baselines."""

from repro.core.algorithms.auto import (
    dispatch_join,
    family_algorithm,
    is_extremely_skewed,
    select_algorithm,
)
from repro.core.algorithms.base import JoinAlgorithm, JoinResult, LocationResult
from repro.core.algorithms.by_location import (
    max_by_location,
    med_by_location,
    win_by_location,
)
from repro.core.algorithms.dedup import dedup_join
from repro.core.algorithms.envelope import (
    DominatingScanner,
    UpperEnvelope,
    dominance_stack,
)
from repro.core.algorithms.max_join import general_max_join, max_join
from repro.core.algorithms.med_join import med_join
from repro.core.algorithms.naive import naive_join, naive_join_valid, nmax, nmed, nwin
from repro.core.algorithms.streaming import (
    MatchEvent,
    max_by_location_streaming,
    med_by_location_streaming,
)
from repro.core.algorithms.topk import top_k_matchsets
from repro.core.algorithms.type_anchored import type_anchored_join
from repro.core.algorithms.win_join import win_join
from repro.core.algorithms.win_kbest import win_join_kbest, win_join_valid_lazy

__all__ = [
    "JoinAlgorithm",
    "JoinResult",
    "LocationResult",
    "naive_join",
    "naive_join_valid",
    "nwin",
    "nmed",
    "nmax",
    "win_join",
    "med_join",
    "max_join",
    "general_max_join",
    "dedup_join",
    "win_by_location",
    "med_by_location",
    "max_by_location",
    "med_by_location_streaming",
    "max_by_location_streaming",
    "MatchEvent",
    "top_k_matchsets",
    "type_anchored_join",
    "win_join_kbest",
    "win_join_valid_lazy",
    "dominance_stack",
    "DominatingScanner",
    "UpperEnvelope",
    "family_algorithm",
    "select_algorithm",
    "dispatch_join",
    "is_extremely_skewed",
]
