"""Top-k locally-best matchsets.

Applications that present several answers per document (Section I's
information-extraction motivation) need more than the single overall
best matchset but less than one matchset per location.  This module
returns the k highest-scoring *locally best* matchsets — the per-anchor
winners of the Section VII by-location problem, ranked by score — with
optional validity filtering and non-maximum suppression, for any of the
three scoring families.

Complexity is that of the underlying by-location algorithm plus an
``O(A log k)`` heap pass over the ``A`` anchors.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Sequence

from repro.core.algorithms.base import LocationResult
from repro.core.algorithms.by_location import (
    max_by_location,
    med_by_location,
    win_by_location,
)
from repro.core.errors import InvalidQueryError, ScoringContractError
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.base import MaxScoring, MedScoring, ScoringFunction, WinScoring

__all__ = ["top_k_matchsets"]


def _by_location(
    query: Query, lists: Sequence[MatchList], scoring: ScoringFunction
) -> Iterator[LocationResult]:
    if isinstance(scoring, WinScoring):
        return win_by_location(query, lists, scoring)
    if isinstance(scoring, MedScoring):
        return med_by_location(query, lists, scoring)
    if isinstance(scoring, MaxScoring):
        return max_by_location(query, lists, scoring)
    raise ScoringContractError(
        f"no by-location algorithm for {type(scoring).__name__}"
    )


def top_k_matchsets(
    query: Query,
    lists: Sequence[MatchList],
    scoring: ScoringFunction,
    k: int,
    *,
    require_valid: bool = False,
    min_anchor_gap: int = 0,
) -> list[LocationResult]:
    """The ``k`` best locally-best matchsets, best first.

    Parameters
    ----------
    k:
        Maximum number of results (fewer are returned when the document
        has fewer anchors).
    require_valid:
        Drop matchsets with duplicate matches (Section VI validity).
    min_anchor_gap:
        When positive, greedily suppress results whose anchor lies within
        the gap of an already selected (higher-scoring) result, so one
        tight cluster of matches contributes one result.

    Ties are broken toward smaller anchor locations, making results
    deterministic.
    """
    if k <= 0:
        raise InvalidQueryError(f"k must be positive, got {k}")
    candidates = (
        r
        for r in _by_location(query, lists, scoring)
        if not require_valid or r.matchset.is_valid()
    )
    if min_anchor_gap <= 0:
        # Plain top-k by (score desc, anchor asc) via a bounded heap.
        best = heapq.nsmallest(
            k, candidates, key=lambda r: (-r.score, r.anchor)
        )
        return best
    # With suppression the cutoff depends on which anchors survive, so
    # rank everything first, then greedily keep gap-respecting results.
    ranked = sorted(candidates, key=lambda r: (-r.score, r.anchor))
    kept: list[LocationResult] = []
    for r in ranked:
        if len(kept) == k:
            break
        if all(abs(r.anchor - other.anchor) >= min_anchor_gap for other in kept):
            kept.append(r)
    return kept
