"""Algorithm 2: overall best matchset under MED scoring (Section IV).

The key structural fact (Lemma 1, proved in the paper's appendix): there
is always an overall best matchset in which every match is *dominating* at
the matchset's median location.  The algorithm therefore:

1. precomputes, per match list, the dominating-match list ``V_j`` with one
   stack pass (see :mod:`repro.core.algorithms.envelope`);
2. scans all matches in location order; for each match ``m`` it assembles
   the candidate matchset consisting of ``m`` plus one dominating match at
   ``loc(m)`` per other term (ties resolved toward the match that
   *succeeds* ``m``, per footnote 3);
3. keeps the candidate only if ``m`` would be the median of the assembled
   matchset — i.e. exactly ``⌊(|Q|+1)/2⌋ − 1`` of the chosen matches lie
   strictly after ``loc(m)``;
4. returns the highest-scoring surviving candidate.

Complexity: ``O(|Q| · Σ_j |L_j|)`` time and ``O(Σ_j |L_j|)`` space.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.algorithms.base import JoinResult, validate_inputs
from repro.core.algorithms.envelope import DominatingScanner
from repro.core.errors import ScoringContractError
from repro.core.kernels import joins as kernel_joins
from repro.core.kernels.columnar import kernels_enabled
from repro.core.match import Match, MatchList, merge_by_location
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.core.scoring.base import MedScoring

__all__ = ["med_join"]


def med_join(
    query: Query,
    lists: Sequence[MatchList],
    scoring: MedScoring,
) -> JoinResult:
    """Compute the overall best matchset for a MED scoring function."""
    if not isinstance(scoring, MedScoring):
        raise ScoringContractError(
            f"med_join needs a MedScoring, got {type(scoring).__name__}"
        )
    if not validate_inputs(query, lists):
        return JoinResult.empty()
    if kernels_enabled() and kernel_joins.med_kernel_supported(scoring):
        return kernel_joins.med_join_kernel(query, lists, scoring)

    n = len(query)
    scanners = [
        DominatingScanner.for_list(
            lists[j],
            lambda m, l, j=j: scoring.contribution(j, m, l),
        )
        for j in range(n)
    ]
    median_rank = (n + 1) // 2  # 1-based rank of the median from the greatest

    best: MatchSet | None = None
    best_score = float("-inf")
    best_valid: MatchSet | None = None
    best_valid_score = float("-inf")

    terms = query.terms
    for j, m in merge_by_location(lists):
        location = m.location
        picked: dict[str, Match] = {terms[j]: m}
        strictly_after = 0  # chosen matches with loc > location
        at_or_after = 1  # m itself counts
        for k in range(n):
            if k == j:
                continue
            match, _ = scanners[k].dominating_at(location)
            assert match is not None  # lists validated non-empty
            picked[terms[k]] = match
            if match.location > location:
                strictly_after += 1
                at_or_after += 1
            elif match.location == location:
                at_or_after += 1
        # The candidate's median equals `location` iff fewer than
        # median_rank matches lie strictly after it and at least
        # median_rank lie at-or-after it.  (The paper's pseudocode checks
        # the exact count of succeeding matches, which misses medians
        # realized through equal-location ties; this equivalent direct
        # test costs the same O(|Q|) as assembling the candidate.)
        if strictly_after > median_rank - 1 or at_or_after < median_rank:
            continue
        candidate = MatchSet(query, picked)
        s = scoring.score(candidate)
        if best is None or s > best_score:
            best, best_score = candidate, s
        if (best_valid is None or s > best_valid_score) and candidate.is_valid():
            best_valid, best_valid_score = candidate, s

    assert best is not None
    return JoinResult(
        best, best_score, valid_matchset=best_valid, valid_score=(
            best_valid_score if best_valid is not None else None
        )
    )
