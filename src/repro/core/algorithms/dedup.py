"""Avoiding duplicate matches (Section VI).

A matchset is *valid* when no single document token serves two query
terms (the "china" ↔ {asia, porcelain} problem).  The paper's generic
duplicate-avoiding method wraps any duplicate-unaware join algorithm
``A``:

1. run ``A``; if the best matchset is duplicate-free, done;
2. otherwise, for every token duplicated across ``k`` terms, the token
   may legitimately serve at most one of them — build the ``k`` modified
   problem instances that keep the token's match in exactly one of the
   ``k`` lists (removing it from the other ``k − 1``), taking the cross
   product of choices over all duplicated tokens;
3. rerun ``A`` on each modified instance, recursing when results still
   contain duplicates, and return the best valid matchset found.

The implementation memoizes visited instances (sets of removed
``(term, match)`` pairs) so no instance runs twice, and counts the number
of invocations of ``A`` — the quantity the paper plots in Figure 8.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

from repro.core.algorithms.base import JoinAlgorithm, JoinResult, validate_inputs
from repro.core.errors import InvalidMatchListError
from repro.core.kernels.columnar import derive_kernels
from repro.core.match import Match, MatchList
from repro.core.query import Query
from repro.core.scoring.base import ScoringFunction

__all__ = ["dedup_join"]

# Remove one occurrence of `match` from the list of `term`.  The trailing
# occurrence index distinguishes repeated removals of value-equal matches
# (a list may legitimately contain two identical (location, score) pairs).
_Removal = tuple[str, Match, int]


def _removed_indices(lst: MatchList, to_remove: Sequence[Match]) -> set[int]:
    """Indices ``list.remove`` would take for ``to_remove``, applied in order.

    Each removal claims the first not-yet-claimed value-equal occurrence
    — the same occurrence sequential :meth:`MatchList.without` calls
    would delete — located by bisecting to the match's equal-location
    run instead of scanning from the front.
    """
    removed: set[int] = set()
    locations = lst.locations
    for match in to_remove:
        i = lst.first_at_or_after(match.location)
        while i < len(locations) and locations[i] == match.location:
            if i not in removed and lst[i] == match:
                removed.add(i)
                break
            i += 1
        else:
            raise InvalidMatchListError(f"{match!r} not present in list")
    return removed


def _apply_removals(
    query: Query,
    lists: Sequence[MatchList],
    removals: frozenset[_Removal],
) -> list[MatchList] | None:
    """Match lists with the removals applied; None when a list empties.

    Reduced lists are built by index so the parent's cached columnar
    kernels can be derived structurally (:func:`derive_kernels`) — a
    Section VI restart then re-joins without re-transforming a single
    score.
    """
    by_term: dict[str, list[Match]] = {}
    for term, match, _occurrence in removals:
        by_term.setdefault(term, []).append(match)
    modified: list[MatchList] = []
    for j, term in enumerate(query.terms):
        lst = lists[j]
        to_remove = by_term.get(term)
        if to_remove:
            removed = _removed_indices(lst, to_remove)
            if len(removed) == len(lst):
                return None
            kept = [i for i in range(len(lst)) if i not in removed]
            child = MatchList(
                (lst[i] for i in kept), term=lst.term, presorted=True
            )
            derive_kernels(lst, child, kept)
            lst = child
        elif not len(lst):
            return None
        modified.append(lst)
    return modified


def _with_removal(removals: set[_Removal], term: str, match: Match) -> None:
    """Add one more occurrence-indexed removal of (term, match)."""
    occurrence = sum(1 for t, m, _k in removals if t == term and m == match)
    removals.add((term, match, occurrence))


def dedup_join(
    query: Query,
    lists: Sequence[MatchList],
    scoring: ScoringFunction,
    algorithm: JoinAlgorithm,
    *,
    max_invocations: int | None = None,
) -> JoinResult:
    """Best *valid* matchset via the Section VI restart method.

    Parameters
    ----------
    algorithm:
        Any duplicate-unaware overall-best-matchset algorithm
        (``win_join``, ``med_join``, ``max_join`` or ``naive_join``).
    max_invocations:
        Optional safety cap on reruns of ``algorithm``; the paper notes
        the worst case enumerates every subset of duplicates, but
        realistic inputs need only a handful of reruns (Figure 8).  When
        the cap is hit the best valid matchset found so far is returned
        (possibly empty).

    Returns
    -------
    JoinResult
        The best valid matchset, with ``invocations`` set to the number
        of times ``algorithm`` ran.  Empty when no valid matchset exists.
    """
    if not validate_inputs(query, lists):
        return JoinResult.empty(invocations=0)

    best: JoinResult | None = None
    invocations = 0
    seen: set[frozenset[_Removal]] = {frozenset()}
    # Best-first branch and bound.  A child instance's match lists are
    # subsets of its parent's, so the parent's (duplicate-laden) score is
    # an upper bound on anything the subtree can produce; processing
    # instances in decreasing bound order lets us stop as soon as the
    # best remaining bound cannot beat the best valid matchset found.
    tiebreak = itertools.count()
    frontier: list[tuple[float, int, frozenset[_Removal]]] = [
        (float("-inf"), next(tiebreak), frozenset())  # -bound; root runs first
    ]

    while frontier:
        if max_invocations is not None and invocations >= max_invocations:
            break
        neg_bound, _, removals = heapq.heappop(frontier)
        if best is not None and -neg_bound <= best.score:  # type: ignore[operator]
            break  # every remaining instance is bounded at or below best
        instance = _apply_removals(query, lists, removals)
        if instance is None:
            continue
        result = algorithm(query, instance, scoring)
        invocations += 1
        if not result:
            continue
        matchset = result.matchset
        assert matchset is not None and result.score is not None
        # A valid candidate scanned along the way is a sound lower bound
        # (its reported score may itself be a lower bound, so recompute).
        if result.valid_matchset is not None:
            valid_score = scoring.score(result.valid_matchset)
            if best is None or valid_score > best.score:  # type: ignore[operator]
                best = JoinResult(result.valid_matchset, valid_score)
        if matchset.is_valid():
            if best is None or result.score > best.score:  # type: ignore[operator]
                best = result
            continue
        if best is not None and result.score <= best.score:  # type: ignore[operator]
            continue  # children can only do worse than this invalid result
        # Expand: one child instance per way of assigning each duplicated
        # token to a single term (remove the match from every other term's
        # list).
        group_choices: list[list[tuple[tuple[str, Match], ...]]] = []
        for terms in matchset.duplicate_groups():
            choices: list[tuple[tuple[str, Match], ...]] = []
            for keeper in terms:
                choices.append(
                    tuple((t, matchset[t]) for t in terms if t != keeper)
                )
            group_choices.append(choices)
        for combo in itertools.product(*group_choices):
            grown: set[_Removal] = set(removals)
            for part in combo:
                for term, match in part:
                    _with_removal(grown, term, match)
            child = frozenset(grown)
            if child not in seen:
                seen.add(child)
                heapq.heappush(frontier, (-result.score, next(tiebreak), child))

    if best is None:
        return JoinResult.empty(invocations=invocations)
    return JoinResult(best.matchset, best.score, invocations)
