"""Best matchset by location (Section VII).

Instead of one overall best matchset per document, these algorithms
return, for every possible *anchor* location, a best matchset anchored
there (Definition 10) — the primitive behind extracting *all* good
matchsets for information-extraction applications.  Anchors per family
(Definition 9): WIN → the largest match location; MED → the median match
location; MAX → the score-maximizing reference location.

* :func:`win_by_location` — streaming: the Algorithm 1 DP emits, as soon
  as all matches at a location have been processed, the best matchset
  whose *last* match sits there.  Space is independent of list sizes;
  complexity ``O(2^|Q|·Σ|L_j|)``.

* :func:`med_by_location` — the paper sketches the key fact and defers
  details to its technical report; we derive the algorithm it implies.
  In a best matchset anchored (by median) at ``l``, each match must
  dominate, *at* ``l``, every same-term match on the same side of ``l``
  (an exchange within one side preserves the median and cannot lower the
  score).  Because MED contributions have unit slope, the best same-term
  candidate strictly left of ``l`` maximizes ``g + loc``, the best
  strictly right maximizes ``g − loc``, and the best exactly at ``l``
  maximizes ``g`` — all answerable with prefix/suffix maxima and one
  per-location table.  A small DP then assigns each non-anchor term a
  side subject to the median-rank constraints: with ``r* = ⌊(|Q|+1)/2⌋``
  (the median's 1-based rank from the greatest location),
  ``#right < r* ≤ #right + #at + 1``.  Complexity ``O(|Q|²·Σ|L_j|)``
  (matching the paper's bound; the DP is ``O(|Q|²)`` per anchor term).

* :func:`max_by_location` — after the Section V precomputation, evaluate
  the dominating-match matchset at *every* match location (not only
  dominating-match locations); ``O(|Q|·Σ|L_j|)``.

All three yield :class:`LocationResult` items in increasing anchor order.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Sequence

from repro.core.algorithms.base import LocationResult, validate_inputs
from repro.core.algorithms.envelope import DominatingScanner, dominance_stack
from repro.core.errors import ScoringContractError
from repro.core.kernels import joins as kernel_joins
from repro.core.kernels.columnar import kernels_enabled, lower
from repro.core.match import Match, MatchList, merge_by_location
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.core.scoring.base import MaxScoring, MedScoring, WinScoring

__all__ = ["win_by_location", "med_by_location", "max_by_location"]

_NEG_INF = float("-inf")


# ---------------------------------------------------------------------------
# WIN (streaming)
# ---------------------------------------------------------------------------

def win_by_location(
    query: Query,
    lists: Sequence[MatchList],
    scoring: WinScoring,
) -> Iterator[LocationResult]:
    """Best matchset per anchor (= last-match) location under WIN.

    A single left-to-right pass over the merged match lists; each anchor's
    result is emitted as soon as the location is complete, making this a
    true streaming algorithm (Section VII's "Note on Streaming").
    """
    if not isinstance(scoring, WinScoring):
        raise ScoringContractError(
            f"win_by_location needs a WinScoring, got {type(scoring).__name__}"
        )
    if not validate_inputs(query, lists):
        return
    if kernels_enabled():
        yield from kernel_joins.win_by_location_kernel(query, lists, scoring)
        return

    n = len(query)
    full = (1 << n) - 1
    masks_with = [[mask for mask in range(1, full + 1) if mask >> j & 1] for j in range(n)]
    states: list[tuple[float, int, object] | None] = [None] * (full + 1)
    f = scoring.f

    pending_anchor: int | None = None
    pending_score = _NEG_INF
    pending_chain: object = None

    def emit() -> LocationResult:
        picked: dict[str, Match] = {}
        node = pending_chain
        while node is not None:
            j, match, node = node  # type: ignore[misc]
            picked[query[j]] = match
        assert pending_anchor is not None
        return LocationResult(pending_anchor, MatchSet(query, picked), pending_score)

    for j, match in merge_by_location(lists):
        g = scoring.g(j, match.score)
        l = match.location
        if pending_anchor is not None and l > pending_anchor:
            if pending_chain is not None:
                yield emit()
            pending_anchor, pending_score, pending_chain = None, _NEG_INF, None

        bit = 1 << j
        for mask in masks_with[j]:
            current = states[mask]
            if mask == bit:
                if current is None or f(current[0], l - current[1]) < f(g, 0.0):
                    states[mask] = (g, l, (j, match, None))
                continue
            prev = states[mask ^ bit]
            if prev is None:
                continue
            if current is None or (
                f(current[0], l - current[1]) < f(prev[0] + g, l - prev[1])
            ):
                states[mask] = (prev[0] + g, prev[1], (j, match, prev[2]))

        # Candidate anchored at l: this match plus the best matchset over
        # the remaining terms seen so far (which may include other matches
        # at l that were already processed).
        rest = states[full ^ bit]
        if n == 1:
            candidate_score = f(g, 0.0)
            candidate_chain = (j, match, None)
        elif rest is not None:
            candidate_score = f(rest[0] + g, l - rest[1])
            candidate_chain = (j, match, rest[2])
        else:
            continue
        if pending_anchor is None:
            pending_anchor = l
        if candidate_score > pending_score:
            pending_score = candidate_score
            pending_chain = candidate_chain

    if pending_anchor is not None and pending_chain is not None:
        yield emit()


# ---------------------------------------------------------------------------
# MED
# ---------------------------------------------------------------------------

class _SideIndex:
    """Per-term side-dominating-candidate queries for MED contributions.

    For a term with transformed scores ``g_i`` at locations ``loc_i``
    (increasing), answers in O(log n):

    * best strictly-left candidate at ``l``: maximizes
      ``c = (g + loc) − l`` over ``loc < l``;
    * best strictly-right candidate at ``l``: maximizes
      ``c = (g − loc) + l`` over ``loc > l``;
    * best at-``l`` candidate: maximizes ``g`` over ``loc == l``.
    """

    __slots__ = ("_locations", "_matches", "_g", "_prefix", "_suffix", "_at")

    def __init__(self, matches: MatchList, g_values: Sequence[float]) -> None:
        self._locations = matches.locations
        self._matches = matches
        self._g = list(g_values)

        self._prefix: list[int] = []  # argmax of g + loc over matches[:i+1]
        best = -1
        best_val = _NEG_INF
        for i, (m, g) in enumerate(zip(matches, g_values)):
            if g + m.location > best_val:
                best, best_val = i, g + m.location
            self._prefix.append(best)

        self._suffix: list[int] = [0] * len(matches)  # argmax of g − loc over matches[i:]
        best = -1
        best_val = _NEG_INF
        for i in range(len(matches) - 1, -1, -1):
            g = g_values[i]
            loc = matches[i].location
            if g - loc >= best_val:
                best, best_val = i, g - loc
            self._suffix[i] = best

        self._at: dict[int, int] = {}
        for i, (m, g) in enumerate(zip(matches, g_values)):
            cur = self._at.get(m.location)
            if cur is None or g > g_values[cur]:
                self._at[m.location] = i

    def left(self, location: int) -> tuple[Match | None, float]:
        """Best candidate with ``loc < location`` and its contribution at it."""
        idx = bisect.bisect_left(self._locations, location)
        if idx == 0:
            return None, _NEG_INF
        i = self._prefix[idx - 1]
        m = self._matches[i]
        return m, self._g[i] - (location - m.location)

    def right(self, location: int) -> tuple[Match | None, float]:
        """Best candidate with ``loc > location`` and its contribution at it."""
        idx = bisect.bisect_right(self._locations, location)
        if idx >= len(self._locations):
            return None, _NEG_INF
        i = self._suffix[idx]
        m = self._matches[i]
        return m, self._g[i] - (m.location - location)

    def at(self, location: int) -> tuple[Match | None, float]:
        """Best candidate exactly at ``location`` and its contribution (= g)."""
        i = self._at.get(location)
        if i is None:
            return None, _NEG_INF
        return self._matches[i], self._g[i]


def _assign_sides(
    options: list[tuple[tuple[Match | None, float], ...]],
    max_right: int,
    min_right_or_at: int,
) -> tuple[float, list[int]] | None:
    """Pick one side (0=left, 1=at, 2=right) per term under rank constraints.

    Maximizes total contribution subject to ``#right ≤ max_right`` and
    ``#right + #at ≥ min_right_or_at``.  Returns (total, choices) or None
    when infeasible.  DP over (terms, #right, #right+#at): O(|Q|³) with
    the small |Q| of real queries.
    """
    n_terms = len(options)
    # dp maps (n_right, n_right_or_at) -> (total, choices-so-far as tuple)
    dp: dict[tuple[int, int], tuple[float, tuple[int, ...]]] = {(0, 0): (0.0, ())}
    for term_options in options:
        nxt: dict[tuple[int, int], tuple[float, tuple[int, ...]]] = {}
        for (n_r, n_ra), (total, choices) in dp.items():
            for side, (match, value) in enumerate(term_options):
                if match is None:
                    continue
                key = (n_r + (side == 2), n_ra + (side >= 1))
                if key[0] > max_right:
                    continue
                cand = (total + value, choices + (side,))
                if key not in nxt or cand[0] > nxt[key][0]:
                    nxt[key] = cand
        dp = nxt
        if not dp:
            return None
    best: tuple[float, tuple[int, ...]] | None = None
    for (n_r, n_ra), (total, choices) in dp.items():
        if n_ra < min_right_or_at:
            continue
        if best is None or total > best[0]:
            best = (total, choices)
    if best is None:
        return None
    return best[0], list(best[1])


def med_by_location(
    query: Query,
    lists: Sequence[MatchList],
    scoring: MedScoring,
) -> Iterator[LocationResult]:
    """Best matchset per anchor (= median) location under MED."""
    if not isinstance(scoring, MedScoring):
        raise ScoringContractError(
            f"med_by_location needs a MedScoring, got {type(scoring).__name__}"
        )
    if not validate_inputs(query, lists):
        return

    n = len(query)
    terms = query.terms
    median_rank = (n + 1) // 2  # 1-based from the greatest location
    if kernels_enabled():
        # Same g values, read from the cached columnar lowering instead
        # of one scoring.g call per match.
        indexes = [
            _SideIndex(lists[j], lower(lists[j], scoring, j).g) for j in range(n)
        ]
    else:
        indexes = [
            _SideIndex(lists[j], [scoring.g(j, m.score) for m in lists[j]])
            for j in range(n)
        ]

    anchor_locations = sorted({loc for lst in lists for loc in lst.locations})
    for location in anchor_locations:
        best_total = _NEG_INF
        best_picked: dict[str, Match] | None = None
        for t in range(n):
            anchor_match, anchor_value = indexes[t].at(location)
            if anchor_match is None:
                continue
            others = [j for j in range(n) if j != t]
            options = [
                (
                    indexes[j].left(location),
                    indexes[j].at(location),
                    indexes[j].right(location),
                )
                for j in others
            ]
            # The anchor match itself counts once toward #(loc ≥ anchor);
            # the remaining picks need #right ≤ r*−1 and
            # #right + #at ≥ r*−1.
            assignment = _assign_sides(options, median_rank - 1, median_rank - 1)
            if assignment is None:
                continue
            total, choices = assignment
            total += anchor_value
            if total > best_total:
                picked = {terms[t]: anchor_match}
                for idx, (j, side) in enumerate(zip(others, choices)):
                    chosen = options[idx][side][0]
                    assert chosen is not None
                    picked[terms[j]] = chosen
                best_total = total
                best_picked = picked
        if best_picked is not None:
            matchset = MatchSet(query, best_picked)
            yield LocationResult(location, matchset, scoring.f(best_total))


# ---------------------------------------------------------------------------
# MAX
# ---------------------------------------------------------------------------

def max_by_location(
    query: Query,
    lists: Sequence[MatchList],
    scoring: MaxScoring,
) -> Iterator[LocationResult]:
    """Best matchset per anchor (= reference) location under MAX.

    After the dominance-stack precomputation, every match location ``l``
    (not just dominating-match locations) yields the candidate matchset
    of per-term dominating matches at ``l``, scored at ``l``.
    """
    if not isinstance(scoring, MaxScoring):
        raise ScoringContractError(
            f"max_by_location needs a MaxScoring, got {type(scoring).__name__}"
        )
    if not scoring.at_most_one_crossing:
        raise ScoringContractError(
            "max_by_location requires the at-most-one-crossing property"
        )
    if not validate_inputs(query, lists):
        return
    if kernels_enabled() and kernel_joins.max_kernel_supported(scoring):
        yield from kernel_joins.max_by_location_kernel(query, lists, scoring)
        return

    n = len(query)
    terms = query.terms
    contributions = [
        (lambda m, l, j=j: scoring.contribution(j, m, l)) for j in range(n)
    ]
    scanners = [
        DominatingScanner(dominance_stack(lists[j], contributions[j]), contributions[j])
        for j in range(n)
    ]

    anchor_locations = sorted({loc for lst in lists for loc in lst.locations})
    for location in anchor_locations:
        total = 0.0
        picked: dict[str, Match] = {}
        for k in range(n):
            match, _ = scanners[k].dominating_at(location)
            assert match is not None  # lists validated non-empty
            picked[terms[k]] = match
            total += contributions[k](match, location)
        yield LocationResult(location, MatchSet(query, picked), scoring.f(total))
