"""Linear best-join for type-anchored scoring (citation [7]).

See :class:`repro.core.scoring.type_anchored.TypeAnchoredMax` for the
scoring function.  For every match ``m`` of the type term (at location
``l``), the best matchset containing ``m`` pairs it with a dominating
match at ``l`` for every other term — the replacement argument of
Lemma 2 with the anchor fixed.  One dominance-stack precomputation plus
one scan over the type term's list: ``O(|Q| · Σ_j |L_j|)``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.algorithms.base import JoinResult, validate_inputs
from repro.core.algorithms.envelope import DominatingScanner, dominance_stack
from repro.core.errors import ScoringContractError
from repro.core.match import Match, MatchList
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.core.scoring.type_anchored import TypeAnchoredMax

__all__ = ["type_anchored_join"]


def type_anchored_join(
    query: Query,
    lists: Sequence[MatchList],
    scoring: TypeAnchoredMax,
) -> JoinResult:
    """Best matchset under type-anchored scoring, in linear time."""
    if not isinstance(scoring, TypeAnchoredMax):
        raise ScoringContractError(
            f"type_anchored_join needs a TypeAnchoredMax, got {type(scoring).__name__}"
        )
    if scoring.type_term_index >= len(query):
        raise ScoringContractError(
            f"type term index {scoring.type_term_index} outside the "
            f"{len(query)}-term query"
        )
    if not validate_inputs(query, lists):
        return JoinResult.empty()

    n = len(query)
    t = scoring.type_term_index
    contributions = [
        (lambda m, l, j=j: scoring.contribution(j, m, l)) for j in range(n)
    ]
    scanners = [
        DominatingScanner(dominance_stack(lists[j], contributions[j]), contributions[j])
        for j in range(n)
    ]

    terms = query.terms
    best_picked: dict[str, Match] | None = None
    best_total = float("-inf")
    for type_match in lists[t]:
        location = type_match.location
        total = contributions[t](type_match, location)
        picked: dict[str, Match] = {terms[t]: type_match}
        for k in range(n):
            if k == t:
                continue
            match, _ = scanners[k].dominating_at(location)
            assert match is not None  # lists validated non-empty
            picked[terms[k]] = match
            total += contributions[k](match, location)
        if best_picked is None or total > best_total:
            best_picked, best_total = picked, total

    assert best_picked is not None
    return JoinResult(MatchSet(query, best_picked), scoring.f(best_total))
