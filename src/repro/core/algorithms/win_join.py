"""Algorithm 1: overall best matchset under WIN scoring (Section III).

Dynamic program over the nonempty subsets ``P ⊆ Q``.  Matches are
processed in increasing location order; for every subset ``P`` the
algorithm remembers a best *partial* P-matchset at the previous match
location, represented by its transformed-score total ``g_P^Σ`` and its
minimum match location ``l_P^min`` (the two quantities the WIN score
depends on, enabling O(1) incremental score computation).

The recurrence (proved in the paper via the optimal substructure property
of ``f``): a best P-matchset at the i-th location either doesn't contain
the i-th match — in which case a best P-matchset at the previous location
still wins — or it does, in which case extending a best
``(P \\ {q_j})``-matchset with the new match wins.

A match for term ``q_j`` can only change states whose subset contains
``q_j``, and it reads only states *not* containing ``q_j`` (which this
match never writes), so the per-match update order over subsets is
immaterial; we precompute, per term, the list of subset bitmasks
containing that term.

Complexity: ``O(2^|Q| · Σ_j |L_j|)`` time, ``O(|Q| · 2^|Q|)`` space —
linear in the total size of the match lists, with a small constant-base
exponential in the (small) number of query terms.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.algorithms.base import JoinResult, validate_inputs
from repro.core.errors import ScoringContractError
from repro.core.kernels import joins as kernel_joins
from repro.core.kernels.columnar import kernels_enabled
from repro.core.match import Match, MatchList, merge_by_location
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.core.scoring.base import WinScoring

__all__ = ["win_join"]

# A DP state is (g_sum, l_min, chain); ``chain`` is a persistent linked
# list of (term_index, match, parent) cells so that updating a state is
# O(1) instead of copying a |Q|-sized matchset.
_Chain = tuple[int, Match, "_Chain | None"]


def _chain_to_matchset(query: Query, chain: _Chain | None) -> MatchSet:
    picked: dict[str, Match] = {}
    node = chain
    while node is not None:
        j, match, node = node
        picked[query[j]] = match
    return MatchSet(query, picked)


def win_join(
    query: Query,
    lists: Sequence[MatchList],
    scoring: WinScoring,
) -> JoinResult:
    """Compute the overall best matchset for a WIN scoring function.

    Parameters
    ----------
    query, lists:
        The query and its per-term match lists (``lists[j]`` for
        ``query[j]``).
    scoring:
        A :class:`~repro.core.scoring.base.WinScoring` whose ``f``
        satisfies Definition 3 (monotonicity + optimal substructure).
    """
    if not isinstance(scoring, WinScoring):
        raise ScoringContractError(
            f"win_join needs a WinScoring, got {type(scoring).__name__}"
        )
    if not validate_inputs(query, lists):
        return JoinResult.empty()
    if kernels_enabled():
        # Byte-identical columnar twin; WIN joins consume only the pure
        # g/f hooks, so every WinScoring is kernel-eligible.
        return kernel_joins.win_join_kernel(query, lists, scoring)

    n = len(query)
    full = (1 << n) - 1
    # masks_with[j]: all subset bitmasks containing term j.
    masks_with = [[mask for mask in range(1, full + 1) if mask >> j & 1] for j in range(n)]

    # states[mask] = (g_sum, l_min, chain) for the best partial matchset
    # over the terms in ``mask`` seen so far, or None.
    states: list[tuple[float, int, _Chain] | None] = [None] * (full + 1)

    best_chain: _Chain | None = None
    best_score = float("-inf")
    best_valid_chain: _Chain | None = None
    best_valid_score = float("-inf")

    def chain_is_valid(chain: _Chain | None) -> bool:
        token_ids: set[object] = set()
        count = 0
        node = chain
        while node is not None:
            _j, match, node = node
            token_ids.add(match.token_id)
            count += 1
        return len(token_ids) == count

    f = scoring.f
    for j, match in merge_by_location(lists):
        g = scoring.g(j, match.score)
        l = match.location
        bit = 1 << j
        for mask in masks_with[j]:
            current = states[mask]
            if mask == bit:
                # Best single-term matchset for q_j at l.
                if current is None or f(current[0], l - current[1]) < f(g, 0.0):
                    states[mask] = (g, l, (j, match, None))
                continue
            prev = states[mask ^ bit]
            if prev is None:
                continue
            cand_g = prev[0] + g
            cand_lmin = prev[1]
            if current is None or (
                f(current[0], l - current[1]) < f(cand_g, l - cand_lmin)
            ):
                states[mask] = (cand_g, cand_lmin, (j, match, prev[2]))

        complete = states[full]
        if complete is not None:
            s = f(complete[0], l - complete[1])
            if best_chain is None or s > best_score:
                best_score = s
                best_chain = complete[2]
            if (
                best_valid_chain is None or s > best_valid_score
            ) and chain_is_valid(complete[2]):
                best_valid_score = s
                best_valid_chain = complete[2]

    assert best_chain is not None
    return JoinResult(
        _chain_to_matchset(query, best_chain),
        best_score,
        valid_matchset=(
            _chain_to_matchset(query, best_valid_chain)
            if best_valid_chain is not None
            else None
        ),
        valid_score=best_valid_score if best_valid_chain is not None else None,
    )
