"""Overall best matchset under MAX scoring (Section V).

Two implementations:

* :func:`max_join` — the efficient specialized algorithm for MAX scoring
  functions with the *at-most-one-crossing* and *maximized-at-match*
  properties (Definition 8; both Eq. (4) and Eq. (5) qualify, Lemma 3).
  It precomputes the dominating-match list ``V_j`` per term (same stack
  pass as Algorithm 2, with MAX contributions), then scans the locations
  of dominating matches in order; at each such location ``l`` it forms the
  matchset of per-term dominating matches and evaluates the contribution
  total ``Σ_j S_j(l)``.  By Lemma 2 the best such candidate is an overall
  best matchset, and the maximized-at-match property guarantees the
  maximizing ``l`` appears among the scanned locations.
  Complexity ``O(|Q| · Σ_j |L_j|)``.

* :func:`general_max_join` — Section V's *general approach*: materialize
  every term's contribution upper envelope as interval–match pairs and
  maximize ``Σ_j S_j(l)`` over the union of envelope breakpoints.  Cost is
  linear in the total number of interval–match pairs, which
  at-most-one-crossing bounds by ``Σ_j |L_j|`` but which can blow up for
  contribution curves that intersect repeatedly (Figure 5).  Kept as an
  independently-derived oracle and for scoring functions that lack
  at-most-one-crossing but still break at envelope boundaries.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.algorithms.base import JoinResult, validate_inputs
from repro.core.algorithms.envelope import DominatingScanner, UpperEnvelope, dominance_stack
from repro.core.errors import ScoringContractError
from repro.core.kernels import joins as kernel_joins
from repro.core.kernels.columnar import kernels_enabled
from repro.core.match import Match, MatchList
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.core.scoring.base import MaxScoring

__all__ = ["max_join", "general_max_join"]


def _require_max(scoring: MaxScoring, caller: str) -> None:
    if not isinstance(scoring, MaxScoring):
        raise ScoringContractError(
            f"{caller} needs a MaxScoring, got {type(scoring).__name__}"
        )


def max_join(
    query: Query,
    lists: Sequence[MatchList],
    scoring: MaxScoring,
) -> JoinResult:
    """Specialized linear-time MAX join (Section V).

    Requires ``scoring.at_most_one_crossing`` (for the dominance-stack
    precomputation) and ``scoring.maximized_at_match`` (so anchor
    candidates can be restricted to dominating-match locations).
    """
    _require_max(scoring, "max_join")
    if not (scoring.at_most_one_crossing and scoring.maximized_at_match):
        raise ScoringContractError(
            "max_join requires at-most-one-crossing and maximized-at-match; "
            "use general_max_join or the naive algorithm instead"
        )
    if not validate_inputs(query, lists):
        return JoinResult.empty()
    if kernels_enabled() and kernel_joins.max_kernel_supported(scoring):
        return kernel_joins.max_join_kernel(query, lists, scoring)

    n = len(query)
    contributions = [
        (lambda m, l, j=j: scoring.contribution(j, m, l)) for j in range(n)
    ]
    stacks = [dominance_stack(lists[j], contributions[j]) for j in range(n)]
    scanners = [DominatingScanner(stacks[j], contributions[j]) for j in range(n)]

    # Anchor candidates: locations of dominating matches, in order.
    candidate_locations = sorted({m.location for stack in stacks for m in stack})

    terms = query.terms
    best_picked: dict[str, Match] | None = None
    best_total = float("-inf")
    best_valid_picked: dict[str, Match] | None = None
    best_valid_total = float("-inf")
    for location in candidate_locations:
        total = 0.0
        picked: dict[str, Match] = {}
        for k in range(n):
            match, _ = scanners[k].dominating_at(location)
            assert match is not None  # lists validated non-empty
            picked[terms[k]] = match
            total += contributions[k](match, location)
        if best_picked is None or total > best_total:
            best_picked, best_total = picked, total
        if best_valid_picked is None or total > best_valid_total:
            token_ids = {m.token_id for m in picked.values()}
            if len(token_ids) == n:
                best_valid_picked, best_valid_total = picked, total

    assert best_picked is not None
    valid_matchset = (
        MatchSet(query, best_valid_picked) if best_valid_picked is not None else None
    )
    return JoinResult(
        MatchSet(query, best_picked),
        scoring.f(best_total),
        valid_matchset=valid_matchset,
        valid_score=scoring.f(best_valid_total) if valid_matchset is not None else None,
    )


def general_max_join(
    query: Query,
    lists: Sequence[MatchList],
    scoring: MaxScoring,
) -> JoinResult:
    """Section V's general approach via materialized upper envelopes.

    Computes ``U_j``/``S_j`` as interval–match pairs, then maximizes
    ``Σ_j S_j(l)`` over the union of all envelopes' breakpoints (segment
    boundaries plus envelope-match locations).  For contribution shapes
    that are linear or convex between breakpoints — true for Eqs. (4) and
    (5) and for MED-style tents — this candidate set is exact.
    """
    _require_max(scoring, "general_max_join")
    if not validate_inputs(query, lists):
        return JoinResult.empty()

    n = len(query)
    contributions = [
        (lambda m, l, j=j: scoring.contribution(j, m, l)) for j in range(n)
    ]
    envelopes = [UpperEnvelope(lists[j], contributions[j]) for j in range(n)]

    candidate_locations: set[int] = set()
    for env in envelopes:
        candidate_locations.update(env.breakpoints())

    terms = query.terms
    best_picked: dict[str, Match] | None = None
    best_total = float("-inf")
    for location in sorted(candidate_locations):
        total = 0.0
        picked: dict[str, Match] = {}
        for k in range(n):
            match = envelopes[k].dominating_at(location)
            assert match is not None
            picked[terms[k]] = match
            total += contributions[k](match, location)
        if best_picked is None or total > best_total:
            best_picked, best_total = picked, total

    assert best_picked is not None
    return JoinResult(MatchSet(query, best_picked), scoring.f(best_total))
