"""Dominating matches and contribution upper envelopes (Sections IV–V).

Given a match list ``L_j`` and a *contribution* function ``c_j(m, l)``
(score contribution of match ``m`` at reference location ``l``), the paper
defines (Definition 6):

* ``m`` **dominates** ``m'`` at ``l`` when ``c_j(m, l) ≥ c_j(m', l)``;
* the **dominating match function** ``U_j(l)`` returns a match maximizing
  the contribution at ``l``;
* the **contribution upper envelope** ``S_j(l) = max_m c_j(m, l)``.

For contribution functions with the *at-most-one-crossing* property
(Definition 8; MED's unit-slope tents and both shipped MAX functions
qualify), ``U_j`` is representable by at most ``|L_j|`` matches, computed
by one stack pass over the list (the ``PrecomputeDomMatchFunc`` routine of
Algorithm 2).  Ties are broken toward the match that comes *last* in the
list (footnote 4), which the stack pass implements by using ``≥`` in the
dominance test.

:class:`DominatingScanner` then answers "a dominating match at ``l``" for
non-decreasing query locations in amortized O(1): the candidates are the
last stack match at or before ``l`` and the first one after ``l``.

:class:`UpperEnvelope` materializes the interval–match-pair representation
used by Section V's *general approach* (each maximal interval on which
``U_j`` is constant, found by binary-searching the crossover between
consecutive stack matches).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.match import Match

__all__ = [
    "Contribution",
    "dominance_stack",
    "DominatingScanner",
    "UpperEnvelope",
]

# c(m, l): contribution of match m at reference location l.
Contribution = Callable[[Match, int], float]


def dominance_stack(matches: Sequence[Match], contribution: Contribution) -> list[Match]:
    """The dominating-match list ``V_j`` for one match list.

    One pass with a stack (``PrecomputeDomMatchFunc`` in Algorithm 2):
    a match that does not dominate the stack top at its own location is
    discarded; otherwise it pops every stack match it dominates *at that
    match's location* and is pushed.  For at-most-one-crossing
    contributions the resulting stack, bottom to top, lists the matches
    achieving the upper envelope in increasing location order.

    O(n): every match is pushed and popped at most once.
    """
    stack: list[Match] = []
    for m in matches:
        if stack and contribution(m, m.location) < contribution(stack[-1], m.location):
            continue
        while stack and contribution(m, stack[-1].location) >= contribution(
            stack[-1], stack[-1].location
        ):
            stack.pop()
        stack.append(m)
    return stack


class DominatingScanner:
    """Serve dominating-match queries at non-decreasing locations.

    Wraps one term's dominating-match list ``V_j``.  For a query location
    ``l`` the dominating match is one of two candidates: the last match in
    ``V_j`` located at or before ``l`` and the first located after ``l``
    (the envelope is unimodal between consecutive stack matches).  Because
    the join algorithms scan locations left to right, a single advancing
    pointer services all queries in amortized O(1).

    In case of ties the *successor* candidate wins, matching the paper's
    tie-break rule ("we always pick one that succeeds m in processing
    order, if such a match exists").
    """

    __slots__ = ("_stack", "_contribution", "_pos", "_last")

    def __init__(self, stack: Sequence[Match], contribution: Contribution) -> None:
        self._stack = list(stack)
        self._contribution = contribution
        self._pos = 0
        self._last: Match | None = None

    @classmethod
    def for_list(cls, matches: Sequence[Match], contribution: Contribution) -> "DominatingScanner":
        return cls(dominance_stack(matches, contribution), contribution)

    def _advance(self, location: int) -> None:
        stack = self._stack
        pos = self._pos
        while pos < len(stack) and stack[pos].location <= location:
            self._last = stack[pos]
            pos += 1
        self._pos = pos

    def dominating_at(self, location: int) -> tuple[Match | None, bool]:
        """Dominating match at ``location`` and whether it lies after it.

        Returns ``(match, succeeds)`` where ``succeeds`` is True when the
        chosen match is located strictly after ``location`` (needed by
        Algorithm 2's median-rank counting).  ``match`` is None only when
        the underlying match list was empty.

        Query locations must be non-decreasing across calls.
        """
        self._advance(location)
        before = self._last
        after = self._stack[self._pos] if self._pos < len(self._stack) else None
        if after is not None and (
            before is None
            or self._contribution(after, location) >= self._contribution(before, location)
        ):
            return after, True
        return before, False

    def value_at(self, location: int) -> float:
        """The envelope value ``S_j(l)`` (contribution of the dominator)."""
        match, _ = self.dominating_at(location)
        if match is None:
            return float("-inf")
        return self._contribution(match, location)


@dataclass(frozen=True, slots=True)
class EnvelopeSegment:
    """One interval–match pair ``(I, m)``: ``U_j(l) = m`` for ``l ∈ I``."""

    start: int  # inclusive
    end: int | None  # inclusive; None = unbounded to the right
    match: Match


class UpperEnvelope:
    """Interval–match-pair representation of ``U_j`` (Section V).

    Built from the dominance stack by binary-searching, for each pair of
    consecutive stack matches ``(a, b)``, the smallest integer location at
    which ``b`` dominates ``a``.  At-most-one-crossing guarantees the
    dominance predicate is monotone on ``(loc(a), loc(b)]``, so binary
    search is sound; the segment count is at most ``|L_j|``.
    """

    __slots__ = ("_segments", "_starts", "_contribution")

    def __init__(self, matches: Sequence[Match], contribution: Contribution) -> None:
        self._contribution = contribution
        stack = dominance_stack(matches, contribution)
        segments: list[EnvelopeSegment] = []
        if stack:
            current_start = -(1 << 60)
            for a, b in zip(stack, stack[1:]):
                crossover = self._crossover(a, b)
                segments.append(EnvelopeSegment(current_start, crossover - 1, a))
                current_start = crossover
            segments.append(EnvelopeSegment(current_start, None, stack[-1]))
        self._segments = segments
        self._starts = [seg.start for seg in segments]

    def _crossover(self, a: Match, b: Match) -> int:
        """Smallest integer ``l`` at which ``b`` dominates ``a``.

        ``b`` does not dominate ``a`` at ``loc(a)`` (else the stack pass
        would have popped ``a``) and does dominate at ``loc(b)``, so the
        crossover lies in ``(loc(a), loc(b)]``.
        """
        c = self._contribution
        lo, hi = a.location + 1, b.location
        while lo < hi:
            mid = (lo + hi) // 2
            if c(b, mid) >= c(a, mid):
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def segments(self) -> list[EnvelopeSegment]:
        return list(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def dominating_at(self, location: int) -> Match | None:
        """``U_j(l)`` via bisection over segment starts — O(log n), any order."""
        if not self._segments:
            return None
        idx = bisect.bisect_right(self._starts, location) - 1
        return self._segments[max(idx, 0)].match

    def value_at(self, location: int) -> float:
        """``S_j(l)``."""
        match = self.dominating_at(location)
        if match is None:
            return float("-inf")
        return self._contribution(match, location)

    def breakpoints(self) -> list[int]:
        """Segment boundaries plus the envelope matches' own locations.

        For piecewise contribution shapes whose extrema sit at match
        locations or segment switches (true for both shipped MAX
        functions and for MED tents), these locations contain the argmax
        of any sum of envelopes.
        """
        points: set[int] = set()
        for seg in self._segments:
            if seg.start > -(1 << 59):
                points.add(seg.start)
            if seg.end is not None:
                points.add(seg.end)
            points.add(seg.match.location)
        return sorted(points)
