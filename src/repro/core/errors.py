"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch one type to handle any library failure.  The subclasses make the
failure mode explicit: bad input data, an empty join, or a scoring function
that violates the contract an algorithm relies on.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidMatchError",
    "InvalidMatchListError",
    "InvalidQueryError",
    "EmptyJoinError",
    "ScoringContractError",
    "NoValidMatchSetError",
    "SerializationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidMatchError(ReproError, ValueError):
    """A match has an invalid location or score."""


class InvalidMatchListError(ReproError, ValueError):
    """A match list is malformed (e.g., not sorted by location)."""


class InvalidQueryError(ReproError, ValueError):
    """A query is malformed (e.g., empty or with duplicate terms)."""


class EmptyJoinError(ReproError):
    """No matchset exists because at least one match list is empty."""


class ScoringContractError(ReproError, TypeError):
    """A scoring function does not satisfy the contract an algorithm needs.

    For example, Algorithm 1 (WIN) requires the optimal substructure
    property, and the specialized MAX join requires at-most-one-crossing
    and maximized-at-match contribution functions.
    """


class NoValidMatchSetError(ReproError):
    """No duplicate-free matchset exists for the given match lists."""


class SerializationError(ReproError, ValueError):
    """Malformed or incompatible serialized data."""
