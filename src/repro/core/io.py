"""JSON (de)serialization for the core data model.

Pipelines that compute match lists in one process (or store them next to
an index) and join them in another need a stable interchange format.
This module round-trips matches, match lists, matchsets and join results
through plain JSON-compatible dicts, plus file helpers.

The format is versioned; loading rejects unknown versions so silently
misreading future formats is impossible.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Sequence

from repro.core.errors import ReproError, SerializationError
from repro.core.match import Match, MatchList
from repro.core.matchset import MatchSet
from repro.core.query import Query

__all__ = [
    "FORMAT_VERSION",
    "SerializationError",
    "match_to_dict",
    "match_from_dict",
    "match_list_to_dict",
    "match_list_from_dict",
    "matchset_to_dict",
    "matchset_from_dict",
    "save_match_lists",
    "load_match_lists",
]

FORMAT_VERSION = 1


def match_to_dict(match: Match) -> dict[str, Any]:
    data: dict[str, Any] = {"location": match.location, "score": match.score}
    if match.token is not None:
        data["token"] = match.token
    if match.token_id != match.location:
        data["token_id"] = match.token_id
    return data


def match_from_dict(data: dict[str, Any]) -> Match:
    try:
        return Match(
            location=data["location"],
            score=data["score"],
            token=data.get("token"),
            token_id=data.get("token_id"),
        )
    except (KeyError, TypeError, ReproError) as exc:
        raise SerializationError(f"bad match record {data!r}: {exc}") from exc


def match_list_to_dict(lst: MatchList) -> dict[str, Any]:
    return {"term": lst.term, "matches": [match_to_dict(m) for m in lst]}


def match_list_from_dict(data: dict[str, Any]) -> MatchList:
    try:
        matches = [match_from_dict(m) for m in data["matches"]]
    except KeyError as exc:
        raise SerializationError(f"match list record missing {exc}") from exc
    return MatchList(matches, term=data.get("term"))


def matchset_to_dict(matchset: MatchSet) -> dict[str, Any]:
    return {
        "terms": list(matchset.query),
        "matches": {term: match_to_dict(m) for term, m in matchset.items()},
    }


def matchset_from_dict(data: dict[str, Any]) -> MatchSet:
    try:
        query = Query(data["terms"])
        matches = {
            term: match_from_dict(record)
            for term, record in data["matches"].items()
        }
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"bad matchset record: {exc}") from exc
    return MatchSet(query, matches)


def save_match_lists(
    path: str | pathlib.Path,
    query: Query,
    lists: Sequence[MatchList],
) -> None:
    """Persist a query's match lists as one JSON document."""
    payload = {
        "version": FORMAT_VERSION,
        "terms": list(query),
        "lists": [match_list_to_dict(lst) for lst in lists],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=1))


def load_match_lists(path: str | pathlib.Path) -> tuple[Query, list[MatchList]]:
    """Load a query and its match lists saved by :func:`save_match_lists`."""
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"not valid JSON: {path}") from exc
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported match-list format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    query = Query(payload["terms"])
    lists = [match_list_from_dict(item) for item in payload["lists"]]
    if len(lists) != len(query):
        raise SerializationError(
            f"{len(query)} terms but {len(lists)} match lists in {path}"
        )
    return query, lists
