"""Columnar join kernels: primitive-array inner loops for the best-joins.

See :mod:`repro.core.kernels.columnar` for the lowering/caching layer and
:mod:`repro.core.kernels.joins` for the kernel-path join implementations.
Disable the whole layer with ``REPRO_NO_KERNELS=1``.
"""

from repro.core.kernels.columnar import (
    STATS,
    KernelStats,
    ListKernel,
    bound_combine,
    bound_transform,
    derive_kernels,
    kernels_enabled,
    lower,
    max_g_sum,
)
from repro.core.kernels.joins import (
    max_by_location_kernel,
    max_join_kernel,
    max_kernel_supported,
    med_join_kernel,
    med_kernel_supported,
    win_by_location_kernel,
    win_join_kernel,
)

__all__ = [
    "ListKernel",
    "KernelStats",
    "STATS",
    "kernels_enabled",
    "lower",
    "derive_kernels",
    "max_g_sum",
    "bound_transform",
    "bound_combine",
    "win_join_kernel",
    "med_join_kernel",
    "max_join_kernel",
    "win_by_location_kernel",
    "max_by_location_kernel",
    "med_kernel_supported",
    "max_kernel_supported",
]
