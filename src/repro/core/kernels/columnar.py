"""Columnar lowering of ``(MatchList, ScoringFunction)`` pairs.

The join algorithms are linear in the total match-list size, but the
object path pays Python overhead on every step: each inner-loop
iteration touches a frozen :class:`~repro.core.match.Match` dataclass
and re-calls ``scoring.g(...)`` even though ``g`` is a pure function of
the (immutable) match score.  A :class:`ListKernel` pays those costs
*once* per ``(match list, scoring, term index)`` triple: it lowers the
list into parallel primitive arrays —

* ``locations`` — ``array('q')`` of match locations,
* ``g`` — ``array('d')`` of g-transformed scores (the family's
  per-term transform at distance zero),
* ``scores`` — ``array('d')`` of raw match scores (MAX family only;
  distance-decayed contributions still need them),
* ``token_ids`` — token identities for duplicate detection,

plus a cached ``max_g`` (``max_j g_j`` over the list), which is exactly
the per-attribute max-score metadata Fagin-style threshold algorithms
precompute: it turns the top-k upper bound of
:func:`repro.retrieval.topk_retrieval.score_upper_bound` into an
``O(|Q|)`` sum of constants instead of an ``O(Σ|L_j|)`` rescan.

Kernels are memoized on the match list itself (lists are immutable, so
a kernel can never go stale) under a key derived from
:meth:`~repro.core.scoring.base.ScoringFunction.kernel_key`, letting
scoring *instances* that are configured identically — e.g. the fresh
preset objects :class:`repro.service.QueryExecutor` builds per request
— share one lowering.  Index mutations produce new ``MatchList``
objects (the :class:`~repro.index.matchlists.ConceptIndex` list cache
is keyed by ``SearchSystem.index_generation``), so kernel lifetime is
generation-exact by construction.

``g`` must be pure (deterministic, side-effect free) for memoization to
be sound; every scoring function in this library is.  Setting the
environment variable ``REPRO_NO_KERNELS=1`` disables the kernel path
everywhere and restores the original object-path joins — the escape
hatch the differential tests use to prove byte-identical results.
"""

from __future__ import annotations

import os
from array import array
from typing import Sequence

from repro.core.errors import ScoringContractError
from repro.core.match import MatchList
from repro.core.scoring.base import MaxScoring, MedScoring, ScoringFunction, WinScoring

__all__ = [
    "ListKernel",
    "KernelStats",
    "STATS",
    "kernels_enabled",
    "lower",
    "derive_kernels",
    "max_g_sum",
    "bound_transform",
    "bound_combine",
]

# Per-list cap on cached kernels; evicts insertion-oldest beyond this.
# A list is normally joined under a handful of scoring configurations.
_CACHE_CAP = 8

_DISABLING_VALUES = frozenset({"1", "true", "yes", "on"})


def kernels_enabled() -> bool:
    """True unless ``REPRO_NO_KERNELS`` selects the object path."""
    return os.environ.get("REPRO_NO_KERNELS", "").lower() not in _DISABLING_VALUES


class KernelStats:
    """Process-wide lowering counters (benchmark instrumentation).

    ``lowerings`` counts full O(|L|) list scans (kernel builds),
    ``cache_hits`` counts O(1) reuses, ``derived`` counts kernels
    copied structurally from a parent (dedup restarts — no ``g``
    recomputation).  The join-kernel benchmark uses ``lowerings`` to
    prove that top-k bounding stops rescanning match lists once warm.
    """

    __slots__ = ("lowerings", "cache_hits", "derived")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.lowerings = 0
        self.cache_hits = 0
        self.derived = 0

    def snapshot(self) -> dict:
        return {
            "lowerings": self.lowerings,
            "cache_hits": self.cache_hits,
            "derived": self.derived,
        }


STATS = KernelStats()


class ListKernel:
    """One match list lowered to primitive parallel arrays.

    ``g`` holds the family transform of each match score: ``g_j(x)``
    for WIN/MED, ``g_j(x, 0)`` for MAX (the distance-zero contribution,
    as the dominance-stack passes evaluate it).  ``g_bound`` holds the
    values the top-k upper bound maximizes over — identical to ``g``
    for WIN/MED; for MAX it is ``g_j(x, 0.0)``, mirroring the float
    literal the object-path bound uses so results stay byte-identical.
    ``max_g = max(g_bound)`` is the per-list max-score constant.
    """

    __slots__ = (
        "n",
        "locations",
        "g",
        "g_bound",
        "scores",
        "token_ids",
        "max_g",
        "_hold",
        "_stack",
    )

    def __init__(
        self,
        locations: array,
        g: array,
        g_bound: array,
        scores: array | None,
        token_ids: Sequence[object],
        *,
        hold: object = None,
    ) -> None:
        self.n = len(locations)
        self.locations = locations
        self.g = g
        self.g_bound = g_bound
        self.scores = scores
        self.token_ids = token_ids
        self.max_g = max(g_bound)
        # Keeps an id-keyed scoring alive so its id() cannot be recycled
        # into a colliding cache key while this kernel is cached.
        self._hold = hold
        # Lazily-built dominance stack (MED/MAX joins).  A kernel is
        # specific to one (scoring config, term index), which fully
        # determines the stack, so it is cached here once computed.
        self._stack: list[int] | None = None

    def take(self, kept: Sequence[int]) -> "ListKernel":
        """A kernel over the sub-list at ``kept`` indices (in order).

        Structural copy — no ``g`` calls — used when the Section VI
        duplicate-handling method reruns a join on a list with a few
        matches removed.
        """
        locations = array("q", (self.locations[i] for i in kept))
        g = array("d", (self.g[i] for i in kept))
        if self.g_bound is self.g:
            g_bound = g
        else:
            g_bound = array("d", (self.g_bound[i] for i in kept))
        scores = (
            None if self.scores is None else array("d", (self.scores[i] for i in kept))
        )
        toks = self.token_ids
        try:
            token_ids = array("q", (toks[i] for i in kept))
        except (TypeError, OverflowError):
            token_ids = tuple(toks[i] for i in kept)
        return ListKernel(locations, g, g_bound, scores, token_ids, hold=self._hold)


def _build(lst: MatchList, scoring: ScoringFunction, j: int, hold: object) -> ListKernel:
    locations = array("q", lst.locations)
    try:
        token_ids = array("q", (m.token_id for m in lst))
    except (TypeError, OverflowError):
        token_ids = tuple(m.token_id for m in lst)
    if isinstance(scoring, (WinScoring, MedScoring)):
        gf = scoring.g
        g = array("d", (gf(j, m.score) for m in lst))
        return ListKernel(locations, g, g, None, token_ids, hold=hold)
    if isinstance(scoring, MaxScoring):
        gf = scoring.g
        scores = array("d", (m.score for m in lst))
        # The joins evaluate distance-zero contributions with an int 0
        # (via abs(loc - loc)); the top-k bound uses the literal 0.0.
        # Both are lowered so each consumer sees the exact floats the
        # object path would compute.
        g = array("d", (gf(j, x, 0) for x in scores))
        g_bound = array("d", (gf(j, x, 0.0) for x in scores))
        return ListKernel(locations, g, g_bound, scores, token_ids, hold=hold)
    raise ScoringContractError(
        f"no kernel lowering for scoring family {type(scoring).__name__}"
    )


def lower(lst: MatchList, scoring: ScoringFunction, j: int) -> ListKernel:
    """The (cached) kernel for ``lst`` joined as term ``j`` of a query.

    The cache key includes the term index because Definition 3/5/7
    allow a different transform ``g_j`` per term; lists produced by the
    index layer are usually joined at a stable position, so the split
    costs little.
    """
    base = scoring.kernel_key()
    if base is None:
        key = ("@id", id(scoring), j)
        hold = scoring
    else:
        key = (base, j)
        hold = None
    cache = lst._kernel_cache
    if cache is None:
        cache = lst._kernel_cache = {}
    else:
        found = cache.get(key)
        if found is not None:
            STATS.cache_hits += 1
            return found
    kernel = _build(lst, scoring, j, hold)
    STATS.lowerings += 1
    if len(cache) >= _CACHE_CAP:
        try:
            del cache[next(iter(cache))]
        except (StopIteration, KeyError, RuntimeError):  # concurrent evictions
            pass
    cache[key] = kernel
    return kernel


def derive_kernels(parent: MatchList, child: MatchList, kept: Sequence[int]) -> None:
    """Seed ``child``'s kernel cache from ``parent``'s, filtered to ``kept``.

    ``child`` must hold exactly the matches of ``parent`` at the
    ``kept`` indices, in order.  Every kernel cached on the parent is
    copied structurally — this is the g-transform memoization that
    keeps Section VI restarts from re-transforming scores.
    """
    cache = parent._kernel_cache
    if not cache:
        return
    derived = {key: kernel.take(kept) for key, kernel in list(cache.items())}
    child._kernel_cache = derived
    STATS.derived += len(derived)


def bound_transform(scoring: ScoringFunction, j: int, x: float) -> float:
    """``g_j`` of a match score at distance zero — the bound's transform.

    This is the value the top-k upper bound maximizes per list, and the
    value the DAAT impact ceilings (:mod:`repro.index.cursors`) apply to
    a posting's best expansion score.  MAX families evaluate the
    distance argument with the float literal ``0.0``, mirroring
    :func:`repro.retrieval.topk_retrieval.score_upper_bound` exactly so
    bounds stay byte-identical between the paths.
    """
    if isinstance(scoring, (WinScoring, MedScoring)):
        return scoring.g(j, x)
    if isinstance(scoring, MaxScoring):
        return scoring.g(j, x, 0.0)
    raise ScoringContractError(
        f"no upper bound rule for {type(scoring).__name__}"
    )


def bound_combine(scoring: ScoringFunction, total: float) -> float:
    """``f`` applied to a bound total with every distance penalty at zero."""
    if isinstance(scoring, WinScoring):
        return scoring.f(total, 0.0)
    if isinstance(scoring, (MedScoring, MaxScoring)):
        return scoring.f(total)
    raise ScoringContractError(
        f"no upper bound rule for {type(scoring).__name__}"
    )


def max_g_sum(lists: Sequence[MatchList], scoring: ScoringFunction) -> float:
    """``Σ_j max_m g_j`` over the lists — the O(|Q|) upper-bound total.

    Each term contributes its kernel's cached ``max_g``; after the
    first lowering of a list this is O(1) per term per call.
    """
    total = 0.0
    for j, lst in enumerate(lists):
        total += lower(lst, scoring, j).max_g
    return total
