"""Primitive-array inner loops for the WIN/MED/MAX best-joins.

Each function here is the kernel-path twin of one object-path join in
:mod:`repro.core.algorithms`: identical control flow, identical
floating-point operations in identical order, but driven by the
:class:`~repro.core.kernels.columnar.ListKernel` arrays — match indices
instead of :class:`~repro.core.match.Match` objects, precomputed ``g``
values instead of per-step ``scoring.g(...)`` calls, and index chains or
index tuples instead of per-candidate dicts.  ``Match``/``MatchSet``
objects are materialized only for the winning matchset at the end.

Byte-identical equivalence with the object path is a hard contract
(the dispatchers in the algorithm modules rely on it, and
``tests/algorithms/test_kernel_differential.py`` enforces it):

* The merged location-ordered scan iterates ``(location, term, pos)``
  triples in sorted tuple order — exactly the pop order of the k-way
  heap in :func:`~repro.core.match.merge_by_location`.
* Score arithmetic mirrors the object path operation for operation,
  down to int-vs-float distinctions (``g − abs(Δ)`` with an int
  ``abs``, ``sum()`` folds starting from int ``0``, int ``0`` distances
  in MAX dominance passes).
* Tie-breaks use the same strict ``>`` / ``>=`` comparisons on the same
  candidate order.

The MED and MAX kernels inline ``MedScoring.contribution``/``score``
and ``MaxScoring.contribution``; :func:`med_kernel_supported` and
:func:`max_kernel_supported` gate the kernel path to scoring classes
that have not overridden those hooks, so user subclasses with custom
contribution semantics silently keep the object path.
"""

from __future__ import annotations

import heapq
import math
from itertools import repeat
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.algorithms.base import JoinResult, LocationResult
from repro.core.kernels.columnar import ListKernel, lower
from repro.core.match import Match, MatchList
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.core.scoring.base import MaxScoring, MedScoring, WinScoring
from repro.core.scoring.maxloc import AdditiveExponentialMax
from repro.core.scoring.win import ExponentialProductWin, LinearAdditiveWin

# A DP chain is a persistent linked list of (term_index, match_index,
# parent) cells — the index-level twin of the object path's
# (term_index, Match, parent) chains.
_IdxChain = tuple[int, int, "_IdxChain | None"]

__all__ = [
    "win_join_kernel",
    "med_join_kernel",
    "max_join_kernel",
    "win_by_location_kernel",
    "max_by_location_kernel",
    "med_kernel_supported",
    "max_kernel_supported",
]

_NEG_INF = float("-inf")


def med_kernel_supported(scoring: MedScoring) -> bool:
    """True when ``scoring`` keeps the stock MED contribution/score hooks."""
    t = type(scoring)
    return (
        t.contribution is MedScoring.contribution
        and t.contribution_total is MedScoring.contribution_total
        and t.score is MedScoring.score
    )


def max_kernel_supported(scoring: MaxScoring) -> bool:
    """True when ``scoring`` keeps the stock MAX contribution hook."""
    return type(scoring).contribution is MaxScoring.contribution


def _merged(kernels: Sequence[ListKernel]) -> list[tuple[int, int, int]]:
    """All matches as ``(location, term, pos)`` triples in scan order.

    ``sorted`` on the triples gives exactly the heap-pop order of
    :func:`~repro.core.match.merge_by_location` (non-decreasing
    location, ties by term index): every triple is distinct, so the
    sorted sequence is the unique total order both share.
    """
    entries: list[tuple[int, int, int]] = []
    for j, kern in enumerate(kernels):
        locs = kern.locations
        entries.extend((locs[i], j, i) for i in range(kern.n))
    entries.sort()
    return entries


def _merged_with_g(kernels: Sequence[ListKernel]) -> list[tuple[int, int, int, float]]:
    """:func:`_merged` with each entry's ``g`` value carried along.

    Sorting compares the unique ``(location, term, pos)`` prefix, so the
    trailing ``g`` never participates and the order is exactly
    :func:`_merged`'s.  ``zip`` walks the primitive arrays at C speed.
    """
    entries: list[tuple[int, int, int, float]] = []
    for j, kern in enumerate(kernels):
        entries.extend(zip(kern.locations, repeat(j), range(kern.n), kern.g))
    entries.sort()
    return entries


def _merged_lazy(kernels: Sequence[ListKernel]) -> Iterator[tuple[int, int, int]]:
    """Streaming variant of :func:`_merged` (same order, O(|Q|) state)."""

    def one(j: int, kern: ListKernel) -> Iterator[tuple[int, int, int]]:
        locs = kern.locations
        return ((locs[i], j, i) for i in range(kern.n))

    return heapq.merge(*(one(j, kern) for j, kern in enumerate(kernels)))


def _chain_matchset(
    query: Query, lists: Sequence[MatchList], chain: _IdxChain | None
) -> MatchSet:
    picked: dict[str, Match] = {}
    node = chain
    while node is not None:
        j, i, node = node
        picked[query[j]] = lists[j][i]
    return MatchSet(query, picked)


def _chain_is_valid(kernels: Sequence[ListKernel], chain: _IdxChain | None) -> bool:
    token_ids: set[object] = set()
    count = 0
    node = chain
    while node is not None:
        j, i, node = node
        token_ids.add(kernels[j].token_ids[i])
        count += 1
    return len(token_ids) == count


def _picks_matchset(
    query: Query, lists: Sequence[MatchList], picks: Sequence[int]
) -> MatchSet:
    terms = query.terms
    return MatchSet(query, {terms[k]: lists[k][picks[k]] for k in range(len(terms))})


# ---------------------------------------------------------------------------
# WIN (Algorithm 1)
# ---------------------------------------------------------------------------

def _win_dp_generic(
    kernels: Sequence[ListKernel],
    merged: Iterable[tuple[int, int, int, float]],
    masks_rest: Sequence[Sequence[tuple[int, int]]],
    full: int,
    f: Callable[[float, float], float],
) -> tuple[float, _IdxChain | None, float, _IdxChain | None]:
    """The Algorithm 1 subset DP over state arrays, generic ``f``.

    States live in parallel arrays (``sg`` g-sums, ``sl`` min
    locations, ``sc`` index chains; ``sc[mask] is None`` means the
    subset is still unreachable) — same transitions, comparisons, and
    floating-point expressions as the object path, minus the per-step
    tuple/dict traffic.  The singleton mask is handled before the
    ``masks_rest`` loop: within one merged entry every non-singleton
    update reads only masks without ``j`` and writes only masks with
    ``j``, so hoisting the singleton (also a ``j``-mask write) cannot
    change any state another update in the same entry reads.
    """
    sg = [0.0] * (full + 1)
    sl = [0] * (full + 1)
    sc: list[_IdxChain | None] = [None] * (full + 1)
    best_chain: _IdxChain | None = None
    best_score = _NEG_INF
    best_valid_chain: _IdxChain | None = None
    best_valid_score = _NEG_INF

    for l, j, i, g in merged:
        bit = 1 << j
        if sc[bit] is None or f(sg[bit], l - sl[bit]) < f(g, 0.0):
            sg[bit] = g
            sl[bit] = l
            sc[bit] = (j, i, None)
        for mask, other in masks_rest[j]:
            prev_chain = sc[other]
            if prev_chain is None:
                continue
            cand_g = sg[other] + g
            cand_lmin = sl[other]
            if sc[mask] is None or (
                f(sg[mask], l - sl[mask]) < f(cand_g, l - cand_lmin)
            ):
                sg[mask] = cand_g
                sl[mask] = cand_lmin
                sc[mask] = (j, i, prev_chain)

        chain = sc[full]
        if chain is not None:
            s = f(sg[full], l - sl[full])
            if best_chain is None or s > best_score:
                best_score = s
                best_chain = chain
            if (
                best_valid_chain is None or s > best_valid_score
            ) and _chain_is_valid(kernels, chain):
                best_valid_score = s
                best_valid_chain = chain

    return best_score, best_chain, best_valid_score, best_valid_chain


def _win_dp_linear(
    kernels: Sequence[ListKernel],
    merged: Iterable[tuple[int, int, int, float]],
    masks_rest: Sequence[Sequence[tuple[int, int]]],
    full: int,
) -> tuple[float, _IdxChain | None, float, _IdxChain | None]:
    """:func:`_win_dp_generic` with ``LinearAdditiveWin.f`` inlined.

    ``f(x, y) = x − y``, so every comparison becomes plain arithmetic —
    the expressions below are textually ``f``'s body, keeping the floats
    (and therefore every tie-break) byte-identical.

    The complete-state check additionally skips entries whose full-state
    chain is unchanged since it was last evaluated (``checked``): with
    the location non-decreasing and this ``f`` non-increasing in the
    window, an unchanged state's score can only have dropped, so neither
    the best nor the best-valid tracker could accept it — every skipped
    evaluation is one the object path provably rejects.
    """
    sg = [0.0] * (full + 1)
    sl = [0] * (full + 1)
    sc: list[_IdxChain | None] = [None] * (full + 1)
    best_chain: _IdxChain | None = None
    best_score = _NEG_INF
    best_valid_chain: _IdxChain | None = None
    best_valid_score = _NEG_INF
    checked: _IdxChain | None = None

    for l, j, i, g in merged:
        bit = 1 << j
        if sc[bit] is None or sg[bit] - (l - sl[bit]) < g - 0.0:
            sg[bit] = g
            sl[bit] = l
            sc[bit] = (j, i, None)
        for mask, other in masks_rest[j]:
            prev_chain = sc[other]
            if prev_chain is None:
                continue
            cand_g = sg[other] + g
            cand_lmin = sl[other]
            if sc[mask] is None or (
                sg[mask] - (l - sl[mask]) < cand_g - (l - cand_lmin)
            ):
                sg[mask] = cand_g
                sl[mask] = cand_lmin
                sc[mask] = (j, i, prev_chain)

        chain = sc[full]
        if chain is not None and chain is not checked:
            checked = chain
            s = sg[full] - (l - sl[full])
            if best_chain is None or s > best_score:
                best_score = s
                best_chain = chain
            if (
                best_valid_chain is None or s > best_valid_score
            ) and _chain_is_valid(kernels, chain):
                best_valid_score = s
                best_valid_chain = chain

    return best_score, best_chain, best_valid_score, best_valid_chain


def _win_dp_expprod(
    kernels: Sequence[ListKernel],
    merged: Iterable[tuple[int, int, int, float]],
    masks_rest: Sequence[Sequence[tuple[int, int]]],
    full: int,
    alpha: float,
) -> tuple[float, _IdxChain | None, float, _IdxChain | None]:
    """:func:`_win_dp_generic` with ``ExponentialProductWin.f`` inlined:
    ``f(x, y) = exp(x − α·y)``, hoisting ``exp`` and ``α`` out of the
    loop.  Applies the same unchanged-chain skip as the linear variant
    (this ``f`` is also non-increasing in the window)."""
    exp = math.exp
    sg = [0.0] * (full + 1)
    sl = [0] * (full + 1)
    sc: list[_IdxChain | None] = [None] * (full + 1)
    best_chain: _IdxChain | None = None
    best_score = _NEG_INF
    best_valid_chain: _IdxChain | None = None
    best_valid_score = _NEG_INF
    checked: _IdxChain | None = None

    for l, j, i, g in merged:
        bit = 1 << j
        if sc[bit] is None or exp(sg[bit] - alpha * (l - sl[bit])) < exp(
            g - alpha * 0.0
        ):
            sg[bit] = g
            sl[bit] = l
            sc[bit] = (j, i, None)
        for mask, other in masks_rest[j]:
            prev_chain = sc[other]
            if prev_chain is None:
                continue
            cand_g = sg[other] + g
            cand_lmin = sl[other]
            if sc[mask] is None or exp(sg[mask] - alpha * (l - sl[mask])) < exp(
                cand_g - alpha * (l - cand_lmin)
            ):
                sg[mask] = cand_g
                sl[mask] = cand_lmin
                sc[mask] = (j, i, prev_chain)

        chain = sc[full]
        if chain is not None and chain is not checked:
            checked = chain
            s = exp(sg[full] - alpha * (l - sl[full]))
            if best_chain is None or s > best_score:
                best_score = s
                best_chain = chain
            if (
                best_valid_chain is None or s > best_valid_score
            ) and _chain_is_valid(kernels, chain):
                best_valid_score = s
                best_valid_chain = chain

    return best_score, best_chain, best_valid_score, best_valid_chain


def win_join_kernel(
    query: Query, lists: Sequence[MatchList], scoring: WinScoring
) -> JoinResult:
    """Kernel twin of :func:`~repro.core.algorithms.win_join.win_join`.

    Same subset DP; chains are ``(term, pos, parent)`` index cells.
    Inputs are pre-validated by the dispatching object-path function.
    The DP body is specialized per concrete combiner — stock ``f``
    implementations are inlined into the comparisons (identical
    expressions, so identical floats); anything else takes the generic
    body with ``f`` calls.
    """
    n = len(query)
    full = (1 << n) - 1
    # Per term: every non-singleton mask containing the term, paired with
    # the predecessor mask it extends (mask minus the term's bit).
    masks_rest = [
        [
            (mask, mask ^ (1 << j))
            for mask in range(1, full + 1)
            if mask >> j & 1 and mask != 1 << j
        ]
        for j in range(n)
    ]
    kernels = [lower(lists[j], scoring, j) for j in range(n)]
    merged = _merged_with_g(kernels)

    tf = type(scoring).f
    if tf is LinearAdditiveWin.f:
        dp = _win_dp_linear(kernels, merged, masks_rest, full)
    elif tf is ExponentialProductWin.f:
        dp = _win_dp_expprod(kernels, merged, masks_rest, full, scoring.alpha)
    else:
        dp = _win_dp_generic(kernels, merged, masks_rest, full, scoring.f)
    best_score, best_chain, best_valid_score, best_valid_chain = dp

    assert best_chain is not None
    return JoinResult(
        _chain_matchset(query, lists, best_chain),
        best_score,
        valid_matchset=(
            _chain_matchset(query, lists, best_valid_chain)
            if best_valid_chain is not None
            else None
        ),
        valid_score=best_valid_score if best_valid_chain is not None else None,
    )


def win_by_location_kernel(
    query: Query, lists: Sequence[MatchList], scoring: WinScoring
) -> Iterator[LocationResult]:
    """Kernel twin of :func:`~repro.core.algorithms.by_location.win_by_location`.

    Uses the lazy merge so the streaming (emit-as-soon-as-complete)
    property of the object path is preserved.
    """
    n = len(query)
    full = (1 << n) - 1
    masks_with = [
        [mask for mask in range(1, full + 1) if mask >> j & 1] for j in range(n)
    ]
    kernels = [lower(lists[j], scoring, j) for j in range(n)]
    g_arrays = [kern.g for kern in kernels]
    states: list[tuple[float, int, object] | None] = [None] * (full + 1)
    f = scoring.f

    pending_anchor: int | None = None
    pending_score = _NEG_INF
    pending_chain: object = None

    for l, j, i in _merged_lazy(kernels):
        g = g_arrays[j][i]
        if pending_anchor is not None and l > pending_anchor:
            if pending_chain is not None:
                yield LocationResult(
                    pending_anchor,
                    _chain_matchset(query, lists, pending_chain),
                    pending_score,
                )
            pending_anchor, pending_score, pending_chain = None, _NEG_INF, None

        bit = 1 << j
        for mask in masks_with[j]:
            current = states[mask]
            if mask == bit:
                if current is None or f(current[0], l - current[1]) < f(g, 0.0):
                    states[mask] = (g, l, (j, i, None))
                continue
            prev = states[mask ^ bit]
            if prev is None:
                continue
            if current is None or (
                f(current[0], l - current[1]) < f(prev[0] + g, l - prev[1])
            ):
                states[mask] = (prev[0] + g, prev[1], (j, i, prev[2]))

        rest = states[full ^ bit]
        if n == 1:
            candidate_score = f(g, 0.0)
            candidate_chain = (j, i, None)
        elif rest is not None:
            candidate_score = f(rest[0] + g, l - rest[1])
            candidate_chain = (j, i, rest[2])
        else:
            continue
        if pending_anchor is None:
            pending_anchor = l
        if candidate_score > pending_score:
            pending_score = candidate_score
            pending_chain = candidate_chain

    if pending_anchor is not None and pending_chain is not None:
        yield LocationResult(
            pending_anchor,
            _chain_matchset(query, lists, pending_chain),
            pending_score,
        )


# ---------------------------------------------------------------------------
# MED (Algorithm 2)
# ---------------------------------------------------------------------------

def _med_stack(kern: ListKernel) -> list[int]:
    """Columnar dominance stack under MED contributions.

    Index twin of :func:`~repro.core.algorithms.envelope.dominance_stack`
    with ``c(i, l) = g[i] − |loc[i] − l|``; a match's contribution at
    its own location is ``g − 0 == g`` exactly, so the comparisons
    reduce to the forms below.
    """
    locs = kern.locations
    g = kern.g
    stack: list[int] = []
    for i in range(kern.n):
        li = locs[i]
        gi = g[i]
        if stack:
            t = stack[-1]
            if gi < g[t] - (li - locs[t]):
                continue
            while stack:
                t = stack[-1]
                if gi - (li - locs[t]) >= g[t]:
                    stack.pop()
                else:
                    break
        stack.append(i)
    return stack


class _MedScanner:
    """Columnar :class:`~repro.core.algorithms.envelope.DominatingScanner`
    for MED contributions; returns match indices (−1 = none)."""

    __slots__ = ("_stack", "_locs", "_g", "_pos", "_last")

    def __init__(self, kern: ListKernel) -> None:
        stack = kern._stack
        if stack is None:
            stack = kern._stack = _med_stack(kern)
        self._stack = stack
        self._locs = kern.locations
        self._g = kern.g
        self._pos = 0
        self._last = -1

    def dominating_at(self, location: int) -> int:
        stack = self._stack
        locs = self._locs
        pos = self._pos
        while pos < len(stack) and locs[stack[pos]] <= location:
            self._last = stack[pos]
            pos += 1
        self._pos = pos
        before = self._last
        if pos < len(stack):
            after = stack[pos]
            g = self._g
            # Tie toward the successor (>=), as in the object scanner.
            if before < 0 or g[after] - (locs[after] - location) >= g[before] - (
                location - locs[before]
            ):
                return after
        return before


def med_join_kernel(
    query: Query, lists: Sequence[MatchList], scoring: MedScoring
) -> JoinResult:
    """Kernel twin of :func:`~repro.core.algorithms.med_join.med_join`.

    The median-rank check guarantees the candidate's upper median *is*
    the scanned location, so the candidate score is evaluated directly
    at it — the same fold ``f(Σ_k (g_k − |loc_k − median|))`` that
    ``scoring.score`` performs on the materialized matchset, term by
    term from int ``0``.
    """
    n = len(query)
    kernels = [lower(lists[j], scoring, j) for j in range(n)]
    scanners = [_MedScanner(kern) for kern in kernels]
    median_rank = (n + 1) // 2  # 1-based rank of the median from the greatest
    f = scoring.f

    best_picks: tuple[int, ...] | None = None
    best_score = _NEG_INF
    best_valid_picks: tuple[int, ...] | None = None
    best_valid_score = _NEG_INF

    picks = [0] * n
    for location, j, i in _merged(kernels):
        picks[j] = i
        strictly_after = 0
        at_or_after = 1  # the anchor match itself
        for k in range(n):
            if k == j:
                continue
            idx = scanners[k].dominating_at(location)
            picks[k] = idx
            loc_k = kernels[k].locations[idx]
            if loc_k > location:
                strictly_after += 1
                at_or_after += 1
            elif loc_k == location:
                at_or_after += 1
        if strictly_after > median_rank - 1 or at_or_after < median_rank:
            continue
        total = 0
        for k in range(n):
            kern = kernels[k]
            idx = picks[k]
            total = total + (kern.g[idx] - abs(kern.locations[idx] - location))
        s = f(total)
        if best_picks is None or s > best_score:
            best_picks, best_score = tuple(picks), s
        if best_valid_picks is None or s > best_valid_score:
            token_ids = {kernels[k].token_ids[picks[k]] for k in range(n)}
            if len(token_ids) == n:
                best_valid_picks, best_valid_score = tuple(picks), s

    assert best_picks is not None
    best_valid = (
        _picks_matchset(query, lists, best_valid_picks)
        if best_valid_picks is not None
        else None
    )
    return JoinResult(
        _picks_matchset(query, lists, best_picks),
        best_score,
        valid_matchset=best_valid,
        valid_score=best_valid_score if best_valid is not None else None,
    )


# ---------------------------------------------------------------------------
# MAX (Section V, specialized)
# ---------------------------------------------------------------------------

def _max_stack(
    kern: ListKernel, gf: Callable[[int, float, float], float], j: int
) -> list[int]:
    """Columnar dominance stack under MAX contributions.

    ``c(i, l) = g(j, score[i], |loc[i] − l|)``; at a match's own
    location the distance is the int ``0``, which is exactly what the
    lowered ``kern.g`` array holds.
    """
    locs = kern.locations
    scores = kern.scores
    g0 = kern.g
    stack: list[int] = []
    for i in range(kern.n):
        li = locs[i]
        if stack:
            t = stack[-1]
            if g0[i] < gf(j, scores[t], li - locs[t]):
                continue
            while stack:
                t = stack[-1]
                if gf(j, scores[i], li - locs[t]) >= g0[t]:
                    stack.pop()
                else:
                    break
        stack.append(i)
    return stack


def _max_stack_exp(kern: ListKernel, alpha: float) -> list[int]:
    """:func:`_max_stack` with ``AdditiveExponentialMax.g`` inlined:
    ``g(j, x, y) = x·exp(−α·y)`` (identical expression, identical
    floats)."""
    exp = math.exp
    locs = kern.locations
    scores = kern.scores
    g0 = kern.g
    stack: list[int] = []
    for i in range(kern.n):
        li = locs[i]
        if stack:
            t = stack[-1]
            if g0[i] < scores[t] * exp(-alpha * (li - locs[t])):
                continue
            while stack:
                t = stack[-1]
                if scores[i] * exp(-alpha * (li - locs[t])) >= g0[t]:
                    stack.pop()
                else:
                    break
        stack.append(i)
    return stack


def _max_specialized_alpha(scoring: MaxScoring) -> float | None:
    """``α`` when ``scoring`` uses the stock AdditiveExponentialMax
    transform (the inline-specialization guard), else None."""
    if type(scoring).g is AdditiveExponentialMax.g:
        return scoring.alpha
    return None


def _max_stack_for(kern: ListKernel, scoring: MaxScoring, j: int) -> list[int]:
    """The (cached) dominance stack for one MAX kernel."""
    stack = kern._stack
    if stack is None:
        alpha = _max_specialized_alpha(scoring)
        if alpha is not None:
            stack = _max_stack_exp(kern, alpha)
        else:
            stack = _max_stack(kern, scoring.g, j)
        kern._stack = stack
    return stack


class _MaxScanner:
    """Columnar dominating-match scanner for MAX contributions."""

    __slots__ = ("_stack", "_locs", "_scores", "_gf", "_j", "_pos", "_last")

    def __init__(
        self,
        stack: list[int],
        kern: ListKernel,
        gf: Callable[[int, float, float], float],
        j: int,
    ) -> None:
        self._stack = stack
        self._locs = kern.locations
        self._scores = kern.scores
        self._gf = gf
        self._j = j
        self._pos = 0
        self._last = -1

    def dominating_at(self, location: int) -> int:
        stack = self._stack
        locs = self._locs
        pos = self._pos
        while pos < len(stack) and locs[stack[pos]] <= location:
            self._last = stack[pos]
            pos += 1
        self._pos = pos
        before = self._last
        if pos < len(stack):
            after = stack[pos]
            gf = self._gf
            j = self._j
            scores = self._scores
            if before < 0 or gf(j, scores[after], locs[after] - location) >= gf(
                j, scores[before], location - locs[before]
            ):
                return after
        return before


class _MaxScannerExp:
    """:class:`_MaxScanner` with ``AdditiveExponentialMax.g`` inlined."""

    __slots__ = ("_stack", "_locs", "_scores", "_alpha", "_pos", "_last")

    def __init__(self, stack: list[int], kern: ListKernel, alpha: float) -> None:
        self._stack = stack
        self._locs = kern.locations
        self._scores = kern.scores
        self._alpha = alpha
        self._pos = 0
        self._last = -1

    def dominating_at(self, location: int) -> int:
        stack = self._stack
        locs = self._locs
        pos = self._pos
        while pos < len(stack) and locs[stack[pos]] <= location:
            self._last = stack[pos]
            pos += 1
        self._pos = pos
        before = self._last
        if pos < len(stack):
            after = stack[pos]
            scores = self._scores
            alpha = self._alpha
            exp = math.exp
            if before < 0 or scores[after] * exp(
                -alpha * (locs[after] - location)
            ) >= scores[before] * exp(-alpha * (location - locs[before])):
                return after
        return before


def _max_scanners(
    kernels: Sequence[ListKernel], scoring: MaxScoring
) -> list[_MaxScannerExp] | list[_MaxScanner]:
    """One dominating-match scanner per term, specialized when possible."""
    alpha = _max_specialized_alpha(scoring)
    if alpha is not None:
        return [
            _MaxScannerExp(_max_stack_for(kern, scoring, j), kern, alpha)
            for j, kern in enumerate(kernels)
        ]
    gf = scoring.g
    return [
        _MaxScanner(_max_stack_for(kern, scoring, j), kern, gf, j)
        for j, kern in enumerate(kernels)
    ]


def max_join_kernel(
    query: Query, lists: Sequence[MatchList], scoring: MaxScoring
) -> JoinResult:
    """Kernel twin of :func:`~repro.core.algorithms.max_join.max_join`.

    Dominance stacks are cached on the kernels (they are pure functions
    of one kernel); with the stock AdditiveExponentialMax transform the
    candidate loop runs with ``g`` inlined (identical expression →
    identical floats).
    """
    n = len(query)
    kernels = [lower(lists[j], scoring, j) for j in range(n)]
    stacks = [_max_stack_for(kernels[j], scoring, j) for j in range(n)]
    scanners = _max_scanners(kernels, scoring)
    alpha = _max_specialized_alpha(scoring)
    locs_arrays = [kern.locations for kern in kernels]
    score_arrays = [kern.scores for kern in kernels]

    candidate_locations = sorted(
        {locs_arrays[j][i] for j in range(n) for i in stacks[j]}
    )

    best_picks: list[int] | None = None
    best_total = _NEG_INF
    best_valid_picks: list[int] | None = None
    best_valid_total = _NEG_INF
    if alpha is not None:
        exp = math.exp
        for location in candidate_locations:
            total = 0.0
            picks = []
            for k in range(n):
                idx = scanners[k].dominating_at(location)
                picks.append(idx)
                d = locs_arrays[k][idx] - location
                if d < 0:
                    d = -d
                total += score_arrays[k][idx] * exp(-alpha * d)
            if best_picks is None or total > best_total:
                best_picks, best_total = picks, total
            if best_valid_picks is None or total > best_valid_total:
                token_ids = {kernels[k].token_ids[picks[k]] for k in range(n)}
                if len(token_ids) == n:
                    best_valid_picks, best_valid_total = picks, total
    else:
        gf = scoring.g
        for location in candidate_locations:
            total = 0.0
            picks = []
            for k in range(n):
                idx = scanners[k].dominating_at(location)
                picks.append(idx)
                d = locs_arrays[k][idx] - location
                if d < 0:
                    d = -d
                total += gf(k, score_arrays[k][idx], d)
            if best_picks is None or total > best_total:
                best_picks, best_total = picks, total
            if best_valid_picks is None or total > best_valid_total:
                token_ids = {kernels[k].token_ids[picks[k]] for k in range(n)}
                if len(token_ids) == n:
                    best_valid_picks, best_valid_total = picks, total

    assert best_picks is not None
    valid_matchset = (
        _picks_matchset(query, lists, best_valid_picks)
        if best_valid_picks is not None
        else None
    )
    return JoinResult(
        _picks_matchset(query, lists, best_picks),
        scoring.f(best_total),
        valid_matchset=valid_matchset,
        valid_score=scoring.f(best_valid_total) if valid_matchset is not None else None,
    )


def max_by_location_kernel(
    query: Query, lists: Sequence[MatchList], scoring: MaxScoring
) -> Iterator[LocationResult]:
    """Kernel twin of :func:`~repro.core.algorithms.by_location.max_by_location`."""
    n = len(query)
    terms = query.terms
    kernels = [lower(lists[j], scoring, j) for j in range(n)]
    gf = scoring.g
    scanners = _max_scanners(kernels, scoring)

    anchor_locations = sorted({l for kern in kernels for l in kern.locations})
    for location in anchor_locations:
        total = 0.0
        picked = {}
        for k in range(n):
            idx = scanners[k].dominating_at(location)
            kern = kernels[k]
            picked[terms[k]] = lists[k][idx]
            d = kern.locations[idx] - location
            if d < 0:
                d = -d
            total += gf(k, kern.scores[idx], d)
        yield LocationResult(location, MatchSet(query, picked), scoring.f(total))
