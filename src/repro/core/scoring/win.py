"""Concrete window-length (WIN) scoring functions (Section III).

* :class:`ExponentialProductWin` — Eq. (1) of the paper:
  ``(Π_j score_j) · e^{−α·window}``, i.e. ``g_j(x) = ln x`` and
  ``f(x, y) = exp(x − αy)``.  This approximates the EntityRank scoring
  function of Cheng et al. with an exponential distance decay.
* :class:`LinearAdditiveWin` — the WIN function used in the paper's TREC
  and DBWorld experiments (footnote 9): ``g_j(x) = x / scale`` and
  ``f(x, y) = x − y``.
* :class:`CustomWin` — adapter wrapping user callables; the caller
  vouches for Definition 3's properties.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.core.errors import ScoringContractError
from repro.core.scoring.base import WinScoring

__all__ = ["ExponentialProductWin", "LinearAdditiveWin", "CustomWin"]


class ExponentialProductWin(WinScoring):
    """Eq. (1): product of scores, exponentially decayed by window length.

    ``score(M) = (Π_j score_j) · e^{−α·(max loc − min loc)}`` with α > 0.
    Individual match scores must be positive (``g_j = ln``).
    """

    def __init__(self, alpha: float = 0.1) -> None:
        if alpha <= 0:
            raise ScoringContractError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def g(self, j: int, x: float) -> float:
        if x <= 0:
            raise ScoringContractError(
                f"ExponentialProductWin needs positive match scores, got {x}"
            )
        return math.log(x)

    def f(self, x: float, y: float) -> float:
        return math.exp(x - self.alpha * y)

    def kernel_key(self) -> object:
        return (type(self), self.alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialProductWin(alpha={self.alpha})"


class LinearAdditiveWin(WinScoring):
    """The TREC-experiment WIN function: ``Σ_j score_j/scale − window``.

    The paper (footnote 9) uses ``scale = 0.3``, the per-edge score decay
    of its WordNet matcher, so a one-edge-closer match is worth one token
    of window slack.
    """

    def __init__(self, scale: float = 0.3) -> None:
        if scale <= 0:
            raise ScoringContractError(f"scale must be positive, got {scale}")
        self.scale = scale

    def g(self, j: int, x: float) -> float:
        return x / self.scale

    def f(self, x: float, y: float) -> float:
        return x - y

    def kernel_key(self) -> object:
        return (type(self), self.scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearAdditiveWin(scale={self.scale})"


class CustomWin(WinScoring):
    """A WIN scoring function from user-supplied callables.

    Parameters
    ----------
    g:
        Either a single callable ``g(x)`` applied to every term, or a
        sequence of per-term callables ``g_j(x)`` (Definition 3 allows a
        different monotone transform per term).
    f:
        The combiner ``f(x, y)``.

    The callables must satisfy Definition 3 (monotonicity and optimal
    substructure); this adapter cannot verify that, so violations
    silently break Algorithm 1's optimality.  Use the property-test
    helpers in :mod:`tests.scoring` to vet a new function.
    """

    def __init__(
        self,
        g: Callable[[float], float] | Sequence[Callable[[float], float]],
        f: Callable[[float, float], float],
    ) -> None:
        self._per_term = None if callable(g) else tuple(g)
        self._g = g if callable(g) else None
        self._f = f

    def g(self, j: int, x: float) -> float:
        if self._per_term is not None:
            return self._per_term[j](x)
        assert self._g is not None
        return self._g(x)

    def f(self, x: float, y: float) -> float:
        return self._f(x, y)
