"""Concrete maximize-over-location (MAX) scoring functions (Section V).

* :class:`ExponentialProductMax` — Eq. (4):
  ``max_l Π_j score_j · e^{−α·|loc_j − l|}`` (``f = exp``,
  ``g_j(x, y) = ln x − αy``).  Contribution curves are "tents" with slope
  ±α, so at-most-one-crossing holds, and the contribution total is
  piecewise linear with breakpoints only at match locations, giving
  maximized-at-match (Lemma 3).
* :class:`AdditiveExponentialMax` — Eq. (5):
  ``max_l Σ_j score_j · e^{−α·|loc_j − l|}`` (``f = id``,
  ``g_j(x, y) = x·e^{−αy}``).  Between consecutive match locations the
  total is ``C₁e^{−αl} + C₂e^{αl}``, a convex function, so the max over
  each interval is at an endpoint — maximized-at-match again (Lemma 3).
  This generalizes Chakrabarti et al.'s type-term scoring.
* :class:`CustomMax` — adapter for user callables; the caller declares
  which Definition 8 properties hold via the contract flags.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.core.errors import ScoringContractError
from repro.core.matchset import MatchSet
from repro.core.scoring.base import MaxScoring

__all__ = ["ExponentialProductMax", "AdditiveExponentialMax", "CustomMax"]


class ExponentialProductMax(MaxScoring):
    """Eq. (4): product of scores decayed around the best reference point."""

    at_most_one_crossing = True
    maximized_at_match = True

    def __init__(self, alpha: float = 0.1) -> None:
        if alpha <= 0:
            raise ScoringContractError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def g(self, j: int, x: float, y: float) -> float:
        if x <= 0:
            raise ScoringContractError(
                f"ExponentialProductMax needs positive match scores, got {x}"
            )
        return math.log(x) - self.alpha * y

    def f(self, x: float) -> float:
        return math.exp(x)

    def kernel_key(self) -> object:
        return (type(self), self.alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialProductMax(alpha={self.alpha})"


class AdditiveExponentialMax(MaxScoring):
    """Eq. (5): sum of exponentially distance-decayed scores.

    The paper's TREC/DBWorld experiments use this with ``α = 0.1``
    (footnote 9).
    """

    at_most_one_crossing = True
    maximized_at_match = True

    def __init__(self, alpha: float = 0.1) -> None:
        if alpha <= 0:
            raise ScoringContractError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def g(self, j: int, x: float, y: float) -> float:
        return x * math.exp(-self.alpha * y)

    def f(self, x: float) -> float:
        return x

    def kernel_key(self) -> object:
        return (type(self), self.alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdditiveExponentialMax(alpha={self.alpha})"


class CustomMax(MaxScoring):
    """A MAX scoring function from user callables.

    Parameters
    ----------
    g:
        Single callable ``g(x, y)`` or per-term sequence of callables.
    f:
        Monotonically increasing combiner.
    at_most_one_crossing, maximized_at_match:
        The Definition 8 properties the caller vouches for.  When
        ``maximized_at_match`` is False an ``anchor_candidates`` callable
        must be supplied so scores stay computable.
    anchor_candidates:
        Optional override enumerating candidate reference locations for a
        matchset.
    """

    def __init__(
        self,
        g: Callable[[float, float], float] | Sequence[Callable[[float, float], float]],
        f: Callable[[float], float],
        *,
        at_most_one_crossing: bool = False,
        maximized_at_match: bool = False,
        anchor_candidates: Callable[[MatchSet], Iterable[int]] | None = None,
    ) -> None:
        self._per_term = None if callable(g) else tuple(g)
        self._g = g if callable(g) else None
        self._f = f
        self.at_most_one_crossing = at_most_one_crossing
        self.maximized_at_match = maximized_at_match
        self._anchor_candidates = anchor_candidates
        if not maximized_at_match and anchor_candidates is None:
            raise ScoringContractError(
                "CustomMax without maximized-at-match needs anchor_candidates"
            )

    def g(self, j: int, x: float, y: float) -> float:
        if self._per_term is not None:
            return self._per_term[j](x, y)
        assert self._g is not None
        return self._g(x, y)

    def f(self, x: float) -> float:
        return self._f(x)

    def anchor_candidates(self, matchset: MatchSet) -> Iterable[int]:
        if self._anchor_candidates is not None:
            return self._anchor_candidates(matchset)
        return super().anchor_candidates(matchset)
