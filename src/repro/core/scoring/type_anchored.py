"""Type-anchored scoring (Chakrabarti, Puniyani & Das — citation [7]).

The paper notes that Eq. (5) "generalizes the scoring function of
Chakrabarti et al., which simply sets l to be the location of the match
for the single 'type' term in their query."  :class:`TypeAnchoredMax`
implements that original, restricted form: queries with one *type* term
(the "who" / "physicist" slot) and ordinary keyword terms, where the
reference location is pinned to the type term's match instead of
maximized over all locations.  Its linear join lives in
:mod:`repro.core.algorithms.type_anchored`.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.core.errors import ScoringContractError
from repro.core.matchset import MatchSet
from repro.core.scoring.base import MaxScoring

__all__ = ["TypeAnchoredMax"]


class TypeAnchoredMax(MaxScoring):
    """Eq. (5)'s decay, anchored at the type term's match.

    ``score(M) = Σ_j score_j · e^{−α·|loc_j − loc(m_type)|}`` — the
    reference point is not free, so this is *not* maximized-at-match in
    Definition 8's sense (the flag is False and the generic MAX joins
    refuse it); use :func:`repro.core.algorithms.type_anchored.
    type_anchored_join`.
    """

    at_most_one_crossing = True  # contributions are Eq. (5) bumps
    maximized_at_match = False  # the anchor is fixed, not maximized

    def __init__(self, type_term_index: int, alpha: float = 0.1) -> None:
        if type_term_index < 0:
            raise ScoringContractError(
                f"type_term_index must be >= 0, got {type_term_index}"
            )
        if alpha <= 0:
            raise ScoringContractError(f"alpha must be positive, got {alpha}")
        self.type_term_index = type_term_index
        self.alpha = alpha

    def g(self, j: int, x: float, y: float) -> float:
        return x * math.exp(-self.alpha * y)

    def f(self, x: float) -> float:
        return x

    def kernel_key(self) -> object:
        return (type(self), self.type_term_index, self.alpha)

    def anchor_candidates(self, matchset: MatchSet) -> Iterable[int]:
        """The single admissible reference point: the type term's match."""
        if self.type_term_index >= len(matchset):
            raise ScoringContractError(
                f"type term index {self.type_term_index} outside a "
                f"{len(matchset)}-term matchset"
            )
        return (matchset.matches[self.type_term_index].location,)
