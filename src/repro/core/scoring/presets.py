"""Named scoring-function presets used by the paper's experiments.

Footnote 9 pins down the exact functions behind the TREC and DBWorld
experiments; Eqs. (1), (3), (4) and (5) are the running examples of each
family.  The synthetic-figure benchmarks reuse the experiment presets so
all three algorithms are compared under the same configuration the paper
used.
"""

from __future__ import annotations

from repro.core.scoring.base import ScoringFunction
from repro.core.scoring.maxloc import AdditiveExponentialMax, ExponentialProductMax
from repro.core.scoring.med import AdditiveMed, ExponentialProductMed
from repro.core.scoring.win import ExponentialProductWin, LinearAdditiveWin

__all__ = [
    "eq1",
    "eq3",
    "eq4",
    "eq5",
    "trec_win",
    "trec_med",
    "trec_max",
    "experiment_suite",
]


def eq1(alpha: float = 0.1) -> ExponentialProductWin:
    """Eq. (1): WIN with score product and exponential window decay."""
    return ExponentialProductWin(alpha)


def eq3(alpha: float = 0.1) -> ExponentialProductMed:
    """Eq. (3): MED with score product and exponential median-distance decay."""
    return ExponentialProductMed(alpha)


def eq4(alpha: float = 0.1) -> ExponentialProductMax:
    """Eq. (4): MAX with score product and exponential decay."""
    return ExponentialProductMax(alpha)


def eq5(alpha: float = 0.1) -> AdditiveExponentialMax:
    """Eq. (5): MAX with sum of exponentially decayed scores."""
    return AdditiveExponentialMax(alpha)


def trec_win() -> LinearAdditiveWin:
    """WIN used in the TREC/DBWorld experiments: g(x)=x/0.3, f(x,y)=x−y."""
    return LinearAdditiveWin(scale=0.3)


def trec_med() -> AdditiveMed:
    """MED used in the TREC/DBWorld experiments: g(x)=x/0.3, f(x)=x."""
    return AdditiveMed(scale=0.3)


def trec_max() -> AdditiveExponentialMax:
    """MAX used in the TREC/DBWorld experiments: Eq. (5) with α=0.1."""
    return AdditiveExponentialMax(alpha=0.1)


def experiment_suite() -> dict[str, ScoringFunction]:
    """The (WIN, MED, MAX) triple the paper's experiments run with."""
    return {"WIN": trec_win(), "MED": trec_med(), "MAX": trec_max()}
