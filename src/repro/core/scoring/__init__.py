"""Matchset scoring functions: the WIN, MED and MAX families."""

from repro.core.scoring.base import MaxScoring, MedScoring, ScoringFunction, WinScoring
from repro.core.scoring.contracts import (
    ContractReport,
    check_max_contract,
    check_med_contract,
    check_win_contract,
)
from repro.core.scoring.extra import LinearDecayMax, PureProximityWin, WeightedAdditiveMed
from repro.core.scoring.maxloc import (
    AdditiveExponentialMax,
    CustomMax,
    ExponentialProductMax,
)
from repro.core.scoring.med import AdditiveMed, CustomMed, ExponentialProductMed
from repro.core.scoring.type_anchored import TypeAnchoredMax
from repro.core.scoring.presets import (
    eq1,
    eq3,
    eq4,
    eq5,
    experiment_suite,
    trec_max,
    trec_med,
    trec_win,
)
from repro.core.scoring.win import CustomWin, ExponentialProductWin, LinearAdditiveWin

__all__ = [
    "ScoringFunction",
    "WinScoring",
    "MedScoring",
    "MaxScoring",
    "ContractReport",
    "check_win_contract",
    "check_med_contract",
    "check_max_contract",
    "PureProximityWin",
    "WeightedAdditiveMed",
    "LinearDecayMax",
    "TypeAnchoredMax",
    "ExponentialProductWin",
    "LinearAdditiveWin",
    "CustomWin",
    "ExponentialProductMed",
    "AdditiveMed",
    "CustomMed",
    "ExponentialProductMax",
    "AdditiveExponentialMax",
    "CustomMax",
    "eq1",
    "eq3",
    "eq4",
    "eq5",
    "trec_win",
    "trec_med",
    "trec_max",
    "experiment_suite",
]
