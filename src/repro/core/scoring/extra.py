"""Additional scoring functions conforming to the paper's definitions.

The paper intentionally leaves ``f`` and ``g_j`` "as unspecified as
possible"; this module ships further members of each family that satisfy
the required properties, extending the toolbox beyond the running
examples:

* :class:`PureProximityWin` — WIN with scores ignored entirely:
  ``g_j ≡ 0``, ``f(x, y) = −y``.  The best matchset is exactly the
  smallest window containing one match per term, i.e. the classic
  shortest-cover-interval criterion of Hawking & Thistlewaite — showing
  how the older unweighted model embeds in the WIN family (a property
  test ties it to
  :func:`repro.retrieval.proximity_scoring.minimal_cover_windows`).
* :class:`WeightedAdditiveMed` — MED with per-term importance weights:
  ``g_j(x) = w_j · x / scale``.  Lets an application say "the entity
  term matters twice as much as the keyword terms" while keeping the
  unit-slope distance penalty MED requires.
* :class:`LinearDecayMax` — MAX with *linear* instead of exponential
  decay: ``g_j(x, y) = x/scale − αy``, ``f = id``.  Both Definition 8
  properties hold: contribution differences are monotone over locations
  (at-most-one-crossing), and the total ``Σx/scale − α·Σ|loc_j − l|`` is
  maximized where the distance sum is smallest — the median location,
  always a match location (maximized-at-match).  An instructive special
  case: MAX with linear decay anchors at the median, landing between
  MED and the exponential MAX functions.

Not everything plausible conforms — see
``tests/scoring/test_counterexamples.py`` for scoring functions that
*look* reasonable (hard window cut-offs, power-law window decay) but
violate the optimal-substructure property, with concrete inputs on
which Algorithm 1 would be suboptimal.  That is why the definitions
carry these conditions.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ScoringContractError
from repro.core.scoring.base import MaxScoring, MedScoring, WinScoring

__all__ = ["PureProximityWin", "WeightedAdditiveMed", "LinearDecayMax"]


class PureProximityWin(WinScoring):
    """WIN that scores only the window: ``f(x, y) = −y``, ``g_j ≡ 0``.

    Maximizing this score finds the smallest window covering all query
    terms; all of Definition 3's conditions hold trivially (``g``
    constant is non-strictly increasing, ``f`` is decreasing in ``y``
    and independent of ``x``).
    """

    def g(self, j: int, x: float) -> float:
        return 0.0

    def f(self, x: float, y: float) -> float:
        return -y

    def kernel_key(self) -> object:
        return (type(self),)


class WeightedAdditiveMed(MedScoring):
    """MED with per-term weights: ``g_j(x) = w_j · x / scale``.

    Weights must be positive (a zero weight would make ``g_j``
    non-increasing only degenerately; a negative one breaks
    monotonicity outright).
    """

    def __init__(self, weights: Sequence[float], *, scale: float = 0.3) -> None:
        if scale <= 0:
            raise ScoringContractError(f"scale must be positive, got {scale}")
        if not weights or any(w <= 0 for w in weights):
            raise ScoringContractError(
                f"weights must be non-empty and positive, got {weights!r}"
            )
        self.weights = tuple(weights)
        self.scale = scale

    def g(self, j: int, x: float) -> float:
        try:
            return self.weights[j] * x / self.scale
        except IndexError:
            raise ScoringContractError(
                f"term index {j} outside the {len(self.weights)} configured weights"
            ) from None

    def f(self, x: float) -> float:
        return x

    def kernel_key(self) -> object:
        return (type(self), self.weights, self.scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeightedAdditiveMed(weights={self.weights}, scale={self.scale})"


class LinearDecayMax(MaxScoring):
    """MAX with linear distance decay: ``g_j(x, y) = x/scale − αy``.

    Contribution curves are tents with uniform slope α, so any two cross
    at most once; the contribution total is piecewise linear in the
    reference location with breakpoints exactly at match locations, so
    the maximum is attained at a match location (in fact at the paper's
    median).  Both Definition 8 flags therefore hold and the efficient
    specialized join applies.
    """

    at_most_one_crossing = True
    maximized_at_match = True

    def __init__(self, alpha: float = 1.0, *, scale: float = 0.3) -> None:
        if alpha <= 0:
            raise ScoringContractError(f"alpha must be positive, got {alpha}")
        if scale <= 0:
            raise ScoringContractError(f"scale must be positive, got {scale}")
        self.alpha = alpha
        self.scale = scale

    def g(self, j: int, x: float, y: float) -> float:
        return x / self.scale - self.alpha * y

    def f(self, x: float) -> float:
        return x

    def kernel_key(self) -> object:
        return (type(self), self.alpha, self.scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearDecayMax(alpha={self.alpha}, scale={self.scale})"
