"""Concrete distance-from-median (MED) scoring functions (Section IV).

* :class:`ExponentialProductMed` — Eq. (3):
  ``Π_j score_j · e^{−α·|loc_j − median(M)|}``, i.e. ``f(x) = e^{αx}``
  and ``g_j(x) = ln(x)/α``.
* :class:`AdditiveMed` — the MED function of the TREC/DBWorld
  experiments (footnote 9): ``g_j(x) = x/scale``, ``f(x) = x``.
* :class:`CustomMed` — adapter wrapping user callables.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.core.errors import ScoringContractError
from repro.core.scoring.base import MedScoring

__all__ = ["ExponentialProductMed", "AdditiveMed", "CustomMed"]


class ExponentialProductMed(MedScoring):
    """Eq. (3): product of scores, each decayed by distance to the median.

    ``score(M) = Π_j score_j · e^{−α·|loc_j − median(M)|}`` with α > 0.
    Match scores must be positive.
    """

    def __init__(self, alpha: float = 0.1) -> None:
        if alpha <= 0:
            raise ScoringContractError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def g(self, j: int, x: float) -> float:
        if x <= 0:
            raise ScoringContractError(
                f"ExponentialProductMed needs positive match scores, got {x}"
            )
        return math.log(x) / self.alpha

    def f(self, x: float) -> float:
        return math.exp(self.alpha * x)

    def kernel_key(self) -> object:
        return (type(self), self.alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialProductMed(alpha={self.alpha})"


class AdditiveMed(MedScoring):
    """The TREC-experiment MED function: ``Σ_j (score_j/scale − |loc_j − med|)``."""

    def __init__(self, scale: float = 0.3) -> None:
        if scale <= 0:
            raise ScoringContractError(f"scale must be positive, got {scale}")
        self.scale = scale

    def g(self, j: int, x: float) -> float:
        return x / self.scale

    def f(self, x: float) -> float:
        return x

    def kernel_key(self) -> object:
        return (type(self), self.scale)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdditiveMed(scale={self.scale})"


class CustomMed(MedScoring):
    """A MED scoring function from user callables (see :class:`CustomWin`)."""

    def __init__(
        self,
        g: Callable[[float], float] | Sequence[Callable[[float], float]],
        f: Callable[[float], float],
    ) -> None:
        self._per_term = None if callable(g) else tuple(g)
        self._g = g if callable(g) else None
        self._f = f

    def g(self, j: int, x: float) -> float:
        if self._per_term is not None:
            return self._per_term[j](x)
        assert self._g is not None
        return self._g(x)

    def f(self, x: float) -> float:
        return self._f(x)
