"""Empirical contract checking for custom scoring functions.

The paper "intentionally left functions f and g_j as unspecified as
possible" — which means users will write their own, and a function that
silently violates Definition 3's optimal-substructure property (or
Definition 8's properties for MAX) makes the fast joins return wrong
answers with no error.  These checkers probe a scoring function with
randomized inputs and report violations with concrete witnesses, so a
new function can be vetted in one call:

    report = check_win_contract(MyWin())
    assert report.ok, report.summary()

A passing report is evidence, not proof (the checks are sampled), but
every violation reported is a real counterexample.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.match import Match
from repro.core.scoring.base import MaxScoring, MedScoring, WinScoring

__all__ = [
    "ContractReport",
    "check_win_contract",
    "check_med_contract",
    "check_max_contract",
]


@dataclass
class ContractReport:
    """Outcome of a sampled contract check."""

    scoring: str
    checks_run: int
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"{self.scoring}: {self.checks_run} sampled checks passed"
        head = self.violations[: 3]
        return (
            f"{self.scoring}: {len(self.violations)} violation(s) in "
            f"{self.checks_run} checks; e.g. " + "; ".join(head)
        )


def _scores(rng: random.Random) -> float:
    return rng.uniform(0.05, 1.0)


def check_win_contract(
    scoring: WinScoring,
    *,
    samples: int = 800,
    seed: int = 0,
    num_terms: int = 3,
) -> ContractReport:
    """Probe Definition 3: monotonicity of f and optimal substructure.

    ``g`` totals are sampled through the function's own ``g`` so the
    probed region matches real inputs.
    """
    rng = random.Random(seed)
    report = ContractReport(type(scoring).__name__, samples)
    for _ in range(samples):
        # Two independent (x, y) points — the substructure property must
        # hold for *any* pair, in either orientation, so the coordinates
        # are deliberately not coupled.
        x1, x2 = (
            sum(scoring.g(j, _scores(rng)) for j in range(num_terms))
            for _ in range(2)
        )
        # Windows and shifts are sampled at token scale (small values):
        # contract violations in decaying f's live near their "knees",
        # and real windows are tens of tokens, not thousands.
        y1, y2 = (rng.uniform(0, 12) for _ in range(2))
        delta = rng.uniform(0, 6)
        x_small, x_large = sorted((x1, x2))
        y_small, y_large = sorted((y1, y2))
        # Monotone increasing in x.
        if scoring.f(x_large, y_small) < scoring.f(x_small, y_small) - 1e-12:
            report.violations.append(
                f"f not increasing in x at x={x_small:.3g}->{x_large:.3g}, y={y_small:.3g}"
            )
        # Monotone decreasing in y.
        if scoring.f(x_small, y_large) > scoring.f(x_small, y_small) + 1e-12:
            report.violations.append(
                f"f not decreasing in y at x={x_small:.3g}, y={y_small:.3g}->{y_large:.3g}"
            )
        # Optimal substructure, both shift directions, both orientations.
        for (xa, ya), (xb, yb) in (((x1, y1), (x2, y2)), ((x2, y2), (x1, y1))):
            if scoring.f(xa, ya) < scoring.f(xb, yb):
                continue
            if scoring.f(xa + delta, ya) < scoring.f(xb + delta, yb) - 1e-9:
                report.violations.append(
                    f"optimal substructure (x-shift) fails at "
                    f"({xa:.3g},{ya:.3g}) vs ({xb:.3g},{yb:.3g}), δ={delta:.3g}"
                )
            if scoring.f(xa, ya + delta) < scoring.f(xb, yb + delta) - 1e-9:
                report.violations.append(
                    f"optimal substructure (y-shift) fails at "
                    f"({xa:.3g},{ya:.3g}) vs ({xb:.3g},{yb:.3g}), δ={delta:.3g}"
                )
    return report


def check_med_contract(
    scoring: MedScoring,
    *,
    samples: int = 400,
    seed: int = 0,
    num_terms: int = 3,
) -> ContractReport:
    """Probe Definition 5: g monotone increasing per term, f increasing."""
    rng = random.Random(seed)
    report = ContractReport(type(scoring).__name__, samples)
    for _ in range(samples):
        j = rng.randrange(num_terms)
        lo, hi = sorted(_scores(rng) for _ in range(2))
        if scoring.g(j, hi) < scoring.g(j, lo) - 1e-12:
            report.violations.append(f"g_{j} not increasing at {lo:.3g}->{hi:.3g}")
        a, b = sorted(rng.uniform(-20, 20) for _ in range(2))
        if scoring.f(b) < scoring.f(a) - 1e-12:
            report.violations.append(f"f not increasing at {a:.3g}->{b:.3g}")
    return report


def check_max_contract(
    scoring: MaxScoring,
    *,
    samples: int = 300,
    seed: int = 0,
    max_location: int = 40,
) -> ContractReport:
    """Probe Definition 7/8: g monotonicity, and the two flags the
    specialized join relies on (only when the function declares them)."""
    rng = random.Random(seed)
    report = ContractReport(type(scoring).__name__, samples)
    for _ in range(samples):
        j = 0
        lo, hi = sorted(_scores(rng) for _ in range(2))
        d_lo, d_hi = sorted(rng.uniform(0, max_location) for _ in range(2))
        if scoring.g(j, hi, d_lo) < scoring.g(j, lo, d_lo) - 1e-12:
            report.violations.append(f"g not increasing in score at {lo:.3g}->{hi:.3g}")
        if scoring.g(j, lo, d_hi) > scoring.g(j, lo, d_lo) + 1e-12:
            report.violations.append(
                f"g not decreasing in distance at {d_lo:.3g}->{d_hi:.3g}"
            )
        if scoring.at_most_one_crossing:
            m1 = Match(rng.randrange(max_location), _scores(rng))
            m2 = Match(rng.randrange(max_location), _scores(rng))
            signs: list[int] = []
            for l in range(-2, max_location + 3):
                diff = scoring.contribution(j, m1, l) - scoring.contribution(j, m2, l)
                if abs(diff) > 1e-12:
                    sign = 1 if diff > 0 else -1
                    if not signs or signs[-1] != sign:
                        signs.append(sign)
            if len(signs) > 2:
                report.violations.append(
                    f"contributions of {m1} and {m2} cross more than once"
                )
        if scoring.maximized_at_match:
            from repro.core.matchset import MatchSet
            from repro.core.query import Query

            n = rng.randint(2, 4)
            query = Query.of(*(f"t{i}" for i in range(n)))
            matchset = MatchSet.from_sequence(
                query,
                [Match(rng.randrange(max_location), _scores(rng)) for _ in range(n)],
            )
            at_matches = max(
                scoring.score_at(matchset, l) for l in matchset.locations
            )
            on_grid = max(
                scoring.score_at(matchset, l) for l in range(-2, max_location + 3)
            )
            if on_grid > at_matches + 1e-9:
                report.violations.append(
                    f"score of {matchset} maximized off-match "
                    f"({on_grid:.6g} > {at_matches:.6g})"
                )
    return report
