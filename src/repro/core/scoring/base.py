"""Scoring-function framework (Definitions 3, 5, 7).

The paper defines three *families* of matchset scoring functions, each
parameterized by per-term transforms ``g_j`` and a combiner ``f``:

* :class:`WinScoring` — window-length scoring,
  ``f(Σ_j g_j(score_j), max_loc − min_loc)``;
* :class:`MedScoring` — distance-from-median scoring,
  ``f(Σ_j (g_j(score_j) − |loc_j − median(M)|))``;
* :class:`MaxScoring` — maximize-over-location scoring,
  ``max_l f(Σ_j g_j(score_j, |loc_j − l|))``.

Each family is an abstract base class; concrete scoring functions override
the ``g``/``f`` hooks.  The join algorithms consume only these hooks (plus
the contract flags on :class:`MaxScoring`), so any user-defined scoring
function satisfying the paper's conditions plugs straight in.
"""

from __future__ import annotations

import abc
from typing import Iterable

from repro.core.match import Match
from repro.core.matchset import MatchSet

__all__ = [
    "ScoringFunction",
    "WinScoring",
    "MedScoring",
    "MaxScoring",
]


class ScoringFunction(abc.ABC):
    """Common interface: score a full matchset.

    ``family`` names the scoring family ("WIN", "MED" or "MAX") and is
    used by the algorithm dispatcher and the experiment harness.
    """

    family: str = "?"

    @abc.abstractmethod
    def score(self, matchset: MatchSet) -> float:
        """The matchset score ``score(M, Q)``."""

    def kernel_key(self) -> object | None:
        """Hashable configuration identity for columnar-kernel caching.

        Two instances with equal (non-None) kernel keys must have
        byte-identical ``g`` behaviour: the kernel layer
        (:mod:`repro.core.kernels`) then shares one lowering of a match
        list between them, which is what lets per-request scoring
        presets hit a warm cache.  Include the concrete ``type`` in the
        key so subclasses that override ``g`` without overriding
        ``kernel_key`` can never collide with their parent.

        The default returns None: the kernel cache falls back to keying
        by instance identity (correct for any pure ``g``, but shared
        only across calls with the same instance).
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class WinScoring(ScoringFunction):
    """Window-length scoring (Definition 3).

    Subclasses implement ``g(j, x)`` (monotonically increasing in ``x``
    for every term index ``j``) and ``f(x, y)`` (increasing in ``x``,
    decreasing in ``y``, satisfying the optimal substructure property).
    Algorithm 1's correctness rests on those properties; they are not
    enforced at runtime but :mod:`tests` include property-based checks
    for every shipped implementation.
    """

    family = "WIN"

    @abc.abstractmethod
    def g(self, j: int, x: float) -> float:
        """Per-term transform of an individual match score."""

    @abc.abstractmethod
    def f(self, x: float, y: float) -> float:
        """Combine transformed-score total ``x`` with window length ``y``."""

    def score(self, matchset: MatchSet) -> float:
        total = sum(self.g(j, m.score) for j, m in enumerate(matchset.matches))
        return self.f(total, matchset.window_length)


class MedScoring(ScoringFunction):
    """Distance-from-median scoring (Definition 5).

    Subclasses implement ``g(j, x)`` and a monotonically increasing
    ``f(x)``.  The *contribution* of match ``m`` (for term ``j``) at a
    reference location ``l`` is ``g_j(score(m)) − |loc(m) − l|``
    (the distance penalty always has unit slope, which is what makes the
    prefix/suffix-maximum tricks in the by-location algorithm valid).
    """

    family = "MED"

    @abc.abstractmethod
    def g(self, j: int, x: float) -> float:
        """Per-term transform of an individual match score."""

    @abc.abstractmethod
    def f(self, x: float) -> float:
        """Monotonically increasing combiner of the contribution total."""

    def contribution(self, j: int, match: Match, location: int) -> float:
        """Distance-decayed score contribution ``c_j(m, l)``."""
        return self.g(j, match.score) - abs(match.location - location)

    def contribution_total(self, matchset: MatchSet, location: int) -> float:
        """``Σ_j c_j(m_j, l)`` at a given reference location."""
        return sum(
            self.contribution(j, m, location)
            for j, m in enumerate(matchset.matches)
        )

    def score(self, matchset: MatchSet) -> float:
        return self.f(self.contribution_total(matchset, matchset.median_location))


class MaxScoring(ScoringFunction):
    """Maximize-over-location scoring (Definition 7).

    Subclasses implement ``g(j, x, y)`` (increasing in score ``x``,
    decreasing in distance ``y``) and a monotonically increasing ``f``.

    Two contract flags gate the efficient specialized join (Section V):

    ``at_most_one_crossing``
        For any two matches of one list, the contribution difference
        changes sign at most once over locations (Definition 8).  Needed
        for the dominance-stack precomputation.
    ``maximized_at_match``
        For any matchset, the max over locations is attained at one of
        the matchset's own match locations (Definition 8).  Needed to
        restrict anchor candidates to match locations.

    Both shipped scoring functions (Eqs. 4 and 5) satisfy both flags
    (Lemma 3).  A custom function that does not should set the flags to
    False, in which case the dispatcher falls back to the general
    envelope-based approach or the naive algorithm.
    """

    family = "MAX"

    at_most_one_crossing: bool = True
    maximized_at_match: bool = True

    @abc.abstractmethod
    def g(self, j: int, x: float, y: float) -> float:
        """Contribution of a score-``x`` match at distance ``y``."""

    @abc.abstractmethod
    def f(self, x: float) -> float:
        """Monotonically increasing combiner of the contribution total."""

    def contribution(self, j: int, match: Match, location: int) -> float:
        """Distance-decayed score contribution ``c_j(m, l)``."""
        return self.g(j, match.score, abs(match.location - location))

    def contribution_total(self, matchset: MatchSet, location: int) -> float:
        """``Σ_j c_j(m_j, l)`` at anchor candidate ``l``."""
        return sum(
            self.contribution(j, m, location)
            for j, m in enumerate(matchset.matches)
        )

    def anchor_candidates(self, matchset: MatchSet) -> Iterable[int]:
        """Locations over which ``score`` maximizes.

        With ``maximized_at_match`` the matchset's own locations suffice;
        subclasses without the property must override this to enumerate a
        complete candidate set.
        """
        if not self.maximized_at_match:
            raise NotImplementedError(
                "scoring functions without maximized-at-match must override "
                "anchor_candidates()"
            )
        return sorted(set(matchset.locations))

    def score_at(self, matchset: MatchSet, location: int) -> float:
        """``f(Σ_j c_j(m_j, l))`` for a fixed reference location ``l``."""
        return self.f(self.contribution_total(matchset, location))

    def best_anchor(self, matchset: MatchSet) -> tuple[int, float]:
        """The anchor location attaining the matchset score, and the score.

        Ties favour the smallest location, making results deterministic.
        """
        best_l: int | None = None
        best_s = float("-inf")
        for l in self.anchor_candidates(matchset):
            s = self.score_at(matchset, l)
            if s > best_s:
                best_l, best_s = l, s
        assert best_l is not None
        return best_l, best_s

    def score(self, matchset: MatchSet) -> float:
        return self.best_anchor(matchset)[1]
