"""Matches and match lists (Definition 1 of the paper).

A :class:`Match` is an occurrence of (something that matches) a query term
inside a document: it has an integer ``location`` (token position) and a
real ``score`` measuring the quality of the match.  A :class:`MatchList`
holds all matches for one query term in one document, sorted by location.

Matches optionally carry a ``token`` (the surface form that matched, used
by the matching pipeline for explanations) and a ``token_id``.  The token
id identifies the underlying document token; two matches in *different*
match lists with the same token id correspond to the same physical token
matching two different query terms, which is exactly the "duplicate match"
situation of Section VI.  When not given, the token id defaults to the
location, which matches the paper's working definition (footnote 8: a
duplicate is a match whose location is identical to a match from another
list).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, overload

from repro.core.errors import InvalidMatchError, InvalidMatchListError

__all__ = ["Match", "MatchList", "merge_by_location"]


@dataclass(frozen=True, slots=True)
class Match:
    """A single scored match at a document location.

    Parameters
    ----------
    location:
        Token position of the match within the document (non-negative).
    score:
        Individual match score.  The paper draws scores from ``(0, 1]``
        but any finite real is accepted; specific scoring functions may
        impose stricter domains (e.g. products of logs need positives).
    token:
        Optional surface form that produced the match.
    token_id:
        Identity of the underlying document token, used for duplicate
        detection (Section VI).  Defaults to ``location``.
    """

    location: int
    score: float
    token: str | None = None
    token_id: int | None = field(default=None)

    def __post_init__(self) -> None:
        if not isinstance(self.location, int) or isinstance(self.location, bool):
            raise InvalidMatchError(f"location must be an int, got {self.location!r}")
        if self.location < 0:
            raise InvalidMatchError(f"location must be >= 0, got {self.location}")
        if not math.isfinite(self.score):
            raise InvalidMatchError(f"score must be finite, got {self.score!r}")
        if self.token_id is None:
            object.__setattr__(self, "token_id", self.location)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tok = f", token={self.token!r}" if self.token is not None else ""
        return f"Match(loc={self.location}, score={self.score:.4g}{tok})"


class MatchList(Sequence[Match]):
    """All matches for one query term in one document, sorted by location.

    The list is immutable after construction.  Construction validates the
    sort order unless ``presorted=True`` *and* the caller guarantees it;
    with ``presorted=False`` (default) the matches are sorted.

    Supports the usual sequence protocol plus location-based bisection
    helpers used by the join algorithms.
    """

    __slots__ = ("_matches", "_locations", "term", "_kernel_cache", "_bound_cache")

    def __init__(
        self,
        matches: Iterable[Match] = (),
        *,
        term: str | None = None,
        presorted: bool = False,
    ) -> None:
        # Lazily-populated cache of columnar lowerings (see
        # repro.core.kernels.columnar); sound because the list is
        # immutable.  Not part of equality or the hash.
        self._kernel_cache: dict | None = None
        # Per-(scoring, term-index) memo of the object-path upper-bound
        # maximum (max_m g_j(score(m))); kept separate from the kernel
        # cache so bound memos can never evict a lowered kernel.
        # Mutated only under repro.retrieval.topk_retrieval's module
        # bound-cache lock (lists are shared across serving threads).
        self._bound_cache: dict | None = None
        items = list(matches)
        for m in items:
            if not isinstance(m, Match):
                raise InvalidMatchListError(f"expected Match, got {type(m).__name__}")
        if presorted:
            for a, b in zip(items, items[1:]):
                if a.location > b.location:
                    raise InvalidMatchListError(
                        "matches are not sorted by location: "
                        f"{a.location} > {b.location}"
                    )
        else:
            items.sort(key=lambda m: m.location)
        self._matches: tuple[Match, ...] = tuple(items)
        self._locations: tuple[int, ...] = tuple(m.location for m in items)
        self.term = term

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[tuple[int, float]],
        *,
        term: str | None = None,
    ) -> "MatchList":
        """Build a match list from ``(location, score)`` pairs."""
        return cls((Match(loc, score) for loc, score in pairs), term=term)

    def __len__(self) -> int:
        return len(self._matches)

    @overload
    def __getitem__(self, index: int) -> Match: ...

    @overload
    def __getitem__(self, index: slice) -> "MatchList": ...

    def __getitem__(self, index: int | slice) -> "Match | MatchList":
        if isinstance(index, slice):
            return MatchList(self._matches[index], term=self.term, presorted=True)
        return self._matches[index]

    def __iter__(self) -> Iterator[Match]:
        return iter(self._matches)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchList):
            return NotImplemented
        return self._matches == other._matches and self.term == other.term

    def __hash__(self) -> int:
        return hash((self._matches, self.term))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" term={self.term!r}" if self.term else ""
        return f"MatchList(n={len(self)}{label})"

    @property
    def locations(self) -> tuple[int, ...]:
        """All match locations, in increasing order."""
        return self._locations

    def first_at_or_after(self, location: int) -> int:
        """Index of the first match at location ``>= location`` (or ``len``)."""
        return bisect.bisect_left(self._locations, location)

    def last_at_or_before(self, location: int) -> int:
        """Index of the last match at location ``<= location`` (or ``-1``)."""
        return bisect.bisect_right(self._locations, location) - 1

    def without(self, match: Match) -> "MatchList":
        """A copy of this list with one occurrence of ``match`` removed.

        Used by the Section VI duplicate-handling method, which reruns the
        duplicate-unaware algorithm on modified problem instances.
        """
        items = list(self._matches)
        try:
            items.remove(match)
        except ValueError:
            raise InvalidMatchListError(f"{match!r} not present in list") from None
        return MatchList(items, term=self.term, presorted=True)


def merge_by_location(lists: Sequence[MatchList]) -> Iterator[tuple[int, Match]]:
    """Merge several match lists into one location-ordered stream.

    Yields ``(term_index, match)`` pairs in non-decreasing location order;
    ties are broken by term index, making the processing order
    deterministic (the algorithms in the paper only require *a* consistent
    order).  Runs in ``O(Σ|L_j| · log |Q|)`` using an explicit k-way merge.
    """
    import heapq

    locations = [lst.locations for lst in lists]
    heap: list[tuple[int, int, int]] = []  # (location, term_index, pos)
    for j, locs in enumerate(locations):
        if locs:
            heap.append((locs[0], j, 0))
    heapq.heapify(heap)
    while heap:
        _location, j, pos = heap[0]
        yield j, lists[j][pos]
        nxt = pos + 1
        locs = locations[j]
        if nxt < len(locs):
            # replace = pop + push in one sift; the popped root was
            # already the minimum, so the yield order is unchanged.
            heapq.heapreplace(heap, (locs[nxt], j, nxt))
        else:
            heapq.heappop(heap)
