"""Core of the reproduction: data model, scoring functions, join algorithms."""

from repro.core.api import best_matchset, best_matchsets_by_location, extract_matchsets
from repro.core.errors import (
    EmptyJoinError,
    InvalidMatchError,
    InvalidMatchListError,
    InvalidQueryError,
    NoValidMatchSetError,
    ReproError,
    ScoringContractError,
)
from repro.core.io import (
    SerializationError,
    load_match_lists,
    save_match_lists,
)
from repro.core.match import Match, MatchList, merge_by_location
from repro.core.matchset import MatchSet, upper_median
from repro.core.query import Query

__all__ = [
    "Match",
    "MatchList",
    "MatchSet",
    "Query",
    "merge_by_location",
    "upper_median",
    "best_matchset",
    "best_matchsets_by_location",
    "extract_matchsets",
    "ReproError",
    "InvalidMatchError",
    "InvalidMatchListError",
    "InvalidQueryError",
    "EmptyJoinError",
    "NoValidMatchSetError",
    "ScoringContractError",
    "SerializationError",
    "save_match_lists",
    "load_match_lists",
]
