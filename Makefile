# Convenience targets for the weighted-proximity best-join reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full figures examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Paper-scale document counts (500 synthetic / 1000 TREC docs per point).
bench-full:
	REPRO_BENCH_DOCS=500 REPRO_BENCH_TREC_DOCS=1000 \
		$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.experiments.cli all --docs 100

examples:
	@for example in examples/*.py; do \
		echo "== $$example"; \
		$(PYTHON) $$example > /dev/null || exit 1; \
	done; echo "all examples ran"

clean:
	rm -rf .pytest_cache benchmarks/results build *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
