# Convenience targets for the weighted-proximity best-join reproduction.

PYTHON ?= python

.PHONY: install test check analyze typecheck chaos bench bench-full bench-joins bench-obs bench-cluster bench-scalability bench-durability serve-bench figures examples clean

install:
	pip install -e .

# Self-contained like `check`: runs from the source tree without an
# editable install.
test:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m pytest tests/

# Static-analysis gate (pure stdlib, see docs/ANALYSIS.md): concurrency
# lint over the serving path, determinism lint over the core
# algorithms, observability-taxonomy checks, exception hygiene.
# Exit codes: 0 clean, 1 findings / stale baseline, 2 internal error.
analyze:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m repro.analysis

# Optional: mypy over the typed packages (the paper core, the durable
# index layer, and the analyzer itself).  Skips (successfully) when
# mypy is not installed, so `make check` works in the minimal
# container.
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
			$(PYTHON) -m mypy --strict src/repro/core \
				src/repro/index src/repro/analysis; \
	else \
		echo "typecheck: mypy not installed, skipping"; \
	fi

# Cheap static pass (byte-compiles every module) + the analysis gate +
# the test suite.  Self-contained: runs from the source tree without an
# editable install.
check:
	$(PYTHON) -m compileall -q src
	$(MAKE) analyze
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) -m pytest tests/ --ignore=tests/reliability
	$(MAKE) chaos
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_join_kernels.py --check
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_observability.py --check
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_observability.py --check --shards 2
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_cluster.py --check
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_scalability.py --check
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_durability.py --check

# Fault-injection suite (tests/reliability): armed fault points, worker
# crashes, crash-safe snapshots, breaker/readiness behavior.  Each test
# runs under a faulthandler watchdog — a wedged test dumps every
# thread's traceback and aborts instead of hanging CI — and must return
# the process to its thread-count baseline (no leaked workers/servers).
chaos:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		REPRO_CHAOS_TEST_TIMEOUT=$${REPRO_CHAOS_TEST_TIMEOUT:-120} \
		$(PYTHON) -m pytest tests/reliability -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Paper-scale document counts (500 synthetic / 1000 TREC docs per point).
bench-full:
	REPRO_BENCH_DOCS=500 REPRO_BENCH_TREC_DOCS=1000 \
		$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Columnar join kernels vs the object path across all three scoring
# families; writes BENCH_join_kernels.json at the repository root and
# fails if the kernel path is < 2x at |Q|=3, 10k matches/list.
bench-joins:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_join_kernels.py

# Tracing overhead gate (< 5% p50 with tracing on, ~0 when sampled out)
# plus the per-stage latency breakdown of the serving path, in both the
# single-process and 2-shard cluster topologies; writes
# BENCH_observability.json and BENCH_observability_shards2.json at the
# repository root.
bench-obs:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_observability.py
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_observability.py --shards 2

# Sharded-cluster scaling: aggregate join throughput at N={1,2,4}
# shard processes over a zipf corpus, threshold-merge pull economy, and
# byte-identity vs single-process answers.  The throughput bar is
# calibrated to the machine (see benchmarks/bench_cluster.py); writes
# BENCH_cluster.json at the repository root.
bench-cluster:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_cluster.py

# Corpus-growth gate for the DAAT retrieval path: p95 ask latency must
# grow <= 2x while the corpus grows 10x (the REPRO_NO_DAAT=1 baseline
# is measured alongside for the report); writes BENCH_scalability.json
# at the repository root.
bench-scalability:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_scalability.py

# Durable-index liveness and restart gates: ingest-under-query
# throughput (appends through the executor's non-exclusive path while
# queries flow) and recovery time over segments + a WAL replay tail at
# 50k docs; writes BENCH_durability.json at the repository root.
bench-durability:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) benchmarks/bench_durability.py

# Serving-layer QPS/latency at concurrency {1,4,16}, cache on/off;
# writes benchmarks/results/service_throughput.txt and
# BENCH_service_throughput.json at the repository root.
serve-bench:
	cd benchmarks && PYTHONPATH=../src$${PYTHONPATH:+:$$PYTHONPATH} \
		$(PYTHON) bench_service_throughput.py

figures:
	$(PYTHON) -m repro.experiments.cli all --docs 100

# Self-contained like `check`: runs from the source tree without an
# editable install.
examples:
	@for example in examples/*.py; do \
		echo "== $$example"; \
		PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
			$(PYTHON) $$example > /dev/null || exit 1; \
	done; echo "all examples ran"

clean:
	rm -rf .pytest_cache benchmarks/results build *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
