"""Legacy setup shim.

All project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments where the PEP 660
editable-build path is unavailable (no ``wheel`` package).
"""

from setuptools import setup

setup()
