"""Robustness fuzzing: arbitrary text must never crash the pipeline.

These properties assert the absence of crashes and the preservation of
structural invariants (sorted lists, aligned terms, scores within the
matcher's declared range) for *any* unicode input — the contract a
production ingestion path needs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import best_matchset
from repro.core.query import Query
from repro.core.scoring.presets import trec_max
from repro.matching.dates import DateMatcher
from repro.matching.fuzzy import FuzzyMatcher
from repro.matching.pipeline import QueryMatcher
from repro.matching.places import PlaceMatcher
from repro.matching.semantic import SemanticMatcher
from repro.text.document import Document
from repro.text.stemmer import stem
from repro.text.tokenizer import tokenize

_text = st.text(max_size=300)


class TestMatcherRobustness:
    @settings(max_examples=60, deadline=None)
    @given(_text)
    def test_semantic_matcher_never_crashes(self, text):
        doc = Document("d", text)
        lst = SemanticMatcher("pc maker").matches(doc)
        assert all(0 <= m.location < max(len(doc.tokens), 1) for m in lst)
        assert all(0 < m.score <= 1.0 for m in lst)
        assert list(lst.locations) == sorted(lst.locations)

    @settings(max_examples=60, deadline=None)
    @given(_text)
    def test_date_and_place_matchers_never_crash(self, text):
        doc = Document("d", text)
        for matcher in (DateMatcher(), PlaceMatcher()):
            lst = matcher.matches(doc)
            assert list(lst.locations) == sorted(lst.locations)

    @settings(max_examples=40, deadline=None)
    @given(_text)
    def test_fuzzy_matcher_never_crashes(self, text):
        doc = Document("d", text)
        lst = FuzzyMatcher("lenovo", max_distance=2).matches(doc)
        assert all(0 <= m.score <= 1.0 for m in lst)


class TestPipelineRobustness:
    @settings(max_examples=40, deadline=None)
    @given(_text)
    def test_full_pipeline_on_arbitrary_text(self, text):
        query = Query.of("pc maker", "sports", "partnership")
        matcher = QueryMatcher(query)
        doc = Document("d", text)
        lists = matcher.match_lists(doc)
        assert [lst.term for lst in lists] == list(query)
        result = best_matchset(query, lists, trec_max())
        if result:
            assert result.matchset is not None
            assert set(result.matchset) == set(query)


class TestTextRobustness:
    @settings(max_examples=100, deadline=None)
    @given(_text)
    def test_tokenizer_round_trip_invariants(self, text):
        tokens = tokenize(text)
        for a, b in zip(tokens, tokens[1:]):
            assert a.end <= b.start  # non-overlapping, ordered spans

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=40))
    def test_stemmer_total(self, word):
        # stem() accepts any string and terminates.
        assert isinstance(stem(word), str)


class TestSearchSystemRobustness:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(_text, min_size=1, max_size=5))
    def test_system_over_arbitrary_corpora(self, texts):
        from repro.system import SearchSystem

        system = SearchSystem()
        system.add_texts((f"d{i}", text) for i, text in enumerate(texts))
        ranked = system.ask('"pc maker", sports, partnership', top_k=10)
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)
        for r in ranked:
            assert r.doc_id in system.corpus
