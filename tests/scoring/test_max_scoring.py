"""MAX scoring functions: closed forms and the Definition 8 properties."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ScoringContractError
from repro.core.match import Match
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.core.scoring.maxloc import (
    AdditiveExponentialMax,
    CustomMax,
    ExponentialProductMax,
)

Q3 = Query.of("a", "b", "c")


def ms(locs_scores):
    return MatchSet.from_sequence(Q3, [Match(l, s) for l, s in locs_scores])


class TestClosedForms:
    def test_eq4_at_fixed_anchor(self):
        scoring = ExponentialProductMax(alpha=0.1)
        matchset = ms([(2, 0.5), (10, 0.8), (6, 0.9)])
        at_6 = 0.5 * math.exp(-0.4) * 0.8 * math.exp(-0.4) * 0.9
        assert scoring.score_at(matchset, 6) == pytest.approx(at_6)
        assert scoring.score(matchset) >= at_6 - 1e-12

    def test_eq5_at_fixed_anchor(self):
        scoring = AdditiveExponentialMax(alpha=0.1)
        matchset = ms([(2, 0.5), (10, 0.8), (6, 0.9)])
        at_6 = 0.5 * math.exp(-0.4) + 0.8 * math.exp(-0.4) + 0.9
        assert scoring.score_at(matchset, 6) == pytest.approx(at_6)

    def test_best_anchor_returns_argmax(self):
        scoring = AdditiveExponentialMax(alpha=0.1)
        matchset = ms([(2, 0.5), (10, 0.8), (6, 0.9)])
        anchor, score = scoring.best_anchor(matchset)
        assert anchor in {2, 6, 10}
        assert score == pytest.approx(scoring.score(matchset))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ScoringContractError):
            AdditiveExponentialMax(alpha=0)
        with pytest.raises(ScoringContractError):
            ExponentialProductMax().g(0, 0.0, 1.0)


class TestMaximizedAtMatch:
    """Lemma 3: for Eqs. (4) and (5) the max over all locations is attained
    at a match location — checked against a dense grid."""

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(st.integers(0, 25), st.floats(0.1, 1.0)),
            min_size=3, max_size=3,
        ),
        st.sampled_from(["eq4", "eq5"]),
    )
    def test_grid_never_beats_match_locations(self, locs_scores, which):
        scoring = (
            ExponentialProductMax(alpha=0.2) if which == "eq4"
            else AdditiveExponentialMax(alpha=0.2)
        )
        matchset = ms(locs_scores)
        best_at_matches = scoring.score(matchset)
        grid_best = max(
            scoring.score_at(matchset, l) for l in range(-5, 31)
        )
        assert grid_best <= best_at_matches + 1e-9


class TestAtMostOneCrossing:
    """Contribution differences change sign at most once (Definition 8)."""

    @settings(max_examples=60)
    @given(
        st.tuples(st.integers(0, 25), st.floats(0.1, 1.0)),
        st.tuples(st.integers(0, 25), st.floats(0.1, 1.0)),
        st.sampled_from(["eq4", "eq5"]),
    )
    def test_sign_changes(self, a, b, which):
        scoring = (
            ExponentialProductMax(alpha=0.2) if which == "eq4"
            else AdditiveExponentialMax(alpha=0.2)
        )
        ma, mb = Match(*a), Match(*b)
        signs = []
        for l in range(-5, 31):
            d = scoring.contribution(0, ma, l) - scoring.contribution(0, mb, l)
            if abs(d) > 1e-12:
                s = 1 if d > 0 else -1
                if not signs or signs[-1] != s:
                    signs.append(s)
        assert len(signs) <= 2  # at most one sign change


class TestCustomMax:
    def test_requires_anchor_candidates_without_mam(self):
        with pytest.raises(ScoringContractError):
            CustomMax(g=lambda x, y: x - y, f=lambda x: x)

    def test_custom_anchor_candidates_used(self):
        scoring = CustomMax(
            g=lambda x, y: x - 0.1 * y,
            f=lambda x: x,
            anchor_candidates=lambda m: range(0, 12),
        )
        matchset = ms([(2, 0.5), (10, 0.8), (6, 0.9)])
        assert scoring.score(matchset) == pytest.approx(
            max(scoring.score_at(matchset, l) for l in range(0, 12))
        )

    def test_mam_flag_enables_default_candidates(self):
        scoring = CustomMax(
            g=lambda x, y: x - 0.1 * y, f=lambda x: x, maximized_at_match=True
        )
        matchset = ms([(2, 0.5), (10, 0.8), (6, 0.9)])
        assert scoring.score(matchset) == pytest.approx(
            max(scoring.score_at(matchset, l) for l in (2, 6, 10))
        )
