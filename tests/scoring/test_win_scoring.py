"""WIN scoring functions: closed forms and Definition 3 properties."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ScoringContractError
from repro.core.match import Match
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.core.scoring.win import CustomWin, ExponentialProductWin, LinearAdditiveWin

Q3 = Query.of("a", "b", "c")


def ms(locs_scores):
    return MatchSet.from_sequence(Q3, [Match(l, s) for l, s in locs_scores])


class TestExponentialProductWin:
    def test_matches_equation_1(self):
        scoring = ExponentialProductWin(alpha=0.1)
        matchset = ms([(2, 0.5), (10, 0.8), (6, 0.9)])
        expected = 0.5 * 0.8 * 0.9 * math.exp(-0.1 * 8)
        assert scoring.score(matchset) == pytest.approx(expected)

    def test_zero_window_no_decay(self):
        scoring = ExponentialProductWin(alpha=0.5)
        matchset = ms([(4, 0.5), (4, 0.8), (4, 0.9)])
        assert scoring.score(matchset) == pytest.approx(0.5 * 0.8 * 0.9)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ScoringContractError):
            ExponentialProductWin(alpha=0.0)

    def test_rejects_nonpositive_scores(self):
        with pytest.raises(ScoringContractError):
            ExponentialProductWin().g(0, 0.0)

    @given(
        st.floats(0.05, 1.0), st.floats(0.05, 1.0),
        st.integers(0, 50), st.integers(0, 50),
    )
    def test_f_monotonicity(self, x1, x2, y1, y2):
        scoring = ExponentialProductWin(alpha=0.1)
        gx1, gx2 = math.log(x1), math.log(x2)
        if gx1 >= gx2:
            assert scoring.f(gx1, y1) >= scoring.f(gx2, y1)
        if y1 >= y2:
            assert scoring.f(gx1, y1) <= scoring.f(gx1, y2)

    @given(
        st.floats(-3, 0), st.floats(-3, 0),
        st.floats(0, 50), st.floats(0, 50), st.floats(0, 10),
    )
    def test_optimal_substructure(self, x, x2, y, y2, delta):
        """f(x,y) ≥ f(x',y') → f(x+δ,y) ≥ f(x'+δ,y') and same in y."""
        scoring = ExponentialProductWin(alpha=0.1)
        if scoring.f(x, y) >= scoring.f(x2, y2):
            assert scoring.f(x + delta, y) >= scoring.f(x2 + delta, y2) - 1e-12
            assert scoring.f(x, y + delta) >= scoring.f(x2, y2 + delta) - 1e-12


class TestLinearAdditiveWin:
    def test_matches_footnote_9(self):
        scoring = LinearAdditiveWin(scale=0.3)
        matchset = ms([(2, 0.6), (10, 0.9), (6, 0.3)])
        expected = (0.6 + 0.9 + 0.3) / 0.3 - 8
        assert scoring.score(matchset) == pytest.approx(expected)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ScoringContractError):
            LinearAdditiveWin(scale=-1)

    @given(
        st.floats(-20, 20), st.floats(-20, 20),
        st.floats(0, 50), st.floats(0, 50), st.floats(0, 10),
    )
    def test_optimal_substructure(self, x, x2, y, y2, delta):
        scoring = LinearAdditiveWin()
        if scoring.f(x, y) >= scoring.f(x2, y2):
            assert scoring.f(x + delta, y) >= scoring.f(x2 + delta, y2) - 1e-12
            assert scoring.f(x, y + delta) >= scoring.f(x2, y2 + delta) - 1e-12


class TestCustomWin:
    def test_single_callable_applied_to_all_terms(self):
        scoring = CustomWin(g=lambda x: 2 * x, f=lambda x, y: x - y)
        matchset = ms([(0, 0.5), (4, 0.5), (2, 0.5)])
        assert scoring.score(matchset) == pytest.approx(3 * 1.0 - 4)

    def test_per_term_callables(self):
        scoring = CustomWin(
            g=[lambda x: x, lambda x: 10 * x, lambda x: 100 * x],
            f=lambda x, y: x - y,
        )
        matchset = ms([(0, 1.0), (1, 1.0), (2, 1.0)])
        assert scoring.score(matchset) == pytest.approx(111 - 2)
