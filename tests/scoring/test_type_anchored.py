"""Type-anchored scoring ([7]) and its linear join."""

import pytest
from hypothesis import given, settings

from repro.core.algorithms.max_join import max_join
from repro.core.algorithms.naive import naive_join
from repro.core.errors import ScoringContractError
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.algorithms.type_anchored import type_anchored_join
from repro.core.scoring.type_anchored import TypeAnchoredMax

from tests.conftest import join_instances


class TestTypeAnchoredMax:
    def test_score_anchors_at_type_match(self):
        q = Query.of("physicist", "invented")
        scoring = TypeAnchoredMax(type_term_index=0, alpha=0.5)
        lists = [
            MatchList.from_pairs([(0, 1.0)]),
            MatchList.from_pairs([(4, 1.0)]),
        ]
        result = naive_join(q, lists, scoring)
        # Anchored at location 0 (the type match), not at a midpoint.
        import math

        assert result.score == pytest.approx(1.0 + math.exp(-0.5 * 4))

    def test_rejected_by_generic_max_join(self):
        q = Query.of("a", "b")
        scoring = TypeAnchoredMax(0)
        lists = [MatchList.from_pairs([(0, 1.0)]), MatchList.from_pairs([(1, 1.0)])]
        with pytest.raises(ScoringContractError):
            max_join(q, lists, scoring)

    def test_parameter_validation(self):
        with pytest.raises(ScoringContractError):
            TypeAnchoredMax(-1)
        with pytest.raises(ScoringContractError):
            TypeAnchoredMax(0, alpha=0)

    def test_index_outside_query_rejected(self):
        q = Query.of("a")
        scoring = TypeAnchoredMax(3)
        with pytest.raises(ScoringContractError):
            type_anchored_join(q, [MatchList.from_pairs([(0, 1.0)])], scoring)


class TestTypeAnchoredJoin:
    def test_wrong_scoring_rejected(self):
        from repro.core.scoring.presets import trec_max

        q = Query.of("a")
        with pytest.raises(ScoringContractError):
            type_anchored_join(q, [MatchList.from_pairs([(0, 1.0)])], trec_max())

    def test_empty_list_gives_empty_result(self):
        q = Query.of("a", "b")
        scoring = TypeAnchoredMax(0)
        assert not type_anchored_join(
            q, [MatchList.from_pairs([(0, 1.0)]), MatchList()], scoring
        )

    def test_prefers_keywords_near_a_type_match(self):
        """The [7] intuition: answers cluster around the type term."""
        q = Query.of("physicist", "dental floss")
        scoring = TypeAnchoredMax(0, alpha=0.3)
        lists = [
            # two physicist mentions; the second is near the keywords
            MatchList.from_pairs([(0, 1.0), (50, 0.7)]),
            MatchList.from_pairs([(52, 1.0)]),
        ]
        result = type_anchored_join(q, lists, scoring)
        assert result.matchset["physicist"].location == 50

    @settings(max_examples=120, deadline=None)
    @given(join_instances(max_terms=4, max_len=5))
    def test_agrees_with_naive(self, instance):
        query, lists = instance
        for t in range(len(query)):
            scoring = TypeAnchoredMax(t, alpha=0.2)
            fast = type_anchored_join(query, lists, scoring)
            slow = naive_join(query, lists, scoring)
            assert fast.score == pytest.approx(slow.score), f"type index {t}"

    @settings(max_examples=60, deadline=None)
    @given(join_instances(max_terms=3, max_len=4))
    def test_restricted_anchor_never_beats_free_anchor(self, instance):
        """TypeAnchoredMax maximizes over a subset of Eq. (5)'s anchors,
        so its optimum is bounded by the free-anchor optimum."""
        from repro.core.algorithms.max_join import max_join as free_join
        from repro.core.scoring.maxloc import AdditiveExponentialMax

        query, lists = instance
        free = free_join(query, lists, AdditiveExponentialMax(alpha=0.2))
        for t in range(len(query)):
            anchored = type_anchored_join(
                query, lists, TypeAnchoredMax(t, alpha=0.2)
            )
            assert anchored.score <= free.score + 1e-9
