"""MED scoring functions: closed forms, contributions, Lemma 1."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ScoringContractError
from repro.core.match import Match
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.core.scoring.med import AdditiveMed, CustomMed, ExponentialProductMed

Q3 = Query.of("a", "b", "c")
Q4 = Query.of("a", "b", "c", "d")


def ms(query, locs_scores):
    return MatchSet.from_sequence(query, [Match(l, s) for l, s in locs_scores])


class TestExponentialProductMed:
    def test_matches_equation_3(self):
        scoring = ExponentialProductMed(alpha=0.1)
        matchset = ms(Q3, [(2, 0.5), (10, 0.8), (6, 0.9)])
        median = 6
        expected = (
            0.5 * math.exp(-0.1 * 4) * 0.8 * math.exp(-0.1 * 4) * 0.9 * math.exp(0)
        )
        assert matchset.median_location == median
        assert scoring.score(matchset) == pytest.approx(expected)

    def test_rejects_bad_alpha_and_scores(self):
        with pytest.raises(ScoringContractError):
            ExponentialProductMed(alpha=-0.1)
        with pytest.raises(ScoringContractError):
            ExponentialProductMed().g(0, -1.0)


class TestAdditiveMed:
    def test_matches_footnote_9(self):
        scoring = AdditiveMed(scale=0.3)
        matchset = ms(Q3, [(2, 0.6), (10, 0.9), (6, 0.3)])
        expected = (0.6 / 0.3 - 4) + (0.9 / 0.3 - 4) + (0.3 / 0.3 - 0)
        assert scoring.score(matchset) == pytest.approx(expected)

    def test_contribution_has_unit_slope(self):
        scoring = AdditiveMed()
        m = Match(10, 0.6)
        at_peak = scoring.contribution(0, m, 10)
        assert scoring.contribution(0, m, 13) == pytest.approx(at_peak - 3)
        assert scoring.contribution(0, m, 7) == pytest.approx(at_peak - 3)

    def test_win_equals_med_for_three_terms(self):
        """The paper's note: WIN and MED coincide for |Q| ≤ 3 (footnote-9 forms)."""
        from repro.core.scoring.win import LinearAdditiveWin

        win = LinearAdditiveWin(scale=0.3)
        med = AdditiveMed(scale=0.3)
        rng = random.Random(5)
        for _ in range(100):
            matchset = ms(
                Q3,
                [(rng.randint(0, 40), rng.uniform(0.1, 1.0)) for _ in range(3)],
            )
            assert win.score(matchset) == pytest.approx(med.score(matchset))


class TestLemma1:
    """Replacing a match with one dominating at median(M) never hurts."""

    @given(st.data())
    def test_replacement_never_decreases_score(self, data):
        scoring = AdditiveMed()
        n = data.draw(st.integers(2, 5))
        query = Query.of(*(f"t{i}" for i in range(n)))
        matches = [
            Match(data.draw(st.integers(0, 20)), data.draw(st.floats(0.1, 1.0)))
            for _ in range(n)
        ]
        matchset = MatchSet.from_sequence(query, matches)
        median = matchset.median_location
        j = data.draw(st.integers(0, n - 1))
        replacement = Match(
            data.draw(st.integers(0, 20)), data.draw(st.floats(0.1, 1.0))
        )
        # Only the Lemma's hypothesis case: replacement dominates at median.
        if scoring.contribution(j, replacement, median) >= scoring.contribution(
            j, matches[j], median
        ):
            swapped = list(matches)
            swapped[j] = replacement
            replaced = MatchSet.from_sequence(query, swapped)
            assert scoring.score(replaced) >= scoring.score(matchset) - 1e-9


class TestCustomMed:
    def test_per_term_callables(self):
        scoring = CustomMed(g=[lambda x: x, lambda x: 2 * x, lambda x: 3 * x], f=lambda x: x)
        matchset = ms(Q3, [(5, 1.0), (5, 1.0), (5, 1.0)])
        assert scoring.score(matchset) == pytest.approx(6.0)
