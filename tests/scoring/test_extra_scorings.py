"""The additional scoring functions, cross-checked against oracles."""

import pytest
from hypothesis import given, settings

from repro.core.algorithms.max_join import max_join
from repro.core.algorithms.med_join import med_join
from repro.core.algorithms.naive import naive_join
from repro.core.algorithms.win_join import win_join
from repro.core.errors import ScoringContractError
from repro.core.scoring.extra import (
    LinearDecayMax,
    PureProximityWin,
    WeightedAdditiveMed,
)
from repro.retrieval.proximity_scoring import minimal_cover_windows

from tests.conftest import join_instances


class TestPureProximityWin:
    @settings(max_examples=80, deadline=None)
    @given(join_instances(max_terms=4, max_len=5))
    def test_agrees_with_naive(self, instance):
        query, lists = instance
        scoring = PureProximityWin()
        fast = win_join(query, lists, scoring)
        slow = naive_join(query, lists, scoring)
        assert fast.score == pytest.approx(slow.score)

    @settings(max_examples=80, deadline=None)
    @given(join_instances(max_terms=4, max_len=5))
    def test_best_window_is_smallest_cover_window(self, instance):
        """The WIN family subsumes the classic shortest-cover criterion."""
        query, lists = instance
        result = win_join(query, lists, PureProximityWin())
        windows = minimal_cover_windows(lists)
        smallest = min(hi - lo for lo, hi in windows)
        assert -result.score == pytest.approx(smallest)


class TestWeightedAdditiveMed:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ScoringContractError):
            WeightedAdditiveMed([])
        with pytest.raises(ScoringContractError):
            WeightedAdditiveMed([1.0, -1.0])
        with pytest.raises(ScoringContractError):
            WeightedAdditiveMed([1.0], scale=0)

    def test_out_of_range_term_rejected(self):
        with pytest.raises(ScoringContractError):
            WeightedAdditiveMed([1.0]).g(3, 0.5)

    def test_weights_shift_the_best_matchset(self):
        from repro.core.match import MatchList
        from repro.core.query import Query

        q = Query.of("entity", "keyword")
        lists = [
            # entity: strong match far left, weak match near the keyword
            MatchList.from_pairs([(0, 1.0), (20, 0.3)]),
            MatchList.from_pairs([(21, 1.0)]),
        ]
        plain = med_join(q, lists, WeightedAdditiveMed([1.0, 1.0]))
        boosted = med_join(q, lists, WeightedAdditiveMed([60.0, 1.0]))
        assert plain.matchset["entity"].location == 20  # proximity wins
        assert boosted.matchset["entity"].location == 0  # weight wins

    @settings(max_examples=80, deadline=None)
    @given(join_instances(max_terms=4, max_len=5))
    def test_agrees_with_naive(self, instance):
        query, lists = instance
        scoring = WeightedAdditiveMed([1.0 + 0.5 * j for j in range(len(query))])
        fast = med_join(query, lists, scoring)
        slow = naive_join(query, lists, scoring)
        assert fast.score == pytest.approx(slow.score)


class TestLinearDecayMax:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ScoringContractError):
            LinearDecayMax(alpha=0)
        with pytest.raises(ScoringContractError):
            LinearDecayMax(scale=-1)

    @settings(max_examples=100, deadline=None)
    @given(join_instances(max_terms=4, max_len=5))
    def test_agrees_with_naive(self, instance):
        query, lists = instance
        scoring = LinearDecayMax(alpha=0.7)
        fast = max_join(query, lists, scoring)
        slow = naive_join(query, lists, scoring)
        assert fast.score == pytest.approx(slow.score)

    @settings(max_examples=60, deadline=None)
    @given(join_instances(max_terms=4, max_len=4))
    def test_anchor_is_a_median_of_the_matchset(self, instance):
        """Linear decay maximizes at a distance-sum minimizer — a median."""
        query, lists = instance
        scoring = LinearDecayMax(alpha=0.5)
        result = max_join(query, lists, scoring)
        anchor, _score = scoring.best_anchor(result.matchset)
        locations = sorted(result.matchset.locations)
        distance_sum = sum(abs(l - anchor) for l in locations)
        best_possible = min(
            sum(abs(l - c) for l in locations) for c in locations
        )
        assert distance_sum == best_possible
