"""Why the paper's scoring-function conditions matter.

Definition 3 demands the *optimal substructure* property of WIN's ``f``;
these tests construct plausible-looking scoring functions that violate
it — a power-law window decay and a hard window cut-off — together with
concrete inputs on which Algorithm 1 provably returns a suboptimal
matchset.  They document (and pin down) the boundary of the algorithm's
correctness rather than a bug: for such functions the naive join is the
right tool.
"""

import math

import pytest

from repro.core.algorithms.naive import naive_join
from repro.core.algorithms.win_join import win_join
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.win import CustomWin


class TestPowerLawDecayViolatesOptimalSubstructure:
    """f(x, y) = e^x / (1 + y): the decay *ratio* over a window increase
    depends on the current window, unlike exponential decay."""

    scoring = CustomWin(g=math.log, f=lambda x, y: math.exp(x) / (1.0 + y))

    def test_property_violation_witness(self):
        f = self.scoring.f
        # Equal scores at (x, 9) and (x', 0), then both windows grow by 1:
        x = math.log(10.0)  # f(x, 9) = 1.0
        x2 = math.log(1.0)  # f(x2, 0) = 1.0
        assert f(x, 9) == pytest.approx(f(x2, 0))
        # ...but the wide window decays *less*: ordering flips.
        assert f(x, 10) > f(x2, 1)

    def test_algorithm1_is_suboptimal_on_a_concrete_instance(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(0, 0.7), (9, 0.1)]),
            MatchList.from_pairs([(10, 0.5)]),
        ]
        fast = win_join(q, lists, self.scoring)
        slow = naive_join(q, lists, self.scoring)
        # The DP discards the strong-but-distant match at location 0 when
        # the weak match at 9 looks better locally; power-law decay later
        # favours the discarded one.
        assert slow.score > fast.score + 1e-12
        assert slow.matchset["a"].location == 0
        assert fast.matchset["a"].location == 9


class TestHardCutoffViolatesOptimalSubstructure:
    """f(x, y) = x for y ≤ W, else −∞: a window that is fine now can be
    ruined later, so locally-best partials are not globally safe."""

    scoring = CustomWin(
        g=lambda x: x,
        f=lambda x, y: x if y <= 4 else float("-inf"),
    )

    def test_property_violation_witness(self):
        f = self.scoring.f
        # f(1.0, 4) ≥ f(0.5, 1), but growing both windows by 3 flips it:
        assert f(1.0, 4) >= f(0.5, 1)
        assert f(1.0, 7) < f(0.5, 4)

    def test_algorithm1_is_suboptimal_on_a_concrete_instance(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(0, 0.9), (4, 0.5)]),
            MatchList.from_pairs([(7, 0.5)]),
        ]
        fast = win_join(q, lists, self.scoring)
        slow = naive_join(q, lists, self.scoring)
        # DP keeps the 0.9 match (window still within the cut-off at the
        # time), which the final match at 7 pushes over the limit.
        assert slow.score == pytest.approx(1.0)
        assert fast.score == float("-inf")


class TestExponentialDecayIsSafeOnTheSameInstances:
    """The same instances are handled optimally by a conforming function —
    the failure above is the scoring function's, not the algorithm's."""

    @pytest.mark.parametrize(
        "lists",
        [
            [
                MatchList.from_pairs([(0, 0.7), (9, 0.1)]),
                MatchList.from_pairs([(10, 0.5)]),
            ],
            [
                MatchList.from_pairs([(0, 0.9), (4, 0.5)]),
                MatchList.from_pairs([(7, 0.5)]),
            ],
        ],
    )
    def test_exponential_win_stays_optimal(self, lists):
        from repro.core.scoring.win import ExponentialProductWin

        q = Query.of("a", "b")
        scoring = ExponentialProductWin(alpha=0.25)
        fast = win_join(q, lists, scoring)
        slow = naive_join(q, lists, scoring)
        assert fast.score == pytest.approx(slow.score)
