"""The empirical contract checkers."""

import math

import pytest

from repro.core.scoring.contracts import (
    check_max_contract,
    check_med_contract,
    check_win_contract,
)
from repro.core.scoring.extra import LinearDecayMax, PureProximityWin, WeightedAdditiveMed
from repro.core.scoring.maxloc import AdditiveExponentialMax, CustomMax, ExponentialProductMax
from repro.core.scoring.med import AdditiveMed, ExponentialProductMed
from repro.core.scoring.win import CustomWin, ExponentialProductWin, LinearAdditiveWin


class TestShippedFunctionsPass:
    @pytest.mark.parametrize(
        "scoring",
        [ExponentialProductWin(0.1), LinearAdditiveWin(), PureProximityWin()],
        ids=lambda s: type(s).__name__,
    )
    def test_win_functions(self, scoring):
        report = check_win_contract(scoring)
        assert report.ok, report.summary()

    @pytest.mark.parametrize(
        "scoring",
        [ExponentialProductMed(0.1), AdditiveMed(), WeightedAdditiveMed([1.0, 2.0, 3.0])],
        ids=lambda s: type(s).__name__,
    )
    def test_med_functions(self, scoring):
        report = check_med_contract(scoring)
        assert report.ok, report.summary()

    @pytest.mark.parametrize(
        "scoring",
        [ExponentialProductMax(0.1), AdditiveExponentialMax(0.1), LinearDecayMax(0.5)],
        ids=lambda s: type(s).__name__,
    )
    def test_max_functions(self, scoring):
        report = check_max_contract(scoring)
        assert report.ok, report.summary()


class TestViolationsDetected:
    def test_power_law_win_caught(self):
        scoring = CustomWin(g=math.log, f=lambda x, y: math.exp(x) / (1.0 + y))
        report = check_win_contract(scoring)
        assert not report.ok
        assert any("optimal substructure" in v for v in report.violations)

    def test_hard_cutoff_win_caught(self):
        scoring = CustomWin(
            g=lambda x: x, f=lambda x, y: x if y <= 4 else float("-inf")
        )
        report = check_win_contract(scoring)
        assert not report.ok

    def test_decreasing_g_med_caught(self):
        from repro.core.scoring.med import CustomMed

        scoring = CustomMed(g=lambda x: -x, f=lambda x: x)
        report = check_med_contract(scoring)
        assert not report.ok
        assert any("not increasing" in v for v in report.violations)

    def test_false_maximized_at_match_claim_caught(self):
        # Gaussian-of-distance contributions: the sum of two equal bumps
        # peaks midway between them — claiming maximized-at-match is wrong.
        scoring = CustomMax(
            g=lambda x, y: x * math.exp(-0.02 * y * y),
            f=lambda x: x,
            at_most_one_crossing=True,
            maximized_at_match=True,
        )
        report = check_max_contract(scoring)
        assert not report.ok
        assert any("off-match" in v for v in report.violations)

    def test_report_summary_shows_examples(self):
        scoring = CustomWin(g=lambda x: x, f=lambda x, y: x + y)  # increasing in y!
        report = check_win_contract(scoring)
        assert not report.ok
        assert "violation" in report.summary()
