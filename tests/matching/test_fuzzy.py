"""Fuzzy (edit-distance) matcher."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.matching.fuzzy import FuzzyMatcher, bounded_levenshtein
from repro.text.document import Document

_words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=0, max_size=8
)


def full_levenshtein(a: str, b: str) -> int:
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        current = [i]
        for j, cb in enumerate(b, 1):
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + (ca != cb))
            )
        previous = current
    return previous[-1]


class TestBoundedLevenshtein:
    def test_known_distances(self):
        assert bounded_levenshtein("lenovo", "lenovo", 2) == 0
        assert bounded_levenshtein("lenovo", "lenvoo", 2) == 2  # transposition = 2 edits
        assert bounded_levenshtein("kitten", "sitting", 3) == 3
        assert bounded_levenshtein("abc", "abcd", 1) == 1

    def test_exceeding_limit_returns_none(self):
        assert bounded_levenshtein("kitten", "sitting", 2) is None
        assert bounded_levenshtein("a", "abcdef", 2) is None

    @given(_words, _words)
    def test_matches_unbounded_reference(self, a, b):
        want = full_levenshtein(a, b)
        got = bounded_levenshtein(a, b, 8)
        assert got == (want if want <= 8 else None)

    @given(_words, _words, st.integers(0, 4))
    def test_limit_semantics(self, a, b, limit):
        want = full_levenshtein(a, b)
        got = bounded_levenshtein(a, b, limit)
        if want <= limit:
            assert got == want
        else:
            assert got is None


class TestFuzzyMatcher:
    def test_exact_token_scores_one(self):
        doc = Document("d", "Lenovo ships laptops")
        matches = FuzzyMatcher("lenovo").matches(doc)
        assert matches[0].score == pytest.approx(1.0)

    def test_typo_matches_with_reduced_score(self):
        doc = Document("d", "Lenvoo ships laptops")
        matches = FuzzyMatcher("lenovo", max_distance=2).matches(doc)
        assert len(matches) == 1
        assert matches[0].score == pytest.approx(1.0 - 2 / 6)

    def test_beyond_distance_does_not_match(self):
        doc = Document("d", "Lanava ships laptops")
        assert len(FuzzyMatcher("lenovo", max_distance=1).matches(doc)) == 0

    def test_short_tokens_require_exact_match(self):
        doc = Document("d", "the cat sat")
        # "cat" is below min_token_length; "car" must not fuzzily match it.
        assert len(FuzzyMatcher("car").matches(doc)) == 0
        assert len(FuzzyMatcher("cat").matches(doc)) == 1

    def test_stopwords_never_match(self):
        doc = Document("d", "that is that")
        assert len(FuzzyMatcher("than").matches(doc)) == 0

    def test_multiword_term(self):
        doc = Document("d", "the olympc games begin")
        matches = FuzzyMatcher("olympic games").matches(doc)
        assert len(matches) == 1
        assert matches[0].token == "olympc games"
        assert matches[0].score == pytest.approx(1.0 - 1 / len("olympicgames"))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FuzzyMatcher("x", max_distance=0)

    def test_composes_with_semantic_union(self):
        from repro.matching.semantic import SemanticMatcher

        doc = Document("d", "Lenvoo renewed the partnership")
        union = SemanticMatcher("pc maker") | FuzzyMatcher("lenovo", max_distance=2)
        assert any(m.token == "lenvoo" for m in union.matches(doc))
