"""Regex matcher."""

import pytest

from repro.matching.regex import RegexMatcher
from repro.text.document import Document


class TestTokenMode:
    def test_fullmatch_on_tokens(self):
        doc = Document("d", "Release v1.2.3 follows v1.2 and version 2")
        matcher = RegexMatcher("version", r"v\d+(\.\d+)+")
        tokens = [m.token for m in matcher.matches(doc)]
        assert tokens == ["v1.2.3", "v1.2"]

    def test_case_insensitive_by_default(self):
        doc = Document("d", "CODE-17 and code-18")
        matcher = RegexMatcher("ticket", r"code-\d+")
        assert len(matcher.matches(doc)) == 2

    def test_case_sensitive_option(self):
        doc = Document("d", "CODE-17 and code-18")
        matcher = RegexMatcher("ticket", r"code-\d+", case_sensitive=True)
        # Tokens are lowercased by the tokenizer; both normalized forms match.
        assert len(matcher.matches(doc)) == 2

    def test_partial_token_does_not_match(self):
        doc = Document("d", "preconditions")
        matcher = RegexMatcher("t", r"condition")
        assert len(matcher.matches(doc)) == 0


class TestTextMode:
    def test_span_mapped_to_token_position(self):
        doc = Document("d", "contact us at ops@example.com today")
        matcher = RegexMatcher(
            "email", r"[\w.]+@[\w.]+", mode="text"
        )
        matches = matcher.matches(doc)
        assert len(matches) == 1
        assert matches[0].token == "ops@example.com"
        # "ops" is the 3rd token (0-based position 3).
        assert matches[0].location == 3

    def test_multi_token_span_anchored_at_first_token(self):
        doc = Document("d", "pay 250 dollars now")
        matcher = RegexMatcher("amount", r"\d+ dollars", mode="text")
        matches = matcher.matches(doc)
        assert len(matches) == 1
        assert matches[0].token == "250 dollars"
        assert matches[0].location == 1  # the "250" token

    def test_hit_in_pure_punctuation_dropped(self):
        doc = Document("d", "a --- b")
        matcher = RegexMatcher("dash", r"---", mode="text")
        assert len(matcher.matches(doc)) == 0


class TestValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            RegexMatcher("t", r"x", mode="words")

    def test_custom_score(self):
        doc = Document("d", "alpha")
        matcher = RegexMatcher("t", r"alpha", score=0.4)
        assert matcher.matches(doc)[0].score == 0.4

    def test_composes_with_union(self):
        from repro.matching.exact import ExactMatcher

        doc = Document("d", "alpha beta")
        union = RegexMatcher("t", r"alph.") | ExactMatcher("beta")
        assert len(union.matches(doc)) == 2
