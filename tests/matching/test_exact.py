"""Exact and stem matchers."""

import pytest

from repro.matching.exact import ExactMatcher, StemMatcher
from repro.text.document import Document


DOC = Document(
    "d",
    "Lenovo will become the official PC partner of the NBA. "
    "The partnership with partners builds on earlier partnerships.",
)


class TestExactMatcher:
    def test_single_word(self):
        matches = ExactMatcher("partner").matches(DOC)
        assert [m.location for m in matches] == [6]

    def test_case_insensitive(self):
        assert len(ExactMatcher("nba").matches(DOC)) == 1

    def test_no_match(self):
        assert len(ExactMatcher("dell").matches(DOC)) == 0

    def test_custom_score(self):
        matches = ExactMatcher("lenovo", score=0.4).matches(DOC)
        assert matches[0].score == pytest.approx(0.4)

    def test_multiword_phrase(self):
        doc = Document("d", "the olympic games in beijing")
        matches = ExactMatcher("olympic games").matches(doc)
        assert [m.location for m in matches] == [1]
        assert matches[0].token == "olympic games"

    def test_phrase_longer_than_document(self):
        doc = Document("d", "short")
        assert len(ExactMatcher("a much longer phrase").matches(doc)) == 0

    def test_term_label_set_on_list(self):
        assert ExactMatcher("nba").matches(DOC).term == "nba"


class TestStemMatcher:
    def test_matches_inflections(self):
        matches = StemMatcher("partner").matches(DOC)
        # partner (6), partners (13) share the stem; "partnership(s)" does not.
        assert [m.location for m in matches] == [6, 13]

    def test_partnership_inflections(self):
        matches = StemMatcher("partnership").matches(DOC)
        assert [m.location for m in matches] == [11, 17]

    def test_multiword_stemmed_phrase(self):
        doc = Document("d", "building bridges and built structures")
        matches = StemMatcher("build bridge").matches(doc)
        assert [m.location for m in matches] == [0]

    def test_union_of_exact_and_stem(self):
        union = ExactMatcher("partner", score=1.0) | StemMatcher("partner", score=0.5)
        matches = union.matches(DOC)
        by_loc = {m.location: m.score for m in matches}
        assert by_loc[6] == pytest.approx(1.0)  # exact wins at overlap
        assert by_loc[13] == pytest.approx(0.5)
