"""Date and number matchers."""

import pytest

from repro.matching.dates import DateMatcher, NumberMatcher
from repro.text.document import Document


class TestDateMatcher:
    def test_month_names(self):
        doc = Document("d", "submissions due June 24, deadline in September")
        matches = DateMatcher().matches(doc)
        tokens = {m.token for m in matches}
        assert "june" in tokens
        assert "september" in tokens

    def test_years_in_range(self):
        doc = Document("d", "from 1989 to 1990 and 2010 to 2011")
        matches = DateMatcher(year_range=(1990, 2010)).matches(doc)
        assert {m.token for m in matches} == {"1990", "2010"}

    def test_numeric_dates(self):
        doc = Document("d", "held 06/24/2008 and 24-26 next month")
        tokens = {m.token for m in DateMatcher().matches(doc)}
        assert "06/24/2008" in tokens
        assert "24-26" in tokens

    def test_small_day_numbers_not_years(self):
        doc = Document("d", "room 12 floor 3")
        assert len(DateMatcher().matches(doc)) == 0

    def test_score_is_one_by_default(self):
        doc = Document("d", "June 2008")
        assert all(m.score == pytest.approx(1.0) for m in DateMatcher().matches(doc))

    def test_abbreviated_months(self):
        doc = Document("d", "due Jan 5 or Sept 9")
        tokens = {m.token for m in DateMatcher().matches(doc)}
        assert {"jan", "sept"} <= tokens


class TestNumberMatcher:
    def test_range_filtering(self):
        doc = Document("d", "built in 1173, rebuilt 1990, room 7")
        matches = NumberMatcher("year", 1000, 2100).matches(doc)
        assert {m.token for m in matches} == {"1173", "1990"}

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            NumberMatcher("year", 10, 5)

    def test_non_numeric_ignored(self):
        doc = Document("d", "twelve 12a a12")
        assert len(NumberMatcher("n", 0, 100).matches(doc)) == 0
