"""The WordNet-like semantic matcher."""

import pytest

from repro.lexicon.graph import LexicalGraph
from repro.matching.semantic import SemanticMatcher
from repro.text.document import Document


@pytest.fixture
def graph():
    g = LexicalGraph()
    g.add_hyponyms("pc maker", "lenovo", "dell")
    g.add_edge("pc maker", "maker")
    g.add_edge("maker", "manufacturer")
    return g


class TestSemanticMatcher:
    def test_distance_scored_matches(self, graph):
        doc = Document("d", "Lenovo and Dell are rivals; the manufacturer wins.")
        matcher = SemanticMatcher("pc maker", lexicon=graph)
        matches = matcher.matches(doc)
        by_token = {m.token: m.score for m in matches}
        assert by_token["lenovo"] == pytest.approx(0.7)
        assert by_token["dell"] == pytest.approx(0.7)
        assert by_token["manufacturer"] == pytest.approx(0.4)

    def test_exact_phrase_scores_one(self, graph):
        doc = Document("d", "every pc maker ships laptops")
        matches = SemanticMatcher("pc maker", lexicon=graph).matches(doc)
        assert matches[0].token == "pc maker"
        assert matches[0].score == pytest.approx(1.0)

    def test_longest_phrase_preferred(self):
        g = LexicalGraph()
        g.add_edge("sports", "olympic games")
        g.add_edge("sports", "olympic")
        doc = Document("d", "the olympic games begin")
        matches = SemanticMatcher("sports", lexicon=g).matches(doc)
        assert matches[0].token == "olympic games"
        assert matches[0].score == pytest.approx(0.7)

    def test_stopwords_not_matched_as_unigrams(self):
        g = LexicalGraph()
        g.add_edge("question", "the")  # degenerate lexicon entry
        doc = Document("d", "the cat")
        matches = SemanticMatcher("question", lexicon=g).matches(doc)
        assert len(matches) == 0

    def test_unknown_term_still_matches_itself(self):
        g = LexicalGraph()
        doc = Document("d", "zyzzyva sightings of zyzzyva")
        matches = SemanticMatcher("zyzzyva", lexicon=g).matches(doc)
        assert [m.location for m in matches] == [0, 3]
        assert all(m.score == pytest.approx(1.0) for m in matches)

    def test_stemming_bridges_inflections(self, graph):
        doc = Document("d", "manufacturers compete")
        matches = SemanticMatcher("pc maker", lexicon=graph).matches(doc)
        assert matches and matches[0].score == pytest.approx(0.4)

    def test_tighter_distance_budget(self, graph):
        doc = Document("d", "the manufacturer")
        matcher = SemanticMatcher("pc maker", lexicon=graph, max_distance=1)
        assert len(matcher.matches(doc)) == 0

    def test_expansion_size_reported(self, graph):
        matcher = SemanticMatcher("pc maker", lexicon=graph)
        assert matcher.expansion_size >= 5
