"""The place matcher (gazetteer + lexicon cascade)."""

import pytest

from repro.matching.places import PlaceMatcher
from repro.text.document import Document


class TestPlaceMatcher:
    def test_gazetteer_hits_score_one(self):
        doc = Document("d", "held in Pisa, Italy")
        matches = PlaceMatcher().matches(doc)
        by_token = {m.token: m.score for m in matches}
        assert by_token["pisa"] == pytest.approx(1.0)
        assert by_token["italy"] == pytest.approx(1.0)

    def test_lexicon_neighbor_scores_0_7(self):
        # The paper adds a university—place edge; "university" scores 0.7.
        doc = Document("d", "at the University of Somewhere")
        matches = PlaceMatcher().matches(doc)
        by_token = {m.token: m.score for m in matches}
        assert by_token["university"] == pytest.approx(0.7)

    def test_multiword_place_names(self):
        doc = Document("d", "flights to New York and Hong Kong")
        matches = PlaceMatcher().matches(doc)
        tokens = {m.token for m in matches}
        assert "new york" in tokens
        assert "hong kong" in tokens

    def test_longest_gazetteer_match_wins(self):
        doc = Document("d", "rio de janeiro carnival")
        matches = PlaceMatcher().matches(doc)
        assert matches[0].token == "rio de janeiro"

    def test_exact_concept_mention_matches(self):
        doc = Document("d", "the place to be")
        matches = PlaceMatcher().matches(doc)
        assert any(m.token == "place" for m in matches)

    def test_non_places_ignored(self):
        doc = Document("d", "databases and algorithms")
        assert len(PlaceMatcher().matches(doc)) == 0
