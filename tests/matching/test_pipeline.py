"""QueryMatcher and default matcher selection."""

import pytest

from repro.core.query import Query
from repro.matching.dates import DateMatcher, NumberMatcher
from repro.matching.exact import ExactMatcher
from repro.matching.pipeline import QueryMatcher, default_matcher
from repro.matching.places import PlaceMatcher
from repro.matching.semantic import SemanticMatcher
from repro.matching.base import UnionMatcher
from repro.text.document import Document


class TestDefaultMatcher:
    def test_special_terms(self):
        assert isinstance(default_matcher("date"), DateMatcher)
        assert isinstance(default_matcher("year"), NumberMatcher)
        assert isinstance(default_matcher("place"), PlaceMatcher)

    def test_general_terms_get_semantic_matcher(self):
        assert isinstance(default_matcher("partnership"), SemanticMatcher)

    def test_alternation_builds_union(self):
        matcher = default_matcher("conference|workshop")
        assert isinstance(matcher, UnionMatcher)


class TestQueryMatcher:
    def test_produces_one_list_per_term_in_order(self):
        q = Query.of("conference|workshop", "date", "place")
        doc = Document(
            "d", "The workshop takes place in Pisa, Italy on June 24, 2008."
        )
        lists = QueryMatcher(q).match_lists(doc)
        assert len(lists) == 3
        assert lists[0].term == "conference|workshop"
        assert len(lists[0]) >= 1  # workshop
        assert len(lists[1]) >= 2  # june, 2008
        assert len(lists[2]) >= 2  # pisa, italy

    def test_explicit_matcher_override(self):
        q = Query.of("a", "b")
        qm = QueryMatcher(q, matchers={"a": ExactMatcher("lenovo")})
        doc = Document("d", "lenovo b")
        lists = qm.match_lists(doc)
        assert [m.token for m in lists[0]] == ["lenovo"]

    def test_unknown_override_term_rejected(self):
        q = Query.of("a")
        with pytest.raises(ValueError):
            QueryMatcher(q, matchers={"zzz": ExactMatcher("x")})

    def test_duplicate_token_across_terms_shares_location(self):
        """One token serving two terms produces same-location matches —
        the Section VI duplicate situation."""
        q = Query.of("asia", "porcelain")
        doc = Document("d", "fine china exports")
        qm = QueryMatcher(
            q,
            matchers={
                "asia": ExactMatcher("china"),
                "porcelain": ExactMatcher("china"),
            },
        )
        lists = qm.match_lists(doc)
        assert lists[0][0].location == lists[1][0].location
        assert lists[0][0].token_id == lists[1][0].token_id
