"""The query language."""

import pytest

from repro.matching.base import UnionMatcher
from repro.matching.dates import DateMatcher, NumberMatcher
from repro.matching.exact import ExactMatcher, StemMatcher
from repro.matching.places import PlaceMatcher
from repro.matching.queries import QuerySyntaxError, build_query_matcher, parse_query
from repro.matching.semantic import SemanticMatcher
from repro.text.document import Document


class TestParseQuery:
    def test_plain_terms(self):
        query, matchers = parse_query("sports, partnership")
        assert list(query) == ["sports", "partnership"]
        assert isinstance(matchers["sports"], SemanticMatcher)

    def test_quoted_multiword_term(self):
        query, matchers = parse_query('"pc maker", sports')
        assert list(query) == ["pc maker", "sports"]

    def test_quoted_comma_stays_in_term(self):
        query, _ = parse_query('"acme, inc", place')
        assert list(query) == ["acme, inc", "place"]

    def test_typed_terms(self):
        from repro.matching.fuzzy import FuzzyMatcher

        _, matchers = parse_query(
            "lenovo:exact, partner:stem, hp:fuzzy, when:date, year:year, "
            "where:place, pc:semantic"
        )
        assert isinstance(matchers["lenovo"], ExactMatcher)
        assert isinstance(matchers["partner"], StemMatcher)
        assert isinstance(matchers["hp"], FuzzyMatcher)
        assert isinstance(matchers["when"], DateMatcher)
        assert isinstance(matchers["year"], NumberMatcher)
        assert isinstance(matchers["where"], PlaceMatcher)
        assert isinstance(matchers["pc"], SemanticMatcher)

    def test_special_bare_spellings(self):
        _, matchers = parse_query("date, place")
        assert isinstance(matchers["date"], DateMatcher)
        assert isinstance(matchers["place"], PlaceMatcher)

    def test_alternation(self):
        _, matchers = parse_query("conference|workshop, date")
        assert isinstance(matchers["conference|workshop"], UnionMatcher)

    def test_colon_followed_by_text_is_plain(self):
        query, matchers = parse_query("acme: the company, place")
        assert query[0] == "acme: the company"
        assert isinstance(matchers["acme: the company"], SemanticMatcher)

    def test_unknown_type_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("foo:regex")

    def test_empty_query_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("  ,  ")

    def test_unterminated_quote_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('"pc maker, sports')

    def test_duplicate_labels_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("sports, sports")

    def test_missing_label_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(":date")


class TestBuildQueryMatcher:
    def test_end_to_end(self):
        qm = build_query_matcher('"pc maker", sports, partnership')
        doc = Document("d", "Lenovo renewed its partnership with the NBA.")
        lists = qm.match_lists(doc)
        assert [lst.term for lst in lists] == ["pc maker", "sports", "partnership"]
        assert all(len(lst) >= 1 for lst in lists)

    def test_typed_matchers_applied(self):
        qm = build_query_matcher("nba:exact, when:date")
        doc = Document("d", "The NBA signed in June 2008.")
        lists = qm.match_lists(doc)
        assert [m.token for m in lists[0]] == ["nba"]
        assert {m.token for m in lists[1]} == {"june", "2008"}
