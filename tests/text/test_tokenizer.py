"""Tokenizer tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenizer import Token, tokenize


class TestTokenize:
    def test_basic_words(self):
        tokens = tokenize("Lenovo partners with the NBA")
        assert [t.text for t in tokens] == ["lenovo", "partners", "with", "the", "nba"]

    def test_positions_count_tokens(self):
        tokens = tokenize("a b  c,   d")
        assert [t.position for t in tokens] == [0, 1, 2, 3]

    def test_character_offsets(self):
        text = "Hello,  world"
        tokens = tokenize(text)
        assert text[tokens[0].start : tokens[0].end] == "Hello"
        assert text[tokens[1].start : tokens[1].end] == "world"

    def test_raw_preserves_case(self):
        tokens = tokenize("Hewlett-Packard")
        assert tokens[0].raw == "Hewlett-Packard"
        assert tokens[0].text == "hewlett-packard"

    def test_lowercase_can_be_disabled(self):
        tokens = tokenize("NBA", lowercase=False)
        assert tokens[0].text == "NBA"

    def test_hyphen_and_apostrophe_glue(self):
        tokens = tokenize("don't use state-of-the-art tricks")
        assert tokens[0].text == "don't"
        assert tokens[2].text == "state-of-the-art"

    def test_numeric_dates_stay_whole(self):
        tokens = tokenize("due 06/24/2008 or 24-26")
        texts = [t.text for t in tokens]
        assert "06/24/2008" in texts
        assert "24-26" in texts

    def test_abbreviations(self):
        tokens = tokenize("in the U.S. market")
        assert "u.s" in [t.text for t in tokens] or "u.s." in [t.text for t in tokens]

    def test_empty_and_punctuation_only(self):
        assert tokenize("") == []
        assert tokenize("... !!! ---") == []

    def test_numbers(self):
        tokens = tokenize("between 1990 and 2010")
        assert [t.text for t in tokens] == ["between", "1990", "and", "2010"]

    @given(st.text(max_size=200))
    def test_positions_are_consecutive(self, text):
        tokens = tokenize(text)
        assert [t.position for t in tokens] == list(range(len(tokens)))

    @given(st.text(max_size=200))
    def test_offsets_slice_back_to_raw(self, text):
        for t in tokenize(text):
            assert text[t.start : t.end] == t.raw
