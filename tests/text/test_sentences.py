"""Sentence segmentation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.sentences import sentence_index, split_sentences
from repro.text.tokenizer import tokenize


class TestSplitSentences:
    def test_basic_split(self):
        text = "Lenovo partners with the NBA. The deal was announced today."
        spans = split_sentences(text)
        assert len(spans) == 2
        assert text[spans[0][0] : spans[0][1]].startswith("Lenovo")
        assert text[spans[1][0] : spans[1][1]].startswith("The deal")

    def test_question_and_exclamation(self):
        spans = split_sentences("Who invented dental floss? Nobody knows! Ask around.")
        assert len(spans) == 3

    def test_abbreviations_do_not_split(self):
        spans = split_sentences("Dr. Smith visited the U.S. office. He left early.")
        assert len(spans) == 2

    def test_initials_do_not_split(self):
        spans = split_sentences("J. Smith and K. Jones wrote it together.")
        assert len(spans) == 1

    def test_blank_line_splits(self):
        spans = split_sentences("First paragraph here\n\nsecond paragraph there")
        assert len(spans) == 2

    def test_bullet_lines_split(self):
        spans = split_sentences("Important dates\n  - submission May 5\n  - notify June 2")
        assert len(spans) == 3

    def test_empty_text(self):
        assert split_sentences("") == []

    @settings(max_examples=80)
    @given(st.text(max_size=300))
    def test_spans_partition_the_text(self, text):
        spans = split_sentences(text)
        if not text:
            assert spans == []
            return
        assert spans[0][0] == 0
        assert spans[-1][1] == len(text)
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end == b_start
            assert a_start < a_end


class TestSentenceIndex:
    def test_tokens_mapped_to_sentences(self):
        text = "Lenovo partners with the NBA. The deal was announced."
        tokens = tokenize(text)
        idx = sentence_index(tokens, text)
        assert idx[0] == 0  # lenovo
        assert idx[-1] == 1  # announced

    def test_monotone_nondecreasing(self):
        text = "One sentence. Two sentences. Three sentences."
        tokens = tokenize(text)
        idx = sentence_index(tokens, text)
        assert idx == sorted(idx)


class TestWithinSentenceExtraction:
    def test_cross_sentence_matchsets_filtered(self):
        from repro.core.query import Query
        from repro.core.scoring.presets import trec_win
        from repro.extraction.extractor import MatchsetExtractor
        from repro.text.document import Document

        doc = Document(
            "d",
            "Lenovo signed a partnership with the NBA. "
            "Much later, Dell mentioned tennis without any partnership news.",
        )
        query = Query.of("pc maker", "sports", "partnership")
        loose = MatchsetExtractor(query, trec_win()).extract(doc)
        strict = MatchsetExtractor(query, trec_win(), within_sentence=True).extract(doc)
        assert len(strict) <= len(loose)
        # The surviving extractions stay inside the first sentence.
        from repro.text.sentences import sentence_index

        idx = sentence_index(doc.tokens, doc.text)
        for e in strict:
            assert len({idx[loc] for _t, _x, loc in e.fields}) == 1
        assert strict  # the first sentence holds a complete matchset
