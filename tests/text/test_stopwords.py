"""Stopword list tests."""

from repro.text.stopwords import STOPWORDS, is_stopword


def test_common_function_words_present():
    for word in ("the", "and", "of", "in", "is", "was"):
        assert word in STOPWORDS


def test_content_words_absent():
    for word in ("lenovo", "conference", "partnership", "city"):
        assert word not in STOPWORDS


def test_is_stopword_case_insensitive():
    assert is_stopword("The")
    assert is_stopword("AND")
    assert not is_stopword("NBA")


def test_reasonable_size():
    assert 100 <= len(STOPWORDS) <= 250
