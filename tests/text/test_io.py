"""Corpus loaders."""

import json

import pytest

from repro.core.io import SerializationError
from repro.text.document import Corpus, Document
from repro.text.io import load_directory, load_jsonl, save_jsonl


class TestLoadDirectory:
    def test_loads_txt_files_in_order(self, tmp_path):
        (tmp_path / "b.txt").write_text("beta")
        (tmp_path / "a.txt").write_text("alpha")
        (tmp_path / "ignored.md").write_text("nope")
        corpus = load_directory(tmp_path)
        assert [d.doc_id for d in corpus] == ["a", "b"]
        assert corpus["a"].text == "alpha"

    def test_custom_pattern(self, tmp_path):
        (tmp_path / "x.md").write_text("md")
        corpus = load_directory(tmp_path, pattern="*.md")
        assert len(corpus) == 1

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            load_directory(tmp_path / "nope")


class TestJsonl:
    def test_round_trip_with_metadata(self, tmp_path):
        corpus = Corpus(
            [
                Document("d1", "first text", metadata={"label": "a", "n": 1}),
                Document("d2", "second text"),
            ]
        )
        path = tmp_path / "corpus.jsonl"
        save_jsonl(corpus, path)
        loaded = load_jsonl(path)
        assert [d.doc_id for d in loaded] == ["d1", "d2"]
        assert loaded["d1"].text == "first text"
        assert loaded["d1"].metadata == {"label": "a", "n": 1}

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text('{"id": "a", "text": "t"}\n\n')
        assert len(load_jsonl(path)) == 1

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text(json.dumps({"id": "a"}))
        with pytest.raises(SerializationError):
            load_jsonl(path)

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text("{broken")
        with pytest.raises(SerializationError):
            load_jsonl(path)

    def test_unserializable_metadata_dropped(self, tmp_path):
        doc = Document("d", "text", metadata={"ok": 1, "bad": object()})
        path = tmp_path / "corpus.jsonl"
        save_jsonl([doc], path)
        loaded = load_jsonl(path)
        assert loaded["d"].metadata == {"ok": 1}
