"""Document and Corpus tests."""

import pytest

from repro.text.document import Corpus, Document


class TestDocument:
    def test_tokens_lazy_and_cached(self):
        doc = Document("d1", "alpha beta gamma")
        assert doc._tokens is None
        tokens = doc.tokens
        assert [t.text for t in tokens] == ["alpha", "beta", "gamma"]
        assert doc.tokens is tokens  # cached

    def test_len_counts_tokens(self):
        assert len(Document("d", "one two three")) == 3

    def test_metadata_defaults_to_empty_dict(self):
        doc = Document("d", "x")
        assert doc.metadata == {}
        doc.metadata["k"] = 1
        assert doc.metadata["k"] == 1


class TestCorpus:
    def test_add_and_lookup(self):
        corpus = Corpus([Document("a", "x"), Document("b", "y")])
        assert len(corpus) == 2
        assert corpus["a"].text == "x"
        assert "b" in corpus
        assert "z" not in corpus

    def test_duplicate_ids_rejected(self):
        corpus = Corpus([Document("a", "x")])
        with pytest.raises(ValueError):
            corpus.add(Document("a", "y"))

    def test_iteration_preserves_order(self):
        docs = [Document(f"d{i}", "t") for i in range(5)]
        corpus = Corpus(docs)
        assert [d.doc_id for d in corpus] == [f"d{i}" for i in range(5)]
