"""Porter stemmer tests against the algorithm's published examples."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.stemmer import PorterStemmer, stem

# (word, expected stem) pairs taken from Porter's 1980 paper examples.
PORTER_FIXTURES = {
    # step 1a
    "caresses": "caress",
    "ponies": "poni",
    "ties": "ti",
    "caress": "caress",
    "cats": "cat",
    # step 1b
    "feed": "feed",
    "agreed": "agre",
    "plastered": "plaster",
    "bled": "bled",
    "motoring": "motor",
    "sing": "sing",
    "conflated": "conflat",
    "troubled": "troubl",
    "sized": "size",
    "hopping": "hop",
    "tanned": "tan",
    "falling": "fall",
    "hissing": "hiss",
    "fizzed": "fizz",
    "failing": "fail",
    "filing": "file",
    # step 1c
    "happy": "happi",
    "sky": "sky",
    # step 2
    "relational": "relat",
    "conditional": "condit",
    "rational": "ration",
    "valenci": "valenc",
    "hesitanci": "hesit",
    "digitizer": "digit",
    "conformabli": "conform",
    "radicalli": "radic",
    "differentli": "differ",
    "vileli": "vile",
    "analogousli": "analog",
    "vietnamization": "vietnam",
    "predication": "predic",
    "operator": "oper",
    "feudalism": "feudal",
    "decisiveness": "decis",
    "hopefulness": "hope",
    "callousness": "callous",
    "formaliti": "formal",
    "sensitiviti": "sensit",
    "sensibiliti": "sensibl",
    # step 3
    "triplicate": "triplic",
    "formative": "form",
    "formalize": "formal",
    "electriciti": "electr",
    "electrical": "electr",
    "hopeful": "hope",
    "goodness": "good",
    # step 4
    "revival": "reviv",
    "allowance": "allow",
    "inference": "infer",
    "airliner": "airlin",
    "gyroscopic": "gyroscop",
    "adjustable": "adjust",
    "defensible": "defens",
    "irritant": "irrit",
    "replacement": "replac",
    "adjustment": "adjust",
    "dependent": "depend",
    "adoption": "adopt",
    "communism": "commun",
    "activate": "activ",
    "angulariti": "angular",
    "homologous": "homolog",
    "effective": "effect",
    "bowdlerize": "bowdler",
    # step 5
    "probate": "probat",
    "rate": "rate",
    "cease": "ceas",
    "controll": "control",
    "roll": "roll",
}


class TestPorterFixtures:
    @pytest.mark.parametrize("word,expected", sorted(PORTER_FIXTURES.items()))
    def test_known_stems(self, word, expected):
        assert PorterStemmer().stem(word) == expected


class TestStemmerBehaviour:
    def test_short_words_unchanged(self):
        assert stem("at") == "at"
        assert stem("by") == "by"
        assert stem("a") == "a"

    def test_case_insensitive(self):
        assert stem("Partnership") == stem("partnership")

    def test_non_alpha_tokens_unchanged(self):
        assert stem("2008") == "2008"
        assert stem("hewlett-packard") == "hewlett-packard"

    def test_inflections_share_a_stem(self):
        assert stem("partner") == stem("partners")
        assert stem("building") == stem("builds")
        assert stem("marry") == stem("married")

    def test_module_level_function_matches_instance(self):
        assert stem("relational") == PorterStemmer().stem("relational")

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=15))
    def test_stem_never_longer_than_word(self, word):
        assert len(stem(word)) <= len(word)

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=15))
    def test_stem_is_deterministic_and_nonempty(self, word):
        assert stem(word) == stem(word)
        assert stem(word)
