"""Cross-module invariants.

Each of these properties ties two independently implemented subsystems
together; a bug in either side breaks the equality, so they double as
integration tests and as mutual oracles.
"""

import pytest
from hypothesis import given, settings

from repro.core.algorithms.by_location import med_by_location
from repro.core.algorithms.dedup import dedup_join
from repro.core.algorithms.med_join import med_join
from repro.core.algorithms.naive import naive_join_valid
from repro.core.algorithms.streaming import med_by_location_streaming
from repro.core.algorithms.topk import top_k_matchsets
from repro.core.algorithms.win_join import win_join
from repro.core.algorithms.win_kbest import win_join_valid_lazy
from repro.core.api import best_matchsets_by_location, extract_matchsets
from repro.core.query import Query
from repro.core.scoring.presets import trec_med, trec_win
from repro.index.inverted import InvertedIndex
from repro.index.matchlists import ConceptIndex
from repro.lexicon.graph import LexicalGraph
from repro.matching.semantic import SemanticMatcher
from repro.text.document import Corpus, Document

from tests.conftest import join_instances


class TestJoinConsistency:
    @settings(max_examples=80, deadline=None)
    @given(join_instances(max_terms=3, max_len=4, max_location=12))
    def test_three_valid_join_implementations_agree(self, instance):
        """Section VI restarts, lazy k-best enumeration and exhaustive
        filtering are three very different searches for the same object."""
        query, lists = instance
        scoring = trec_win()
        restart = dedup_join(query, lists, scoring, win_join)
        lazy = win_join_valid_lazy(query, lists, scoring)
        oracle = naive_join_valid(query, lists, scoring)
        assert bool(restart) == bool(lazy) == bool(oracle)
        if oracle:
            assert restart.score == pytest.approx(oracle.score)
            assert lazy.score == pytest.approx(oracle.score)

    @settings(max_examples=60, deadline=None)
    @given(join_instances(max_terms=4, max_len=5))
    def test_med_three_way_agreement(self, instance):
        """Overall join == best of batch by-location == best of streaming."""
        query, lists = instance
        scoring = trec_med()
        overall = med_join(query, lists, scoring).score
        batch = max(r.score for r in med_by_location(query, lists, scoring))
        stream = max(
            r.score for r in med_by_location_streaming(query, lists, scoring)
        )
        assert overall == pytest.approx(batch)
        assert overall == pytest.approx(stream)


class TestExtractionConsistency:
    @settings(max_examples=50, deadline=None)
    @given(join_instances(max_terms=3, max_len=4))
    def test_extract_results_are_by_location_results(self, instance):
        query, lists = instance
        scoring = trec_med()
        by_location = {
            (r.anchor, r.score)
            for r in best_matchsets_by_location(query, lists, scoring)
        }
        for r in extract_matchsets(query, lists, scoring, require_valid=False):
            assert (r.anchor, r.score) in by_location

    @settings(max_examples=50, deadline=None)
    @given(join_instances(max_terms=3, max_len=4))
    def test_unbounded_topk_equals_sorted_by_location(self, instance):
        query, lists = instance
        scoring = trec_med()
        everything = sorted(
            best_matchsets_by_location(query, lists, scoring),
            key=lambda r: (-r.score, r.anchor),
        )
        got = top_k_matchsets(query, lists, scoring, 10_000)
        assert [(r.anchor, r.score) for r in got] == [
            (r.anchor, r.score) for r in everything
        ]


class TestOnlineOfflineMatching:
    def test_semantic_matcher_and_concept_index_agree(self):
        """The online matcher and the inverted-index derivation are two
        implementations of the same footnote-1 semantics; on stopword-free
        text they must produce identical match lists."""
        graph = LexicalGraph()
        graph.add_hyponyms("pc maker", "lenovo", "dell")
        graph.add_edge("pc maker", "maker")
        text = "lenovo beats dell while another maker struggles"
        doc = Document("d", text)
        corpus = Corpus([doc])
        index = InvertedIndex.build(corpus)
        concept_index = ConceptIndex(index, lexicon=graph)

        online = SemanticMatcher("pc maker", lexicon=graph).matches(doc)
        offline = concept_index.match_list("pc maker", "d")
        assert [(m.location, m.score) for m in online] == [
            (m.location, m.score) for m in offline
        ]
