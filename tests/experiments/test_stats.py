"""Measurement-stability statistics."""

import pytest

from repro.experiments.stats import (
    StabilityReport,
    TimingSample,
    coefficient_of_variation,
    repeat_timing,
    stability_report,
)


class TestCoefficientOfVariation:
    def test_constant_series(self):
        assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0

    def test_known_value(self):
        # mean 2, stdev 1 → CoV 0.5
        assert coefficient_of_variation([1.0, 2.0, 3.0]) == pytest.approx(0.5)

    def test_too_few_values_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([1.0])

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([-1.0, 1.0])


class TestRepeatTiming:
    def test_collects_requested_repeats(self):
        sample = repeat_timing(lambda: sum(range(1000)), repeats=5, label="x")
        assert len(sample.seconds) == 5
        assert sample.label == "x"
        assert sample.mean > 0

    def test_requires_two_repeats(self):
        with pytest.raises(ValueError):
            repeat_timing(lambda: None, repeats=1)


class TestStabilityReport:
    def test_aggregates(self):
        report = StabilityReport(
            [
                TimingSample("a", (1.0, 1.0, 1.0)),
                TimingSample("b", (1.0, 2.0, 3.0)),
            ]
        )
        assert report.mean_cov == pytest.approx(0.25)
        assert report.worst_cov == pytest.approx(0.5)
        assert report.points_above(0.10) == 1

    def test_end_to_end(self):
        report = stability_report(
            {"noop": lambda: None, "sum": lambda: sum(range(100))}, repeats=3
        )
        assert len(report.samples) == 2
        text = report.format()
        assert "average CoV" in text
        assert "noop" in text
