"""repro-bench CLI."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_fig6_runs(self, capsys):
        assert main(["fig6", "--docs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6" in out
        assert "NMAX" in out

    def test_fig12_runs(self, capsys):
        assert main(["fig12", "--docs", "30"]) == 0
        out = capsys.readouterr().out
        assert "Q7" in out

    def test_dbworld_ignores_docs_flag(self, capsys):
        assert main(["dbworld", "--docs", "2"]) == 0
        assert "first-date heuristic" in capsys.readouterr().out

    def test_seed_flag(self, capsys):
        assert main(["fig8", "--docs", "2", "--seed", "7"]) == 0
        assert "lambda" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
