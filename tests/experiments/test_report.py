"""Plain-text reporting helpers."""

from repro.experiments.report import SweepResult, format_mapping_table, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long header"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_mapping_table(self):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        text = format_mapping_table(rows)
        assert "x" in text and "y" in text and "2" in text

    def test_empty_mapping_table(self):
        assert format_mapping_table([]) == "(empty)"


class TestSweepResult:
    def test_format_contains_series_and_values(self):
        sweep = SweepResult(
            title="T",
            x_label="n",
            x_values=[1, 2],
            series={"A": [0.5, 1.0], "B": [0.25, 0.125]},
            notes=["note!"],
        )
        text = sweep.format(precision=2)
        assert "T" in text
        assert "0.50" in text and "0.12" in text
        assert "note!" in text

    def test_row_accessor(self):
        sweep = SweepResult("T", "n", [1], {"A": [0.5]})
        assert sweep.row("A") == [0.5]
