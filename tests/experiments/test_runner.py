"""Timing harness tests (small workloads; structure, not wall-clock)."""

import pytest

from repro.core.scoring.presets import experiment_suite
from repro.datasets.synthetic import SyntheticConfig, generate_dataset
from repro.experiments.runner import full_suite, naive_suite, proposed_suite, time_suite


@pytest.fixture(scope="module")
def instances():
    data = generate_dataset(SyntheticConfig(num_docs=5, total_matches=12, seed=1))
    return [(inst.query, inst.lists) for inst in data]


class TestSuites:
    def test_proposed_suite_names(self):
        assert [s.name for s in proposed_suite()] == ["WIN", "MED", "MAX"]

    def test_win_dropped_for_small_queries(self):
        names = [s.name for s in proposed_suite(win_as_med_when_small=3)]
        assert names == ["MED", "MAX"]
        names = [s.name for s in proposed_suite(win_as_med_when_small=4)]
        assert names == ["WIN", "MED", "MAX"]

    def test_naive_suite_names(self):
        assert [s.name for s in naive_suite()] == ["NWIN", "NMED", "NMAX"]

    def test_full_suite_order(self):
        assert [s.name for s in full_suite()] == [
            "WIN", "MED", "MAX", "NWIN", "NMED", "NMAX",
        ]


class TestTimeSuite:
    def test_rows_have_positive_times(self, instances):
        rows = time_suite(full_suite(), instances)
        assert len(rows) == 6
        assert all(row.seconds > 0 for row in rows)

    def test_invocations_counted(self, instances):
        # Documents whose lists are all non-empty run the inner algorithm
        # at least once; empty joins contribute zero.
        rows = time_suite(proposed_suite(), instances)
        assert all(row.mean_invocations > 0 for row in rows)

    def test_proposed_and_naive_agree_on_results(self, instances):
        """Same scoring, same documents → the proposed algorithm (with
        dedup) and the valid-only naive baseline find equal best scores."""
        suite = experiment_suite()
        specs = {s.name: s for s in full_suite(suite)}
        for fast_name, naive_name in (("WIN", "NWIN"), ("MED", "NMED"), ("MAX", "NMAX")):
            for query, lists in instances:
                fast = specs[fast_name].run(query, lists)
                slow = specs[naive_name].run(query, lists)
                assert bool(fast) == bool(slow)
                if fast:
                    assert fast.score == pytest.approx(slow.score)
