"""CSV export of experiment results."""

import csv

from repro.experiments.export import rows_to_csv, sweep_to_csv
from repro.experiments.report import SweepResult


class TestSweepToCsv:
    def test_round_trips_through_csv(self, tmp_path):
        sweep = SweepResult(
            "T", "n", [1, 2], {"A": [0.5, 1.5], "B": [0.25, 0.75]}
        )
        path = tmp_path / "sweep.csv"
        sweep_to_csv(sweep, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["n", "A", "B"]
        assert rows[1] == ["1", "0.5", "0.25"]
        assert rows[2] == ["2", "1.5", "0.75"]


class TestRowsToCsv:
    def test_writes_dict_rows(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv([{"ID": "Q1", "rank": 1}, {"ID": "Q2", "rank": 2}], path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["ID"] == "Q1"
        assert rows[1]["rank"] == "2"

    def test_empty_rows_produce_empty_file(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv([], path)
        assert path.read_text() == ""

    def test_missing_keys_filled_blank(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv([{"a": 1, "b": 2}, {"a": 3}], path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[1]["b"] == ""
