"""Figure/table regeneration: structural checks on tiny workloads.

These tests run every experiment end-to-end with very small document
counts — they validate the harness wiring and the qualitative shapes
that are stable even at small scale (the full-scale shape comparison
lives in the benchmarks and EXPERIMENTS.md).
"""

import math

import pytest

from repro.experiments.figures import (
    ablation_envelope,
    ablation_skew_fix,
    dbworld_table,
    fig6_query_terms,
    fig7_list_size,
    fig8_dedup_invocations,
    fig9_duplicates_time,
    fig10_skew,
    fig11_trec_times,
    fig12_answer_ranks,
)

ALGOS = ("WIN", "MED", "MAX", "NWIN", "NMED", "NMAX")


class TestSyntheticFigures:
    def test_fig6_structure(self):
        result = fig6_query_terms(num_docs=4, term_counts=(2, 3, 4))
        assert result.x_values == [2, 3, 4]
        assert set(result.series) == set(ALGOS)
        assert all(len(v) == 3 for v in result.series.values())

    def test_fig7_naive_grows_with_list_size(self):
        result = fig7_list_size(num_docs=6, total_sizes=(10, 30))
        assert result.series["NMAX"][1] > result.series["NMAX"][0]

    def test_fig8_invocations_decrease_with_lambda(self):
        result = fig8_dedup_invocations(num_docs=10, lams=(1.0, 3.0))
        for name in ("WIN", "MED", "MAX"):
            assert result.series[name][0] >= result.series[name][1]
        assert "NWIN" not in result.series

    def test_fig9_structure(self):
        result = fig9_duplicates_time(num_docs=3, lams=(2.0,))
        assert set(result.series) == set(ALGOS)

    def test_fig10_structure(self):
        result = fig10_skew(num_docs=3, s_values=(1.1, 4.0))
        assert result.x_values == [1.1, 4.0]

    def test_sweep_formatting(self):
        result = fig6_query_terms(num_docs=2, term_counts=(2,))
        text = result.format()
        assert "Fig 6" in text
        assert "NMAX" in text


class TestTrecFigures:
    def test_fig11_win_omitted_for_three_term_queries(self):
        from repro.datasets.trec_like import TREC_QUERY_SPECS

        result = fig11_trec_times(num_docs=10, specs=TREC_QUERY_SPECS[:3])
        assert result.x_values == ["Q1", "Q2", "Q3"]
        assert not math.isnan(result.series["WIN"][0])  # Q1 has 4 terms
        assert math.isnan(result.series["WIN"][2])  # Q3 has 3 terms

    def test_fig12_rows_and_answer_found(self):
        rows = fig12_answer_ranks(num_docs=60)
        assert [row["ID"] for row in rows] == [f"Q{i}" for i in range(1, 8)]
        for row in rows:
            for family in ("MED", "MAX", "WIN"):
                assert row[family] != "-"  # the planted answer is retrievable


class TestDBWorld:
    @pytest.fixture(scope="class")
    def result(self):
        return dbworld_table(num_messages=8)

    def test_paperlike_columns(self, result):
        assert set(result.times) == {"WIN", "MAX", "NWIN", "NMED", "NMAX"}
        assert result.num_messages == 8

    def test_accuracy_counts_bounded(self, result):
        for family in ("WIN", "MED", "MAX"):
            assert 0 <= result.full_correct[family] <= 8
            assert result.full_correct[family] <= result.partial_correct[family]

    def test_extractions_mostly_correct(self, result):
        assert result.full_correct["MAX"] >= 6

    def test_first_date_heuristic_fails_on_extensions(self, result):
        assert result.first_date_correct < result.num_messages

    def test_format_renders(self, result):
        text = result.format()
        assert "avg match list sizes" in text
        assert "first-date heuristic" in text


class TestAblations:
    def test_envelope_ablation_structure(self):
        result = ablation_envelope(num_docs=3)
        assert set(result.series) == {"max_join", "general_max_join"}

    def test_skew_fix_ablation_structure(self):
        result = ablation_skew_fix(num_docs=3)
        assert set(result.series) == {"with skew fix", "without skew fix"}
