"""End-to-end QA effectiveness experiment."""

from repro.datasets.qa_corpus import FACTOID_QUESTIONS
from repro.experiments.qa_eval import qa_effectiveness


class TestQAEffectiveness:
    def test_structure(self):
        result = qa_effectiveness(num_docs=15, questions=FACTOID_QUESTIONS[:2])
        assert result.questions == [q.question_id for q in FACTOID_QUESTIONS[:2]]
        assert set(result.ranks) == {"WIN", "MED", "MAX"}
        assert all(len(v) == 2 for v in result.ranks.values())
        assert set(result.mrr) == {"WIN", "MED", "MAX"}

    def test_answers_found(self):
        result = qa_effectiveness(num_docs=15, questions=FACTOID_QUESTIONS[:3])
        for family, ranks in result.ranks.items():
            assert all(rank is not None for rank in ranks), family
        assert result.mrr["MAX"] > 0.5

    def test_format_renders(self):
        result = qa_effectiveness(num_docs=10, questions=FACTOID_QUESTIONS[:1])
        text = result.format()
        assert "MRR" in text
        assert FACTOID_QUESTIONS[0].question_id in text

    def test_cli_integration(self, capsys):
        from repro.experiments.cli import main

        assert main(["qa", "--docs", "10"]) == 0
        assert "MRR" in capsys.readouterr().out
