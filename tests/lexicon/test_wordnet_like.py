"""Default lexicon and the 1 − 0.3d scoring rule."""

import pytest

from repro.lexicon.graph import LexicalGraph
from repro.lexicon.wordnet_like import (
    build_default_lexicon,
    default_lexicon,
    semantic_score,
)


class TestDefaultLexicon:
    def test_builds_nontrivial_graph(self):
        g = build_default_lexicon()
        assert len(g) > 100

    def test_papers_manual_edges_present(self):
        g = default_lexicon()
        # The paper added these two edges to WordNet for its experiments.
        assert g.distance("conference", "workshop") == 1
        assert g.distance("university", "place") == 1

    def test_intro_example_vocabulary(self):
        g = default_lexicon()
        assert g.distance("pc maker", "lenovo") == 1
        assert g.distance("sports", "nba") == 1
        assert g.distance("partnership", "deal") == 1
        assert g.distance("partnership", "partner") == 1

    def test_default_lexicon_is_cached(self):
        assert default_lexicon() is default_lexicon()


class TestSemanticScore:
    @pytest.fixture
    def graph(self):
        g = LexicalGraph()
        for a, b in [("q", "d1"), ("d1", "d2"), ("d2", "d3"), ("d3", "d4")]:
            g.add_edge(a, b)
        return g

    def test_paper_score_ladder(self, graph):
        assert semantic_score(graph, "q", "q") == pytest.approx(1.0)
        assert semantic_score(graph, "q", "d1") == pytest.approx(0.7)
        assert semantic_score(graph, "q", "d2") == pytest.approx(0.4)
        assert semantic_score(graph, "q", "d3") == pytest.approx(0.1)

    def test_beyond_max_distance_is_none(self, graph):
        assert semantic_score(graph, "q", "d4") is None

    def test_unknown_term_is_none(self, graph):
        assert semantic_score(graph, "q", "unknown") is None

    def test_custom_penalty(self, graph):
        assert semantic_score(
            graph, "q", "d2", per_edge_penalty=0.25
        ) == pytest.approx(0.5)
