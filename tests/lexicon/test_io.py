"""Lexicon edge-list I/O."""

import pytest

from repro.core.io import SerializationError
from repro.lexicon.graph import LexicalGraph
from repro.lexicon.io import load_lexicon, parse_lexicon_lines, save_lexicon
from repro.lexicon.wordnet_like import build_default_lexicon


class TestParse:
    def test_tab_separated_edges(self):
        graph = parse_lexicon_lines(
            ["conference\tworkshop\trelated", "pc maker\tlenovo\thypernym"]
        )
        assert graph.distance("conference", "workshop") == 1
        assert graph.neighbors("pc maker")["lenovo"] == "hypernym"

    def test_pipe_separated_and_default_relation(self):
        graph = parse_lexicon_lines(["a | b"])
        assert graph.neighbors("a")["b"] == LexicalGraph.RELATED

    def test_comments_and_blanks_ignored(self):
        graph = parse_lexicon_lines(["# header", "", "a\tb"])
        assert len(graph) == 2

    def test_unknown_relation_rejected(self):
        with pytest.raises(SerializationError):
            parse_lexicon_lines(["a\tb\tantonym"])

    def test_wrong_column_count_rejected(self):
        with pytest.raises(SerializationError):
            parse_lexicon_lines(["only-one-column"])


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        graph = LexicalGraph()
        graph.add_synonyms("partnership", "partner")
        graph.add_hyponyms("sports", "nba")
        path = tmp_path / "lexicon.tsv"
        save_lexicon(graph, path)
        loaded = load_lexicon(path)
        assert loaded.distance("partnership", "partner") == 1
        assert loaded.neighbors("sports")["nba"] == "hypernym"

    def test_default_lexicon_round_trips(self, tmp_path):
        graph = build_default_lexicon()
        path = tmp_path / "default.tsv"
        save_lexicon(graph, path)
        loaded = load_lexicon(path)
        assert len(loaded) == len(graph)
        for a, b in [("conference", "workshop"), ("pc maker", "lenovo")]:
            assert loaded.distance(a, b) == graph.distance(a, b)

    def test_each_edge_written_once(self, tmp_path):
        graph = LexicalGraph()
        graph.add_edge("a", "b")
        path = tmp_path / "g.tsv"
        save_lexicon(graph, path)
        lines = [l for l in path.read_text().splitlines() if not l.startswith("#")]
        assert len(lines) == 1
