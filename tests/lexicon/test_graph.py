"""LexicalGraph tests."""

from repro.lexicon.graph import LexicalGraph


class TestGraphConstruction:
    def test_add_edge_is_undirected(self):
        g = LexicalGraph()
        g.add_edge("a", "b")
        assert "b" in g.neighbors("a")
        assert "a" in g.neighbors("b")

    def test_normalization(self):
        g = LexicalGraph()
        g.add_edge("  PC  Maker ", "Lenovo")
        assert "pc maker" in g
        assert g.distance("PC MAKER", "lenovo") == 1

    def test_self_edge_ignored(self):
        g = LexicalGraph()
        g.add_edge("a", "a")
        assert g.neighbors("a") == {}

    def test_synonym_clique(self):
        g = LexicalGraph()
        g.add_synonyms("a", "b", "c")
        assert g.distance("a", "c") == 1
        assert g.distance("b", "c") == 1

    def test_hyponyms_star(self):
        g = LexicalGraph()
        g.add_hyponyms("sports", "nba", "olympics")
        assert g.distance("nba", "olympics") == 2  # via the parent

    def test_relation_labels(self):
        g = LexicalGraph()
        g.add_edge("a", "b", LexicalGraph.SYNONYM)
        assert g.neighbors("a")["b"] == "synonym"


class TestDistances:
    def make_path(self, *nodes):
        g = LexicalGraph()
        for a, b in zip(nodes, nodes[1:]):
            g.add_edge(a, b)
        return g

    def test_path_distances(self):
        g = self.make_path("a", "b", "c", "d")
        assert g.distance("a", "a") == 0
        assert g.distance("a", "b") == 1
        assert g.distance("a", "d") == 3

    def test_max_distance_prunes(self):
        g = self.make_path("a", "b", "c", "d")
        assert g.distance("a", "d", max_distance=2) is None
        assert g.distance("a", "c", max_distance=2) == 2

    def test_unknown_lemma_gives_none(self):
        g = self.make_path("a", "b")
        assert g.distance("a", "zzz") is None
        assert g.distance("zzz", "a") is None

    def test_disconnected_gives_none(self):
        g = LexicalGraph()
        g.add_edge("a", "b")
        g.add_edge("x", "y")
        assert g.distance("a", "x") is None

    def test_within_distance(self):
        g = self.make_path("a", "b", "c", "d", "e")
        reach = g.within_distance("a", 2)
        assert reach == {"a": 0, "b": 1, "c": 2}

    def test_within_distance_unknown(self):
        g = LexicalGraph()
        assert g.within_distance("nope", 3) == {}
