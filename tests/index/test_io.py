"""Inverted-index persistence."""

import json

import pytest

from repro.core.io import SerializationError
from repro.index.inverted import InvertedIndex
from repro.index.io import INDEX_FORMAT_VERSION, load_index, save_index
from repro.text.document import Corpus, Document


@pytest.fixture
def index():
    corpus = Corpus(
        [
            Document("d1", "Lenovo partners with the NBA on marketing"),
            Document("d2", "Dell and Lenovo are PC makers"),
        ]
    )
    return InvertedIndex.build(corpus)


class TestIndexPersistence:
    def test_round_trip_preserves_lookups(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.document_count == index.document_count
        assert loaded.vocabulary_size == index.vocabulary_size
        assert loaded.positions("lenovo", "d1") == index.positions("lenovo", "d1")
        assert loaded.positions("partner", "d1") == index.positions("partner", "d1")
        assert loaded.document_length("d2") == index.document_length("d2")

    def test_round_trip_preserves_settings(self, tmp_path):
        raw = InvertedIndex.build(
            [Document("d", "The Partners")], stem=False, drop_stopwords=True
        )
        path = tmp_path / "index.json"
        save_index(raw, path)
        loaded = load_index(path)
        assert loaded.positions("partner", "d") == ()  # stemming still off
        assert loaded.positions("partners", "d") == (1,)
        assert loaded.positions("the", "d") == ()  # stopwords still dropped

    def test_phrase_queries_survive(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.phrase_positions(["pc", "maker"], "d2") == index.phrase_positions(
            ["pc", "maker"], "d2"
        )

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_text(json.dumps({"version": INDEX_FORMAT_VERSION + 9}))
        with pytest.raises(SerializationError):
            load_index(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_text("][")
        with pytest.raises(SerializationError):
            load_index(path)
