"""Durable segmented index: WAL, seal, merge, recovery, read-API parity.

The contract under test is twofold.  Durability: every acknowledged
mutation survives close-and-reopen, through any interleaving of seals
and merges, and recovery tolerates a torn WAL tail and corrupt segment
files (quarantine, never crash).  Fidelity: at every point the read API
is byte-identical to a monolithic :class:`InvertedIndex` fed the same
live document set — same postings, same positions, same frequency
ranking, same tie order.
"""

import json

import pytest

from repro.index.inverted import InvertedIndex
from repro.index.segments import (
    MANIFEST_NAME,
    QUARANTINE_SUFFIX,
    WAL_NAME,
    SegmentedIndex,
    WriteAheadLog,
)
from repro.obs.log import MemorySink, StructuredLogger
from repro.reliability.faults import FAULTS, InjectedFault
from repro.text.document import Document

DOCS = [
    ("d1", "Lenovo partners with the NBA on marketing"),
    ("d2", "Dell and Lenovo are PC makers building laptops"),
    ("d3", "the olympic games and the olympic flame"),
    ("d4", "a bakery opened downtown nothing about computers"),
    ("d5", "Lenovo laptops at the olympic games"),
]

#: Surface words covering every corpus document, queried through the
#: public API on both the durable index and the monolithic oracle.
PROBE_WORDS = [
    "lenovo", "partners", "nba", "marketing", "dell", "makers",
    "laptops", "olympic", "games", "flame", "bakery", "computers",
    "missing",
]


def build(tmp_path, **options):
    return SegmentedIndex.recover(tmp_path / "data", **options)


def oracle_for(pairs):
    oracle = InvertedIndex()
    for doc_id, text in pairs:
        oracle.add_document(Document(doc_id, text))
    return oracle


def assert_matches_oracle(index, oracle):
    """Byte-identical read API: the whole durable-fidelity contract."""
    assert index.document_count == oracle.document_count
    assert sorted(index.documents()) == sorted(oracle.documents())
    assert index.vocabulary_size == oracle.vocabulary_size
    full = oracle.vocabulary_size
    assert index.frequent_tokens(full) == oracle.frequent_tokens(full)
    assert index.frequent_tokens(3) == oracle.frequent_tokens(3)
    for doc_id in oracle.documents():
        assert index.document_length(doc_id) == oracle.document_length(doc_id)
    for word in PROBE_WORDS:
        got, want = index.postings(word), oracle.postings(word)
        if want is None:
            assert got is None
            continue
        assert got is not None
        assert sorted(got.documents()) == sorted(want.documents())
        for doc_id in want.documents():
            assert index.positions(word, doc_id) == oracle.positions(word, doc_id)


def add_all(index, pairs):
    index.add_documents([Document(doc_id, text) for doc_id, text in pairs])


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(1, {"op": "add", "doc": ["a", "x"]})
        wal.append(2, {"op": "remove", "doc_id": "a"})
        wal.close()
        records, truncated = WriteAheadLog(tmp_path / "wal.log").replay()
        assert truncated == 0
        assert records == [
            (1, {"op": "add", "doc": ["a", "x"]}),
            (2, {"op": "remove", "doc_id": "a"}),
        ]

    def test_replay_skips_applied_prefix(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        for seq in range(1, 5):
            wal.append(seq, {"op": "add", "doc": [f"d{seq}", "t"]})
        wal.close()
        records, _ = WriteAheadLog(tmp_path / "wal.log").replay(min_seq=2)
        assert [seq for seq, _ in records] == [3, 4]

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(1, {"op": "add", "doc": ["a", "x"]})
        wal.append(2, {"op": "add", "doc": ["b", "y"]})
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 3, "body"')  # the crash mid-write
        records, truncated = WriteAheadLog(path).replay()
        assert [seq for seq, _ in records] == [1, 2]
        assert truncated > 0
        # The torn bytes are gone from disk: a second replay is clean.
        records, truncated = WriteAheadLog(path).replay()
        assert [seq for seq, _ in records] == [1, 2]
        assert truncated == 0

    def test_checksum_mismatch_truncates_from_bad_record(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(1, {"op": "add", "doc": ["a", "x"]})
        wal.append(2, {"op": "add", "doc": ["b", "y"]})
        wal.append(3, {"op": "add", "doc": ["c", "z"]})
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        doctored = json.loads(lines[1])
        doctored["body"]["doc"] = ["b", "EVIL"]
        lines[1] = (json.dumps(doctored) + "\n").encode()
        path.write_bytes(b"".join(lines))
        records, truncated = WriteAheadLog(path).replay()
        # Everything from the corrupt record on is suspect: record 3 is
        # dropped with it even though its own checksum is fine.
        assert [seq for seq, _ in records] == [1]
        assert truncated > 0

    def test_non_monotonic_sequence_truncates(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(1, {"op": "add", "doc": ["a", "x"]})
        wal.append(2, {"op": "add", "doc": ["b", "y"]})
        wal.close()
        duplicate = path.read_bytes().splitlines(keepends=True)[1]
        with open(path, "ab") as handle:
            handle.write(duplicate)  # replayed seq 2 again
        records, truncated = WriteAheadLog(path).replay()
        assert [seq for seq, _ in records] == [1, 2]
        assert truncated > 0

    def test_reset_empties_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append(1, {"op": "add", "doc": ["a", "x"]})
        wal.reset()
        wal.append(5, {"op": "add", "doc": ["b", "y"]})
        wal.close()
        records, _ = WriteAheadLog(tmp_path / "wal.log").replay()
        assert [seq for seq, _ in records] == [5]


class TestDurability:
    def test_fresh_directory_is_empty(self, tmp_path):
        index = build(tmp_path)
        assert index.document_count == 0
        assert index.generation == 0
        assert index.recovery_stats["wal_replay_records"] == 0
        index.close()

    def test_acknowledged_adds_survive_reopen(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS)
        generation = index.generation
        index.close()
        reopened = build(tmp_path)
        assert reopened.generation == generation
        assert reopened.recovery_stats["wal_replay_records"] == len(DOCS)
        assert_matches_oracle(reopened, oracle_for(DOCS))
        reopened.close()

    def test_removes_survive_reopen(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS)
        index.remove_document("d2")
        index.close()
        reopened = build(tmp_path)
        expected = [pair for pair in DOCS if pair[0] != "d2"]
        assert_matches_oracle(reopened, oracle_for(expected))
        with pytest.raises(KeyError):
            reopened.document_length("d2")
        reopened.close()

    def test_checkpoint_truncates_the_wal(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS)
        index.checkpoint()
        assert (index.data_dir / WAL_NAME).stat().st_size == 0
        assert (index.data_dir / MANIFEST_NAME).exists()
        index.close()
        reopened = build(tmp_path)
        # A clean checkpoint restarts replay-free.
        assert reopened.recovery_stats["wal_replay_records"] == 0
        assert_matches_oracle(reopened, oracle_for(DOCS))
        reopened.close()

    def test_batch_duplicate_is_atomic(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS[:2])
        with pytest.raises(ValueError):
            add_all(index, [("d9", "new text"), ("d1", "duplicate")])
        generation = index.generation
        assert_matches_oracle(index, oracle_for(DOCS[:2]))
        index.close()
        reopened = build(tmp_path)
        # Nothing from the failed batch reached the WAL.
        assert reopened.generation == generation
        assert_matches_oracle(reopened, oracle_for(DOCS[:2]))
        reopened.close()

    def test_failed_batch_never_becomes_durable(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS[:2])
        generation = index.generation
        wal_size = (index.data_dir / WAL_NAME).stat().st_size
        with FAULTS.arming("wal.append", "error"):
            with pytest.raises(InjectedFault):
                add_all(
                    index, [("d8", "never acknowledged"), ("d9", "me neither")]
                )
        # Sequence counter, WAL bytes, and live view are exactly
        # pre-batch: nothing of the failed batch may linger buffered.
        assert index.generation == generation
        assert (index.data_dir / WAL_NAME).stat().st_size == wal_size
        assert_matches_oracle(index, oracle_for(DOCS[:2]))
        # The next successful commit must not flush the failed records,
        # and replay must not shadow a re-add of a failed id.
        index.add_document(Document("d9", "different replacement text"))
        index.close()
        reopened = build(tmp_path)
        expected = DOCS[:2] + [("d9", "different replacement text")]
        assert_matches_oracle(reopened, oracle_for(expected))
        assert not reopened.contains("d8")
        reopened.close()

    def test_failed_remove_rolls_back(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS[:2])
        generation = index.generation
        with FAULTS.arming("wal.append", "error"):
            with pytest.raises(InjectedFault):
                index.remove_document("d1")
        assert index.generation == generation
        assert index.contains("d1")
        index.close()
        reopened = build(tmp_path)
        assert reopened.generation == generation
        assert_matches_oracle(reopened, oracle_for(DOCS[:2]))
        reopened.close()

    def test_remove_unknown_document_raises(self, tmp_path):
        index = build(tmp_path)
        with pytest.raises(KeyError):
            index.remove_document("ghost")
        index.close()

    def test_closed_index_rejects_mutation(self, tmp_path):
        index = build(tmp_path)
        index.close()
        index.close()  # idempotent
        with pytest.raises(RuntimeError):
            index.add_document(Document("d1", "text"))


class TestSealAndMerge:
    def test_seal_preserves_reads_and_generation(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS)
        generation = index.generation
        segment_id = index.seal()
        assert segment_id is not None
        assert index.segments_live == 1
        assert index.generation == generation  # content-preserving
        assert_matches_oracle(index, oracle_for(DOCS))
        assert index.seal() is None  # nothing new: no-op
        index.close()

    def test_automatic_seal_at_threshold(self, tmp_path):
        index = build(tmp_path, seal_threshold=2)
        for doc_id, text in DOCS:
            index.add_document(Document(doc_id, text))
        assert index.segments_live >= 2
        assert_matches_oracle(index, oracle_for(DOCS))
        index.close()

    def test_merge_compacts_segments_identically(self, tmp_path):
        index = build(tmp_path, merge_fanin=2)
        for doc_id, text in DOCS:
            index.add_document(Document(doc_id, text))
            index.seal()
        assert index.segments_live == len(DOCS)
        generation = index.generation
        while index.merge_once():
            pass
        assert index.segments_live == 1
        assert index.generation == generation
        assert_matches_oracle(index, oracle_for(DOCS))
        # Retired segment files are gone from disk.
        assert len(list(index.data_dir.glob("seg-*.json"))) == 1
        index.close()

    def test_merge_below_fanin_is_noop(self, tmp_path):
        index = build(tmp_path, merge_fanin=4)
        add_all(index, DOCS)
        index.seal()
        assert index.merge_once() is False
        index.close()

    def test_merge_drops_tombstoned_documents(self, tmp_path):
        index = build(tmp_path, merge_fanin=2)
        for doc_id, text in DOCS:
            index.add_document(Document(doc_id, text))
            index.seal()
        index.remove_document("d1")
        index.remove_document("d3")
        while index.merge_once():
            pass
        expected = [p for p in DOCS if p[0] not in ("d1", "d3")]
        assert_matches_oracle(index, oracle_for(expected))
        # The tombstones retired with the dropped postings: nothing in
        # the manifest resurrects them on reopen.
        index.close()
        reopened = build(tmp_path)
        assert_matches_oracle(reopened, oracle_for(expected))
        reopened.close()

    def test_merge_drops_superseded_copies(self, tmp_path):
        index = build(tmp_path, merge_fanin=2)
        add_all(index, DOCS[:2])
        index.seal()
        index.remove_document("d1")
        index.add_document(Document("d1", "an entirely rewritten first doc"))
        index.seal()  # newer copy of d1 in a second segment
        while index.merge_once():
            pass
        expected = [("d1", "an entirely rewritten first doc"), DOCS[1]]
        assert_matches_oracle(index, oracle_for(expected))
        index.close()
        reopened = build(tmp_path)
        assert_matches_oracle(reopened, oracle_for(expected))
        reopened.close()

    def test_merge_of_fully_deleted_segments_leaves_no_file(self, tmp_path):
        index = build(tmp_path, merge_fanin=2)
        add_all(index, DOCS[:2])
        index.seal()
        add_all(index, [("e1", "ephemeral one"), ("e2", "ephemeral two")])
        index.seal()
        for doc_id, _ in DOCS[:2]:
            index.remove_document(doc_id)
        index.remove_document("e1")
        index.remove_document("e2")
        assert index.merge_once() is True
        assert index.segments_live == 0
        assert index.document_count == 0
        assert list(index.data_dir.glob("seg-*.json")) == []
        index.close()

    def test_readd_after_remove_round_trips(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS)
        index.seal()
        index.remove_document("d5")
        index.add_document(Document("d5", "a brand new fifth document"))
        expected = DOCS[:4] + [("d5", "a brand new fifth document")]
        assert_matches_oracle(index, oracle_for(expected))
        index.seal()  # tombstone retires; new copy becomes the owner
        assert_matches_oracle(index, oracle_for(expected))
        index.close()
        reopened = build(tmp_path)
        assert_matches_oracle(reopened, oracle_for(expected))
        reopened.close()


class TestConcurrentReadSafety:
    def test_postings_are_snapshots_not_live_memtable(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS[:2])  # no sealed segments: pure memtable
        posting = index.postings("lenovo")
        assert posting is not None
        key = index._key("lenovo")
        # Never the memtable's own structure — a reader iterating it
        # outside the lock would race concurrent ingest ("dictionary
        # changed size during iteration").
        assert posting is not index._memtable._postings.get(key)
        before = sorted(posting.documents())
        index.add_document(Document("d9", "another lenovo mention"))
        # The handed-out snapshot stays frozen across the mutation.
        assert sorted(posting.documents()) == before
        fresh = index.postings("lenovo")
        assert "d9" in set(fresh.documents())
        index.close()

    def test_directory_lock_is_exclusive(self, tmp_path):
        index = build(tmp_path)
        with pytest.raises(RuntimeError, match="another process"):
            build(tmp_path)
        index.close()
        # Released on close: the next opener succeeds.
        reopened = build(tmp_path)
        reopened.close()


class TestRecovery:
    def test_corrupt_segment_is_quarantined(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS[:2])
        index.seal()
        add_all(index, DOCS[2:])
        index.seal()
        names = sorted(p.name for p in index.data_dir.glob("seg-*.json"))
        index.close()
        victim = index.data_dir / names[0]
        victim.write_text("{ not a snapshot }")
        sink = MemorySink()
        logger = StructuredLogger()
        logger.add_sink(sink)
        reopened = SegmentedIndex.recover(tmp_path / "data", logger=logger)
        assert reopened.recovery_stats["quarantined_segments"] == [names[0]]
        # Evidence preserved, never deleted.
        assert not victim.exists()
        assert victim.with_name(names[0] + QUARANTINE_SUFFIX).exists()
        events = [e for e in sink.events if e["event"] == "segment.quarantined"]
        assert events and events[0]["segment"] == names[0]
        # The surviving segment still serves.
        assert_matches_oracle(reopened, oracle_for(DOCS[2:]))
        reopened.close()

    def test_quarantined_owner_drops_doc_instead_of_stale_copy(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS[:2])  # d1 (original text), d2
        index.seal()  # seg-000001 owns both
        index.remove_document("d1")
        index.add_document(Document("d1", "replacement text after delete"))
        index.seal()  # seg-000002 owns the re-added d1
        names = sorted(p.name for p in index.data_dir.glob("seg-*.json"))
        index.close()
        (index.data_dir / names[1]).write_text("{ not a snapshot }")
        sink = MemorySink()
        logger = StructuredLogger()
        logger.add_sink(sink)
        reopened = SegmentedIndex.recover(tmp_path / "data", logger=logger)
        # The pre-delete copy of d1 surviving in seg-000001 is stale
        # garbage: serving it would resurrect deleted content.  The doc
        # is reported lost instead.
        assert reopened.recovery_stats["quarantined_segments"] == [names[1]]
        assert reopened.recovery_stats["documents_lost"] == ["d1"]
        assert sorted(reopened.documents()) == ["d2"]
        assert_matches_oracle(reopened, oracle_for(DOCS[1:2]))
        events = [
            e for e in sink.events if e["event"] == "segment.documents_lost"
        ]
        assert events and events[0]["documents"] == ["d1"]
        # The lost id is free for a fresh durable re-add.
        reopened.add_document(Document("d1", "fresh content"))
        assert reopened.contains("d1")
        reopened.close()

    def test_orphan_segment_files_are_collected(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS)
        index.seal()
        orphan = index.data_dir / "seg-000099.json"
        orphan.write_text("half-written merge output")
        index.close()
        reopened = build(tmp_path)
        assert not orphan.exists()
        assert_matches_oracle(reopened, oracle_for(DOCS))
        reopened.close()

    def test_torn_wal_tail_reported_and_truncated(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS[:3])
        index.close()
        with open(index.data_dir / WAL_NAME, "ab") as handle:
            handle.write(b'{"seq": 99, "bo')
        sink = MemorySink()
        logger = StructuredLogger()
        logger.add_sink(sink)
        reopened = SegmentedIndex.recover(tmp_path / "data", logger=logger)
        assert reopened.recovery_stats["wal_truncated_bytes"] > 0
        assert any(e["event"] == "wal.truncated" for e in sink.events)
        assert_matches_oracle(reopened, oracle_for(DOCS[:3]))
        reopened.close()
        # Idempotent: the next recovery sees a clean log.
        again = build(tmp_path)
        assert again.recovery_stats["wal_truncated_bytes"] == 0
        assert_matches_oracle(again, oracle_for(DOCS[:3]))
        again.close()

    def test_tokenization_mismatch_refuses_to_open(self, tmp_path):
        index = build(tmp_path, stem=True)
        add_all(index, DOCS[:2])
        index.seal()
        index.close()
        with pytest.raises(Exception, match="tokenization"):
            build(tmp_path, stem=False)

    def test_generation_durable_across_seal_and_reopen(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS)
        index.remove_document("d4")
        generation = index.generation
        index.seal()
        index.close()
        reopened = build(tmp_path)
        assert reopened.generation == generation
        reopened.add_document(Document("d9", "newer than everything"))
        assert reopened.generation == generation + 1
        reopened.close()

    def test_to_inverted_index_matches_live_view(self, tmp_path):
        index = build(tmp_path, merge_fanin=2)
        add_all(index, DOCS)
        index.seal()
        index.remove_document("d2")
        monolithic = index.to_inverted_index()
        expected = [p for p in DOCS if p[0] != "d2"]
        assert_matches_oracle(index, oracle_for(expected))
        assert sorted(monolithic.documents()) == sorted(
            doc_id for doc_id, _ in expected
        )
        assert monolithic.vocabulary_size == index.vocabulary_size
        index.close()

    def test_phrase_queries_span_segments(self, tmp_path):
        index = build(tmp_path)
        add_all(index, DOCS)
        index.seal()
        oracle = oracle_for(DOCS)
        assert index.phrase_positions(["olympic", "games"], "d3") == (
            oracle.phrase_positions(["olympic", "games"], "d3")
        )
        assert index.phrase_documents(["olympic", "games"]) == (
            oracle.phrase_documents(["olympic", "games"])
        )
        index.close()
