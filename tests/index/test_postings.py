"""Posting list tests."""

import pytest

from repro.index.postings import PostingList


class TestPostingList:
    def test_add_and_positions(self):
        p = PostingList("lenovo")
        p.add("d1", 3)
        p.add("d1", 9)
        p.add("d2", 1)
        assert p.positions("d1") == (3, 9)
        assert p.positions("d2") == (1,)
        assert p.positions("d3") == ()

    def test_positions_must_increase(self):
        p = PostingList("t")
        p.add("d", 5)
        with pytest.raises(ValueError):
            p.add("d", 5)
        with pytest.raises(ValueError):
            p.add("d", 3)

    def test_frequencies(self):
        p = PostingList("t")
        p.add("d1", 0)
        p.add("d1", 4)
        p.add("d2", 2)
        assert p.document_frequency == 2
        assert p.collection_frequency == 3

    def test_membership_and_documents(self):
        p = PostingList("t")
        p.add("d1", 0)
        assert "d1" in p
        assert "d2" not in p
        assert list(p.documents()) == ["d1"]
