"""Inverted index tests."""

import pytest

from repro.index.inverted import InvertedIndex
from repro.text.document import Corpus, Document


@pytest.fixture
def corpus():
    return Corpus(
        [
            Document("d1", "Lenovo partners with the NBA on marketing"),
            Document("d2", "Dell and Lenovo are PC makers building laptops"),
        ]
    )


class TestInvertedIndex:
    def test_build_and_lookup(self, corpus):
        index = InvertedIndex.build(corpus)
        assert index.document_count == 2
        assert index.positions("lenovo", "d1") == (0,)
        assert index.positions("lenovo", "d2") == (2,)

    def test_stemming_bridges_inflections(self, corpus):
        index = InvertedIndex.build(corpus)
        # "partners" was indexed; querying "partner" hits the same stem.
        assert index.positions("partner", "d1") == (1,)
        # "makers"/"maker", "building"/"build" likewise.
        assert index.positions("maker", "d2") == (5,)
        assert index.positions("build", "d2") == (6,)

    def test_stemming_can_be_disabled(self, corpus):
        index = InvertedIndex.build(corpus, stem=False)
        assert index.positions("partner", "d1") == ()
        assert index.positions("partners", "d1") == (1,)

    def test_drop_stopwords(self, corpus):
        index = InvertedIndex.build(corpus, drop_stopwords=True)
        assert index.positions("the", "d1") == ()
        # Positions of kept tokens are unchanged (they count all tokens).
        assert index.positions("nba", "d1") == (4,)

    def test_duplicate_document_rejected(self, corpus):
        index = InvertedIndex.build(corpus)
        with pytest.raises(ValueError):
            index.add_document(Document("d1", "again"))

    def test_document_length(self, corpus):
        index = InvertedIndex.build(corpus)
        assert index.document_length("d1") == 7

    def test_phrase_positions(self):
        index = InvertedIndex.build(
            [Document("d", "the olympic games and the olympic flame")]
        )
        assert index.phrase_positions(["olympic", "games"], "d") == (1,)
        assert index.phrase_positions(["olympic"], "d") == (1, 5)
        assert index.phrase_positions(["olympic", "flame"], "d") == (5,)
        assert index.phrase_positions(["games", "olympic"], "d") == ()
        assert index.phrase_positions([], "d") == ()

    def test_unknown_token(self, corpus):
        index = InvertedIndex.build(corpus)
        assert index.postings("zzz") is None
        assert index.positions("zzz", "d1") == ()

    def test_vocabulary_size(self, corpus):
        index = InvertedIndex.build(corpus)
        assert index.vocabulary_size > 5

    def test_frequent_tokens_ranking(self, corpus):
        index = InvertedIndex.build(corpus)
        top = index.frequent_tokens(1)
        assert top == ["lenovo"]  # df=2 beats every df=1 token
        full = index.frequent_tokens(index.vocabulary_size)
        assert len(full) == index.vocabulary_size
        # Ties break lexicographically on the stemmed key.
        singles = full[1:]
        assert singles == sorted(singles)

    def test_frequent_tokens_memo_invalidated_by_mutation(self, corpus):
        index = InvertedIndex.build(corpus)
        first = index.frequent_tokens(3)
        # The full ranking is memoized: a second call reuses it.
        assert index._frequent_ranked is not None
        assert index.frequent_tokens(3) == first
        index.add_document(Document("d3", "dell dell servers"))
        assert index._frequent_ranked is None  # mutation invalidates
        assert index.frequent_tokens(1) == ["dell"]  # df=2 now, pre-"lenovo"
        index.remove_document("d3")
        assert index._frequent_ranked is None
        assert index.frequent_tokens(3) == first
