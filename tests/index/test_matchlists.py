"""Concept-based match-list derivation (footnote 1)."""

import pytest

from repro.core.query import Query
from repro.index.inverted import InvertedIndex
from repro.index.matchlists import ConceptIndex
from repro.lexicon.graph import LexicalGraph
from repro.text.document import Corpus, Document


@pytest.fixture
def setup():
    corpus = Corpus(
        [
            Document("d1", "Lenovo and Dell ship laptops; the manufacturer wins"),
            Document("d2", "no relevant words here at all"),
            Document("d3", "Dell dominates the pc maker rankings"),
        ]
    )
    graph = LexicalGraph()
    graph.add_hyponyms("pc maker", "lenovo", "dell")
    graph.add_edge("pc maker", "maker")
    graph.add_edge("maker", "manufacturer")
    index = InvertedIndex.build(corpus)
    return ConceptIndex(index, lexicon=graph), corpus


class TestConceptIndex:
    def test_expansion_scores(self, setup):
        concept_index, _ = setup
        expansion = dict(concept_index.expansion("pc maker"))
        assert expansion[("pc", "maker")] == pytest.approx(1.0)
        assert expansion[("lenovo",)] == pytest.approx(0.7)
        assert expansion[("manufacturer",)] == pytest.approx(0.4)

    def test_match_list_merges_postings(self, setup):
        concept_index, _ = setup
        lst = concept_index.match_list("pc maker", "d1")
        by_loc = {m.location: m.score for m in lst}
        assert by_loc[0] == pytest.approx(0.7)  # lenovo
        assert by_loc[2] == pytest.approx(0.7)  # dell
        assert by_loc[6] == pytest.approx(0.4)  # manufacturer

    def test_multiword_concept_occurrence(self, setup):
        concept_index, _ = setup
        lst = concept_index.match_list("pc maker", "d3")
        assert max(m.score for m in lst) == pytest.approx(1.0)  # literal "pc maker"

    def test_empty_for_unrelated_document(self, setup):
        concept_index, _ = setup
        assert len(concept_index.match_list("pc maker", "d2")) == 0

    def test_candidate_documents_conjunctive(self, setup):
        concept_index, _ = setup
        assert concept_index.candidate_documents(["pc maker"]) == ["d1", "d3"]
        assert concept_index.candidate_documents(["pc maker", "rankings"]) == ["d3"]

    def test_match_lists_batch(self, setup):
        concept_index, _ = setup
        lists = concept_index.match_lists(["pc maker", "laptop"], "d1")
        assert len(lists) == 2
        assert lists[0].term == "pc maker"

    def test_expansion_cached(self, setup):
        concept_index, _ = setup
        first = concept_index.expansion("pc maker")
        assert concept_index.expansion("pc maker") is first


class TestGenerationCache:
    def test_same_generation_returns_same_objects(self, setup):
        concept_index, _ = setup
        first = concept_index.match_lists(["pc maker"], "d1", generation=1)
        again = concept_index.match_lists(["pc maker"], "d1", generation=1)
        assert again[0] is first[0]

    def test_generation_change_invalidates(self, setup):
        concept_index, _ = setup
        first = concept_index.match_lists(["pc maker"], "d1", generation=1)
        later = concept_index.match_lists(["pc maker"], "d1", generation=2)
        assert later[0] is not first[0]
        assert list(later[0]) == list(first[0])

    def test_without_generation_no_persistence(self, setup):
        concept_index, _ = setup
        first = concept_index.match_lists(["pc maker"], "d1")
        again = concept_index.match_lists(["pc maker"], "d1")
        assert again[0] is not first[0]

    def test_memo_interops_with_cache(self, setup):
        concept_index, _ = setup
        memo: dict = {}
        first = concept_index.match_lists(
            ["pc maker"], "d1", memo=memo, generation=1
        )
        assert memo[("pc maker", "d1")] is first[0]
        # A memo pre-seeded list is reused rather than rebuilt.
        again = concept_index.match_lists(
            ["pc maker"], "d1", memo=memo, generation=1
        )
        assert again[0] is first[0]

    def test_cap_evicts_oldest(self, setup):
        concept_index, _ = setup
        concept_index._LIST_CACHE_CAP = 2
        concept_index.match_lists(["pc maker"], "d1", generation=1)
        concept_index.match_lists(["pc maker"], "d3", generation=1)
        concept_index.match_lists(["laptop"], "d1", generation=1)
        assert ("pc maker", "d1") not in concept_index._list_cache
        assert len(concept_index._list_cache) == 2

    def _instrument_match_list(self, concept_index, monkeypatch, calls):
        original = ConceptIndex.match_list

        def instrumented(self, concept, doc_id):
            calls.append(concept)
            assert not self._list_cache_lock.locked(), (
                "match_list materialization must never run inside the "
                "list-cache critical section"
            )
            return original(self, concept, doc_id)

        monkeypatch.setattr(ConceptIndex, "match_list", instrumented)

    def test_materialization_runs_outside_cache_lock(self, setup, monkeypatch):
        concept_index, _ = setup
        calls: list = []
        self._instrument_match_list(concept_index, monkeypatch, calls)
        lists = concept_index.match_lists(
            ["pc maker", "laptop"], "d1", generation=1
        )
        assert len(lists) == 2
        assert set(calls) == {"pc maker", "laptop"}

    def test_eviction_fallback_rebuilds_outside_lock(self, setup, monkeypatch):
        # Regression: a list evicted between the two locked sections used
        # to be rebuilt *inside* the second one, running full posting
        # materialization in the critical section.
        concept_index, _ = setup
        concept_index.match_lists(["pc maker"], "d1", generation=1)  # seed
        concept_index._LIST_CACHE_CAP = 0  # evict everything while locked
        calls: list = []
        self._instrument_match_list(concept_index, monkeypatch, calls)
        lists = concept_index.match_lists(["pc maker"], "d1", generation=1)
        assert calls == ["pc maker"]  # fallback path taken…
        assert len(lists[0]) > 0  # …and it still returns the real list
