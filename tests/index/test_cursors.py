"""TermPostings/Cursor: the DAAT per-term structures."""

import pytest

from repro.core.kernels.columnar import bound_transform
from repro.core.scoring.presets import trec_max, trec_med, trec_win
from repro.index.cursors import Cursor, TermPostings, build_term_postings
from repro.system import SearchSystem


@pytest.fixture(scope="module")
def system():
    built = SearchSystem()
    built.add_texts(
        [
            ("a-1", "maker partnership announced"),
            ("a-2", "a manufacturer and an alliance"),  # synonyms only
            ("a-3", "partnership texts without the other concept"),
            ("a-4", "maker maker maker repeated"),
        ]
    )
    return built


def test_build_term_postings_membership_and_scores(system):
    postings = build_term_postings(system._concepts, "maker")
    # Exact term scores 1.0; a synonym-only document keeps the best
    # present expansion score (manufacturer = one lexicon edge = 0.7).
    assert postings.best_scores["a-1"] == 1.0
    assert postings.best_scores["a-4"] == 1.0
    assert postings.best_scores["a-2"] == pytest.approx(0.7)
    assert "a-3" not in postings.best_scores
    assert postings.doc_ids == tuple(sorted(postings.best_scores))
    assert postings.max_score == 1.0
    assert postings.document_frequency == len(postings.doc_ids)


def test_term_postings_agrees_with_match_lists(system):
    # Membership parity: the postings contain exactly the documents
    # where the concept's match list is non-empty, and the best score
    # equals the best match score — the invariant the membership bound's
    # soundness rests on.
    concepts = system._concepts
    for term in ("maker", "partnership"):
        postings = build_term_postings(concepts, term)
        for doc in system.corpus:
            lst = concepts.match_list(term, doc.doc_id)
            if len(lst):
                best = max(m.score for m in lst)
                assert postings.best_scores[doc.doc_id] == pytest.approx(best)
            else:
                assert doc.doc_id not in postings.best_scores


@pytest.mark.parametrize("preset", [trec_max, trec_med, trec_win])
def test_ceiling_and_contribution_match_bound_transform(system, preset):
    scoring = preset()
    postings = build_term_postings(system._concepts, "maker")
    expected = bound_transform(scoring, 0, postings.max_score)
    assert postings.ceiling(scoring, 0) == expected
    # Cached: second call returns the same value.
    assert postings.ceiling(scoring, 0) == expected
    for doc_id, best in postings.best_scores.items():
        contribution = postings.bound_contribution(scoring, 0, doc_id)
        assert contribution == bound_transform(scoring, 0, best)
        assert contribution <= postings.ceiling(scoring, 0)


def test_ceiling_cache_distinguishes_term_index(system):
    scoring = trec_win()  # g divides by the per-term weight: j matters
    postings = TermPostings("t", {"d": 0.6})
    assert postings.ceiling(scoring, 0) == bound_transform(scoring, 0, 0.6)
    assert postings.ceiling(scoring, 1) == bound_transform(scoring, 1, 0.6)


def test_cursor_traversal_and_seek():
    postings = TermPostings("t", {f"d-{i:02d}": 1.0 for i in (1, 3, 5, 7)})
    cursor = Cursor(postings, 0)
    assert cursor.doc == "d-01"
    # Seek to a present id lands on it; to a missing id lands on the
    # next greater one; never moves backwards.
    assert cursor.seek("d-03") == "d-03"
    assert cursor.seek("d-04") == "d-05"
    assert cursor.seek("d-01") == "d-05"
    assert cursor.advance() == "d-07"
    assert cursor.seek("d-99") is None
    assert cursor.doc is None
    assert cursor.advance() is None


def test_empty_postings_cursor():
    cursor = Cursor(TermPostings("t", {}), 0)
    assert cursor.doc is None
    assert cursor.seek("anything") is None


def test_concept_index_postings_cache_is_generation_keyed(system):
    concepts = system._concepts
    generation = system.index_generation
    first = concepts.term_postings("maker", generation)
    assert concepts.term_postings("maker", generation) is first
    # A new generation drops the cache and rebuilds.
    rebuilt = concepts.term_postings("maker", generation + 1)
    assert rebuilt is not first
    assert rebuilt.best_scores == first.best_scores
