"""PairIndex: budgeted two-term proximity precomputation."""

import pytest

from repro.index.pairs import _min_gap, build_pair_index
from repro.system import SearchSystem


def build_system(documents):
    system = SearchSystem()
    system.add_texts(documents)
    return system


@pytest.fixture(scope="module")
def system():
    return build_system(
        [
            ("d-1", "alpha beta together"),
            ("d-2", "alpha " + " ".join(f"w{i}" for i in range(10)) + " beta"),
            ("d-3", "alpha gamma and beta gamma"),
            ("d-4", "gamma alone here"),
        ]
    )


def test_min_gap_is_the_smallest_location_distance(system):
    concepts = system._concepts
    gap_close = _min_gap(
        concepts.match_list("alpha", "d-1"), concepts.match_list("beta", "d-1")
    )
    gap_far = _min_gap(
        concepts.match_list("alpha", "d-2"), concepts.match_list("beta", "d-2")
    )
    assert gap_close == 1
    assert gap_far == 11


def test_build_and_lookup(system):
    index = build_pair_index(
        system._concepts,
        ["alpha", "beta", "gamma"],
        generation=system.index_generation,
    )
    entry = index.lookup("alpha", "beta")
    assert entry is not None
    # Order-normalized: both orders find the same entry.
    assert index.lookup("beta", "alpha") is entry
    assert set(entry.docs) == {"d-1", "d-2", "d-3"}
    posting = entry.docs["d-1"]
    assert posting.min_gap == 1
    # The stored lists are the real pre-joined match lists.
    assert posting.list_a.term == "alpha"
    assert posting.list_b.term == "beta"
    assert len(posting.list_a) and len(posting.list_b)
    assert index.lookup("alpha", "missing") is None
    stats = index.stats()
    assert stats["generation"] == system.index_generation
    assert stats["entries_stored"] == index.entries_stored


def test_min_pair_df_filters_rare_pairs(system):
    # alpha+gamma co-occur only in d-3: below min_pair_df=2.
    index = build_pair_index(
        system._concepts,
        ["alpha", "beta", "gamma"],
        generation=system.index_generation,
        min_pair_df=2,
    )
    assert index.lookup("alpha", "gamma") is None
    assert index.lookup("alpha", "beta") is not None


def test_max_pairs_budget_keeps_heaviest_pairs(system):
    index = build_pair_index(
        system._concepts,
        ["alpha", "beta", "gamma"],
        generation=system.index_generation,
        min_pair_df=1,
        max_pairs=1,
    )
    # One slot: the highest-co-df pair (alpha, beta — 3 docs) wins.
    assert len(index) == 1
    assert index.lookup("alpha", "beta") is not None
    assert index.pairs_considered >= 1


def test_max_entries_budget_stops_storage():
    system = build_system(
        [(f"d-{i}", "alpha beta") for i in range(10)]
        + [("e-1", "alpha gamma"), ("e-2", "alpha gamma")]
    )
    index = build_pair_index(
        system._concepts,
        ["alpha", "beta", "gamma"],
        generation=system.index_generation,
        min_pair_df=1,
        max_entries=5,
    )
    # alpha+beta (co-df 10) busts the entry budget; alpha+gamma (2) fits.
    assert index.lookup("alpha", "beta") is None
    assert index.lookup("alpha", "gamma") is not None
    assert index.entries_stored <= 5


def test_build_pair_index_rejects_bad_budget(system):
    with pytest.raises(ValueError):
        build_pair_index(
            system._concepts, ["alpha"], generation=0, max_pairs=0
        )


def test_system_build_pair_index_defaults():
    system = build_system(
        [
            ("d-1", "alpha beta alpha beta"),
            ("d-2", "alpha beta again"),
            ("d-3", "alpha beta third"),
        ]
    )
    index = system.build_pair_index()
    assert index is system._pair_index
    assert index.generation == system.index_generation
    assert len(index) >= 1
    # Corpus mutation outdates the index (consumers must ignore it).
    system.add_texts([("d-4", "alpha beta fourth")])
    assert index.generation != system.index_generation
