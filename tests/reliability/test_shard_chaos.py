"""Cluster chaos: shard death mid-query, degraded answers, respawn.

The scenario the subsystem exists to survive: a shard worker process is
SIGKILLed *while executing a query*.  The request must complete with a
degraded partial answer from the surviving shards (tagged in the
response and in the ``request`` log event), the watchdog must respawn
the dead worker, answers must return to full (byte-identical to the
single-process path) once the breaker re-admits the shard, and no
future may hang at any point along the way.

The ``shard.query`` fault point (delay mode) holds every worker
mid-query so the kill lands deterministically inside execution; the
workers arm it from the ``REPRO_FAULTS`` environment they inherit.
"""

import os
import signal
import time

import pytest

from repro.cluster import ClusterExecutor, ShardsUnavailable
from repro.obs.log import MemorySink, StructuredLogger
from repro.system import SearchSystem

CORPUS = [
    (f"doc-{i:02d}", f"alpha beta gamma document number {i} alpha beta")
    for i in range(16)
]

QUERY = "alpha, beta"


def build_system():
    system = SearchSystem()
    system.add_texts(CORPUS)
    return system


@pytest.fixture()
def delayed_shards(monkeypatch):
    # Workers read REPRO_FAULTS at startup; every query then sleeps
    # long enough for a kill signal to land mid-execution.
    monkeypatch.setenv("REPRO_FAULTS", "shard.query:delay:0.4")


def wait_until(predicate, timeout_s=10.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def test_shard_killed_mid_query_degrades_then_recovers(delayed_shards):
    sink = MemorySink()
    logger = StructuredLogger()
    logger.add_sink(sink)
    system = build_system()
    expected = system.ask(QUERY, top_k=5)
    executor = ClusterExecutor(
        system,
        shards=2,
        watchdog_interval=0.1,
        breaker_threshold=1,  # one failure opens the shard's breaker
        breaker_reset_s=0.3,
        logger=logger,
        cache_size=0,
    )
    try:
        victim_pid = executor.shard_health()[0]["pid"]
        future = executor.submit(QUERY, top_k=5)
        time.sleep(0.15)  # both workers are sleeping inside the query
        os.kill(victim_pid, signal.SIGKILL)

        # 1. The in-flight request completes promptly (no hung future)
        #    with a degraded partial answer from the surviving shard.
        response = future.result(timeout=30)
        assert response.degraded
        assert response.shards_total == 2
        assert response.shards_failed == 1
        assert 0 < len(response.results) <= 5
        surviving = {doc.doc_id for doc in response.results}
        assert surviving <= {doc.doc_id for doc in expected} | {
            doc_id for doc_id, _ in CORPUS
        }

        # 2. The degradation is logged on the request event.
        degraded_events = [
            event
            for event in sink.events
            if event["event"] == "request" and event.get("outcome") == "degraded"
        ]
        assert degraded_events, [e["event"] for e in sink.events]
        assert degraded_events[0]["shards_failed"] == 1

        # 3. The watchdog respawns the dead worker under a new pid.
        assert wait_until(lambda: executor.shard_health()[0]["alive"])
        assert executor.shard_health()[0]["pid"] != victim_pid
        assert executor.metrics.count("shard_respawns") >= 1
        assert any(event["event"] == "shard.respawn" for event in sink.events)

        # 4. Once the breaker re-admits the shard, answers are full
        #    again — and byte-identical to the single-process ranking.
        def recovered():
            return not executor.ask(QUERY, top_k=5).degraded

        assert wait_until(recovered, interval_s=0.15)
        response = executor.ask(QUERY, top_k=5)
        assert not response.degraded
        assert response.shards_failed == 0
        assert list(response.results) == list(expected)
    finally:
        executor.shutdown()


def test_all_shards_dead_fails_fast_not_hangs(delayed_shards):
    system = build_system()
    executor = ClusterExecutor(
        system,
        shards=2,
        watchdog_interval=0,  # no respawn: total loss stays total
        breaker_threshold=5,
        cache_size=0,
    )
    try:
        pids = [entry["pid"] for entry in executor.shard_health()]
        future = executor.submit(QUERY, top_k=5)
        time.sleep(0.15)
        for pid in pids:
            os.kill(pid, signal.SIGKILL)
        with pytest.raises(ShardsUnavailable):
            future.result(timeout=30)
        assert executor.metrics.count("shard_failures") >= 2
    finally:
        executor.shutdown()


def test_killed_shard_leaves_truncated_subtree_in_the_trace(delayed_shards):
    # Distributed-tracing contract under partial failure: the request
    # still yields ONE merged span tree; the SIGKILLed shard's span is
    # finished-but-truncated and tagged ``shard_failure`` (its worker
    # subtree never arrived), while the surviving shard's grafted
    # ``shard.execute`` subtree is complete.
    from repro.obs.trace import Tracer

    tracer = Tracer()
    system = build_system()
    executor = ClusterExecutor(
        system,
        shards=2,
        watchdog_interval=0,  # keep the kill observable: no respawn
        breaker_threshold=5,
        cache_size=0,
        tracer=tracer,
    )
    try:
        victim_pid = executor.shard_health()[0]["pid"]
        future = executor.submit(QUERY, top_k=5)
        time.sleep(0.15)
        os.kill(victim_pid, signal.SIGKILL)
        response = future.result(timeout=30)
        assert response.degraded

        traces = [t for t in tracer.finished() if t.root.name == "request"]
        assert len(traces) == 1
        trace = traces[0]
        shard_spans = trace.find("shard")
        assert len(shard_spans) == 2
        dead = [s for s in shard_spans if s.tags.get("outcome") == "error"]
        live = [s for s in shard_spans if s.tags.get("outcome") == "ok"]
        assert len(dead) == 1 and len(live) == 1

        # The dead shard's span is closed, tagged, and childless.
        assert dead[0].finished
        assert dead[0].tags["failure"] == "shard_failure"
        assert dead[0].tags["truncated"] is True
        dead_prefix = dead[0].span_id + ":"
        assert not any(
            s.span_id.startswith(dead_prefix) for s in trace.spans
        )

        # The survivor's worker subtree grafted in full.
        live_prefix = live[0].span_id + ":"
        survivor_subtree = [
            s for s in trace.spans if s.span_id.startswith(live_prefix)
        ]
        assert any(s.name == "shard.execute" for s in survivor_subtree)
        assert all(s.finished for s in survivor_subtree)
    finally:
        executor.shutdown()


def test_respawned_shard_serves_identical_results(delayed_shards):
    # Respawn fidelity: the replacement worker rebuilds its index from
    # the coordinator's partition copy, so a post-recovery full answer
    # is exactly the pre-crash answer.
    system = build_system()
    executor = ClusterExecutor(
        system,
        shards=4,
        watchdog_interval=0.1,
        breaker_threshold=1,
        breaker_reset_s=0.2,
        cache_size=0,
    )
    try:
        before = executor.ask(QUERY, top_k=5)
        assert not before.degraded
        victim_pid = executor.shard_health()[2]["pid"]
        future = executor.submit(QUERY, top_k=5)
        time.sleep(0.15)
        os.kill(victim_pid, signal.SIGKILL)
        assert future.result(timeout=30).degraded
        assert wait_until(lambda: executor.shard_health()[2]["alive"])

        def recovered():
            return not executor.ask(QUERY, top_k=5).degraded

        assert wait_until(recovered, interval_s=0.15)
        after = executor.ask(QUERY, top_k=5)
        assert list(after.results) == list(before.results)
        assert after.shards_failed == 0
    finally:
        executor.shutdown()
