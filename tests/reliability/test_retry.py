"""Retry with exponential backoff and jitter."""

import pytest

from repro.reliability.faults import InjectedFault, TransientFault
from repro.reliability.retry import RetryPolicy, call_with_retry


def _flaky(failures, exc=TransientFault):
    """A callable that fails ``failures`` times, then returns 'ok'."""
    state = {"left": failures}

    def fn():
        if state["left"] > 0:
            state["left"] -= 1
            raise exc("p")
        return "ok"

    return fn


class TestCallWithRetry:
    def test_succeeds_after_transient_failures(self):
        sleeps = []
        result = call_with_retry(
            _flaky(2), RetryPolicy(max_attempts=3), sleep=sleeps.append
        )
        assert result == "ok"
        assert len(sleeps) == 2

    def test_exhausted_attempts_raise_last_error(self):
        with pytest.raises(TransientFault):
            call_with_retry(
                _flaky(5), RetryPolicy(max_attempts=3), sleep=lambda _: None
            )

    def test_non_retryable_raises_immediately(self):
        calls = []

        def fn():
            calls.append(1)
            raise InjectedFault("p")  # not TransientFault

        with pytest.raises(InjectedFault):
            call_with_retry(fn, RetryPolicy(max_attempts=5), sleep=lambda _: None)
        assert len(calls) == 1

    def test_on_retry_hook_sees_each_attempt(self):
        seen = []
        call_with_retry(
            _flaky(2),
            RetryPolicy(max_attempts=3),
            sleep=lambda _: None,
            on_retry=lambda attempt, exc, delay: seen.append((attempt, delay)),
        )
        assert [attempt for attempt, _ in seen] == [1, 2]


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, max_delay_s=0.5, multiplier=2.0, jitter=0.0
        )
        delays = [policy.delay_for(n) for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=1.0, jitter=0.5)
        for _ in range(100):
            delay = policy.delay_for(1)
            assert 0.05 <= delay <= 0.1

    def test_bad_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
