"""Executor invariants under pressure: deadlines, caching, self-healing.

Each test arms a named fault point and asserts the serving invariants
the reliability layer exists to protect: expired requests never
run, degraded results never reach the cache, futures never hang, and a
broken dependency degrades service instead of taking it down.
"""

import time

import pytest

from repro.matching.queries import QuerySyntaxError
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.faults import FAULTS
from repro.service import (
    DeadlineExceeded,
    QueryExecutor,
    QueryRejected,
    ShutdownDrained,
)
from repro.system import SearchSystem

NEWS = [
    ("news-1", "Lenovo announced a marketing partnership with the NBA."),
    ("news-2", "Dell explored an alliance with the Olympic Games organizers."),
    ("news-3", "A bakery opened downtown; nothing about computers here."),
    ("news-4", "Acer sponsors a cycling team in a sports partnership."),
]

QUERY = "partnership, sports"
OTHER = "alliance, games"


@pytest.fixture
def system():
    built = SearchSystem()
    built.add_texts(NEWS)
    return built


class TestDeadlines:
    def test_queued_deadline_expires_without_running(self, system):
        with QueryExecutor(
            system, workers=1, max_batch=1, watchdog_interval=0
        ) as executor:
            # Pin the only worker inside a slow join, then let a queued
            # request's deadline lapse behind it.
            FAULTS.arm("join.execute", "delay", delay_s=0.4, times=1)
            blocker = executor.submit(QUERY)
            time.sleep(0.1)
            victim = executor.submit(OTHER, timeout=0.05)
            with pytest.raises(DeadlineExceeded):
                victim.result(timeout=5)
            blocker.result(timeout=5)
            assert executor.metrics.count("deadline_misses") == 1
            # The victim's join never ran: only the blocker executed.
            assert executor.metrics.count("joins_executed") == 1


class TestDegradedNeverCached:
    def test_degraded_result_not_cached(self, system):
        with QueryExecutor(system, workers=1, watchdog_interval=0) as executor:
            FAULTS.arm("join.execute", "error", times=1)
            first = executor.ask(QUERY)
            assert first.degraded and not first.cached
            assert executor.cache.stats()["size"] == 0
            # The next ask misses (nothing was cached) and runs exact.
            second = executor.ask(QUERY)
            assert not second.degraded and not second.cached
            third = executor.ask(QUERY)
            assert third.cached

    def test_degraded_not_cached_across_generation_bump(self, system):
        with QueryExecutor(system, workers=1, watchdog_interval=0) as executor:
            FAULTS.arm("join.execute", "error", times=1)
            first = executor.ask(QUERY)
            assert first.degraded
            executor.apply(
                lambda s: s.add_texts([("new-1", "A new sports partnership.")])
            )
            after = executor.ask(QUERY)
            assert after.generation == first.generation + 1
            assert not after.cached  # the degraded ranking never leaked


class TestCacheFailOpen:
    def test_cache_get_fault_is_a_miss(self, system):
        with QueryExecutor(system, workers=1, watchdog_interval=0) as executor:
            executor.ask(QUERY)  # warm the cache
            FAULTS.arm("cache.get", "error", times=1)
            broken = executor.ask(QUERY)
            assert broken.cached is False  # recomputed, not failed
            assert executor.metrics.count("cache_errors") == 1
            healthy = executor.ask(QUERY)
            assert healthy.cached is True

    def test_cache_put_fault_skips_caching(self, system):
        with QueryExecutor(system, workers=1, watchdog_interval=0) as executor:
            FAULTS.arm("cache.put", "error", times=1)
            executor.ask(QUERY)  # its put fails silently
            second = executor.ask(QUERY)
            assert second.cached is False
            third = executor.ask(QUERY)
            assert third.cached is True
            assert executor.metrics.count("cache_errors") == 1


class TestSelfHealing:
    def test_no_hung_futures_under_worker_crashes(self, system):
        with QueryExecutor(system, workers=2, watchdog_interval=0.05) as executor:
            FAULTS.arm("worker.loop", "crash", times=2)
            futures = [
                executor.submit(QUERY if i % 2 else OTHER) for i in range(12)
            ]
            # Every future resolves even though both original workers die:
            # the watchdog staffs the pool back up.
            for future in futures:
                assert future.result(timeout=10).results is not None
            deadline = time.monotonic() + 5
            while (
                executor.metrics.count("worker_restarts") < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert executor.metrics.count("worker_restarts") >= 1
            assert executor.health()["workers"]["alive"] >= 1

    def test_stalled_worker_replaced(self, system):
        with QueryExecutor(
            system,
            workers=1,
            max_batch=1,
            watchdog_interval=0,
            stall_timeout_s=0.1,
        ) as executor:
            FAULTS.arm("join.execute", "delay", delay_s=0.6, times=1)
            blocker = executor.submit(QUERY)
            time.sleep(0.25)  # past the stall budget
            report = executor.check_workers()
            assert report == {"restarted": 1, "stalled": 1}
            # The replacement serves new traffic while the stuck thread
            # finishes its batch and retires.
            quick = executor.submit(OTHER)
            assert quick.result(timeout=5).results is not None
            blocker.result(timeout=5)
            assert executor.metrics.count("workers_stalled") == 1
            assert executor.metrics.count("worker_restarts") == 1


class TestCircuitBreaker:
    def test_opens_sheds_and_recovers(self, system):
        with QueryExecutor(
            system,
            workers=1,
            watchdog_interval=0,
            cache_size=0,
            breaker_threshold=2,
            breaker_reset_s=0.15,
        ) as executor:
            FAULTS.arm("join.execute", "error", times=2)
            assert executor.ask(QUERY).degraded  # failure 1
            assert executor.ask(QUERY).degraded  # failure 2 → opens
            assert executor.metrics.count("breaker_open_total") == 1
            assert executor.health()["open_breakers"] == ["default"]
            # Open: the exact join is not even attempted (load shedding).
            shed = executor.ask(QUERY)
            assert shed.degraded
            assert executor.metrics.count("breaker_shed_total") == 1
            time.sleep(0.2)  # past the reset timeout → half-open probe
            recovered = executor.ask(QUERY)
            assert recovered.degraded is False
            assert executor.health()["open_breakers"] == []
            assert executor._breakers["default"].state == CircuitBreaker.CLOSED

    def test_request_errors_leave_breaker_alone(self, system):
        with QueryExecutor(
            system, workers=1, watchdog_interval=0, breaker_threshold=1
        ) as executor:
            for _ in range(3):
                with pytest.raises(QuerySyntaxError):
                    executor.ask('"unterminated')
            # Client mistakes say nothing about the join path's health.
            assert executor.metrics.count("breaker_open_total") == 0
            assert executor.ask(QUERY).degraded is False


class TestTransientRetry:
    def test_transient_faults_retried_to_exact_success(self, system):
        with QueryExecutor(system, workers=1, watchdog_interval=0) as executor:
            FAULTS.arm("join.execute", "transient", times=2)
            response = executor.ask(QUERY)
            assert response.degraded is False  # retries absorbed the faults
            assert executor.metrics.count("retries_total") == 2
            assert executor.metrics.count("breaker_open_total") == 0


class TestGracefulShutdown:
    def test_drain_budget_fails_queued_with_structured_error(self, system):
        executor = QueryExecutor(
            system, workers=1, max_batch=1, watchdog_interval=0
        )
        FAULTS.arm("join.execute", "delay", delay_s=0.5, times=1)
        blocker = executor.submit(QUERY)
        time.sleep(0.1)
        victims = [executor.submit(OTHER) for _ in range(2)]
        executor.shutdown(wait=True, drain_timeout=0.1)
        for victim in victims:
            with pytest.raises(ShutdownDrained):
                victim.result(timeout=5)
        assert executor.metrics.count("drain_dropped") == 2
        blocker.result(timeout=5)  # in-flight work still completed
        with pytest.raises(QueryRejected):
            executor.submit(QUERY)

    def test_untimed_drain_serves_everything(self, system):
        executor = QueryExecutor(
            system, workers=2, watchdog_interval=0.05
        )
        futures = [executor.submit(QUERY if i % 2 else OTHER) for i in range(8)]
        executor.shutdown(wait=True)
        for future in futures:
            assert future.result(timeout=5).results is not None
        assert executor.metrics.count("drain_dropped") == 0

    def test_shutdown_is_idempotent(self, system):
        executor = QueryExecutor(system, workers=1, watchdog_interval=0)
        executor.shutdown(wait=True)
        executor.shutdown(wait=True)
        health = executor.health()
        assert health["ready"] is False
        assert health["status"] == "unhealthy"
