"""Durability chaos: kill -9 mid-append, mid-seal, mid-merge-swap.

The guarantee the WAL exists to provide: every *acknowledged* write
survives an arbitrary process death, and recovery never invents writes
that were not attempted.  A child process runs real mutations against a
real data directory, prints an ``ACK`` line after each acknowledged
write, then arms a delay-mode fault at the scenario's kill window
(``wal.append`` / ``segment.seal`` / ``merge.swap``) and walks into it;
the parent SIGKILLs it mid-operation and recovers the directory
in-process.  The recovered state must be byte-identical to a monolithic
:class:`InvertedIndex` oracle fed exactly the acknowledged documents
(plus, for the in-flight write, nothing or the attempted document —
never a torn half-state).

The property test drives a seeded random interleaving of adds, removes,
re-adds, seals, merges, and full close-and-recover cycles, comparing
the durable index to the oracle at every step.
"""

import os
import pathlib
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.index.inverted import InvertedIndex
from repro.index.segments import SegmentedIndex
from repro.text.document import Document

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

#: The child's corpus vocabulary: every scenario's documents draw from
#: these words so posting lists overlap across segments.
VOCAB = ["alpha", "beta", "gamma", "delta", "epsilon", "number"]

CHILD_SOURCE = """
import sys

from repro.index.segments import SegmentedIndex
from repro.reliability.faults import FAULTS
from repro.text.document import Document

data_dir, scenario = sys.argv[1], sys.argv[2]


def ack(line):
    print(line, flush=True)


index = SegmentedIndex.recover(data_dir, seal_threshold=0, merge_fanin=4)
if scenario == "append":
    for i in range(5):
        index.add_document(Document(f"doc-{i}", f"alpha beta number {i}"))
        ack(f"ACK doc-{i}")
    FAULTS.arm("wal.append", "delay", delay_s=120)
    ack("ARMED")
    index.add_document(Document("doc-late", "gamma delta never acknowledged"))
    ack("ACK doc-late")  # unreachable: the kill lands inside the delay
elif scenario == "seal":
    for i in range(5):
        index.add_document(Document(f"doc-{i}", f"alpha beta number {i}"))
        ack(f"ACK doc-{i}")
    FAULTS.arm("segment.seal", "delay", delay_s=120)
    ack("ARMED")
    index.seal()
    ack("SEALED")
elif scenario == "merge":
    for i in range(4):
        index.add_document(Document(f"doc-{i}", f"alpha beta number {i}"))
        index.seal()
        ack(f"ACK doc-{i}")
    FAULTS.arm("merge.swap", "delay", delay_s=120)
    ack("ARMED")
    index.merge_once()
    ack("MERGED")
else:  # pragma: no cover - driver bug
    raise SystemExit(f"unknown scenario {scenario!r}")
"""


def assert_equivalent(index, oracle):
    """The recovered index reads byte-identically to the oracle."""
    assert index.document_count == oracle.document_count
    assert sorted(index.documents()) == sorted(oracle.documents())
    assert index.vocabulary_size == oracle.vocabulary_size
    size = oracle.vocabulary_size
    assert index.frequent_tokens(size) == oracle.frequent_tokens(size)
    for doc_id in oracle.documents():
        assert index.document_length(doc_id) == oracle.document_length(doc_id)
    for word in VOCAB:
        want = oracle.postings(word)
        got = index.postings(word)
        if want is None:
            assert got is None
            continue
        assert got is not None
        assert sorted(got.documents()) == sorted(want.documents())
        for doc_id in want.documents():
            assert index.positions(word, doc_id) == oracle.positions(word, doc_id)


def oracle_for(pairs):
    oracle = InvertedIndex()
    for doc_id, text in pairs:
        oracle.add_document(Document(doc_id, text))
    return oracle


def run_child_until_armed(data_dir, scenario):
    """Run the mutation child, SIGKILL it mid-operation; returns acks."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SOURCE, str(data_dir), scenario],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    acked = []
    try:
        for line in child.stdout:
            line = line.strip()
            if line.startswith("ACK "):
                acked.append(line.split(" ", 1)[1])
            elif line == "ARMED":
                break
        else:  # child died before arming: surface its stderr
            raise AssertionError(
                f"child exited early ({child.wait()}): {child.stderr.read()}"
            )
        # The child is now inside (or entering) the held operation; give
        # it a beat to reach the delay, then kill -9 mid-flight.
        time.sleep(0.4)
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
        child.stdout.close()
        child.stderr.close()
    assert child.returncode == -signal.SIGKILL
    return acked


EXPECTED_ACKS = {"append": 5, "seal": 5, "merge": 4}


@pytest.mark.parametrize("scenario", sorted(EXPECTED_ACKS))
def test_kill9_recovers_exactly_acknowledged_writes(tmp_path, scenario):
    data_dir = tmp_path / "data"
    acked = run_child_until_armed(data_dir, scenario)
    assert len(acked) == EXPECTED_ACKS[scenario]

    recovered = SegmentedIndex.recover(data_dir)
    try:
        # Exactly the acknowledged writes: the in-flight operation was
        # held *before* its durability point in every scenario, so
        # nothing beyond the acks may surface — and nothing acked may
        # be lost.
        assert sorted(recovered.documents()) == sorted(acked)
        assert_equivalent(
            recovered,
            oracle_for(
                [(doc_id, f"alpha beta number {doc_id.split('-')[1]}")
                 for doc_id in acked]
            ),
        )
        stats = recovered.recovery_stats
        assert stats["quarantined_segments"] == []
        if scenario == "append":
            # All five acked records were WAL-only; the held sixth
            # record never reached the file.
            assert stats["wal_replay_records"] == 5
        elif scenario == "seal":
            # The seal was held before segment/manifest writes: the WAL
            # still carries everything.
            assert stats["wal_replay_records"] == 5
            assert recovered.segments_live == 0
        else:  # merge
            # The merged file was written but never committed: recovery
            # collects the orphan and serves the pre-merge segments.
            assert stats["wal_replay_records"] == 0
            assert recovered.segments_live == 4
            assert len(list(data_dir.glob("seg-*.json"))) == 4
    finally:
        recovered.close()


def test_kill9_mid_merge_then_merge_completes(tmp_path):
    # After surviving a crashed swap, the *next* process must be able to
    # run the identical merge to completion.
    data_dir = tmp_path / "data"
    acked = run_child_until_armed(data_dir, "merge")
    recovered = SegmentedIndex.recover(data_dir)
    try:
        assert recovered.merge_once() is True
        assert recovered.segments_live == 1
        assert sorted(recovered.documents()) == sorted(acked)
    finally:
        recovered.close()


# -- the random-interleaving oracle property ---------------------------------


def random_text(rng):
    return " ".join(rng.choice(VOCAB) for _ in range(rng.randint(3, 9)))


@pytest.mark.parametrize("seed", (7, 19, 1031))
def test_random_interleaving_matches_monolithic_oracle(tmp_path, seed):
    rng = random.Random(seed)
    live: dict[str, str] = {}
    index = SegmentedIndex.recover(
        tmp_path / "data", seal_threshold=0, merge_fanin=3
    )
    next_id = 0
    try:
        for step in range(120):
            roll = rng.random()
            if roll < 0.45 or not live:
                doc_id, text = f"doc-{next_id:03d}", random_text(rng)
                next_id += 1
                index.add_document(Document(doc_id, text))
                live[doc_id] = text
            elif roll < 0.70:
                doc_id = rng.choice(sorted(live))
                index.remove_document(doc_id)
                del live[doc_id]
                if rng.random() < 0.5:  # re-add under the same id
                    text = random_text(rng)
                    index.add_document(Document(doc_id, text))
                    live[doc_id] = text
            elif roll < 0.85:
                index.seal()
            elif roll < 0.95:
                index.merge_once()
            else:
                generation = index.generation
                index.close()
                index = SegmentedIndex.recover(
                    tmp_path / "data", seal_threshold=0, merge_fanin=3
                )
                assert index.generation == generation
            if step % 20 == 19:
                assert_equivalent(index, oracle_for(sorted(live.items())))
        assert_equivalent(index, oracle_for(sorted(live.items())))
        # One final crash-free restart serves the same state.
        index.close()
        index = SegmentedIndex.recover(tmp_path / "data")
        assert_equivalent(index, oracle_for(sorted(live.items())))
    finally:
        index.close()
