"""End-to-end chaos: faults armed against a live HTTP server.

The acceptance scenario from the issue: with faults armed on
``index.load``, ``cache.get``, and ``worker.loop``, the server keeps
answering (possibly degraded), ``/readyz`` flips to 503 and back, no
request future hangs, and a crash simulated mid-save leaves a loadable
previous snapshot (covered in ``test_snapshots.py``).
"""

import json
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.index.io import load_index, save_index
from repro.reliability.faults import FAULTS, InjectedFault
from repro.service import SearchServer
from repro.system import SearchSystem

NEWS = [
    ("news-1", "Lenovo announced a marketing partnership with the NBA."),
    ("news-2", "Dell explored an alliance with the Olympic Games organizers."),
    ("news-3", "A bakery opened downtown; nothing about computers here."),
    ("news-4", "Acer sponsors a cycling team in a sports partnership."),
]

QUERIES = [
    "partnership, sports",
    "alliance, games",
    "bakery",
    "sports, partnership",
]


def build_system() -> SearchSystem:
    system = SearchSystem()
    system.add_texts(NEWS)
    return system


def get(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestServingUnderFaults:
    def test_server_keeps_answering_through_chaos(self, tmp_path):
        system = build_system()
        # The full acceptance fault set, armed before traffic arrives.
        FAULTS.arm("index.load", "error", times=1)
        FAULTS.arm("cache.get", "error", times=4)
        FAULTS.arm("worker.loop", "crash", times=2)

        snapshot = tmp_path / "index.json"
        save_index(system.index, snapshot)
        with pytest.raises(InjectedFault):
            load_index(snapshot)  # a load elsewhere fails…

        with SearchServer.for_system(
            system, workers=2, watchdog_interval=0.05
        ) as server:
            # …but the already-loaded server answers every request, even
            # while its cache throws and both original workers die.
            for round_number in range(3):
                for query in QUERIES:
                    status, payload = get(
                        server.url, f"/search?q={urllib.parse.quote(query)}"
                    )
                    assert status == 200, payload
                    assert "results" in payload

            metrics = server.executor.metrics
            assert metrics.count("cache_errors") >= 1  # cache failed open
            deadline = time.monotonic() + 5
            while (
                metrics.count("worker_restarts") < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert metrics.count("worker_restarts") >= 1
            assert metrics.count("requests_total") == 3 * len(QUERIES)
            assert metrics.count("errors_total") == 0

            # After the chaos budget is exhausted the pool heals and
            # readiness reports clean.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                status, health = get(server.url, "/readyz")
                if status == 200 and health["workers"]["alive"] == 2:
                    break
                time.sleep(0.02)
            assert status == 200
            assert health["ready"] is True

        # The snapshot survives the earlier injected load failure.
        assert load_index(snapshot).document_count == len(NEWS)


class TestReadiness:
    def test_readyz_flips_to_503_and_back(self):
        system = build_system()
        # One worker, no automatic watchdog: the sweep is driven by hand
        # so the 503 window is deterministic.
        with SearchServer.for_system(
            system, workers=1, watchdog_interval=0
        ) as server:
            status, health = get(server.url, "/readyz")
            assert status == 200 and health["ready"] is True

            FAULTS.arm("worker.loop", "crash", times=1)
            status, _ = get(server.url, "/search?q=bakery")
            assert status == 200  # served before the worker loops and dies

            deadline = time.monotonic() + 5
            while (
                server.executor.health()["workers"]["alive"] > 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            status, health = get(server.url, "/readyz")
            assert status == 503
            assert health["ready"] is False
            assert health["status"] == "unhealthy"
            assert health["workers"]["alive"] == 0

            # One watchdog sweep staffs the pool; readiness recovers.
            report = server.executor.check_workers()
            assert report["restarted"] == 1
            status, health = get(server.url, "/readyz")
            assert status == 200
            assert health["ready"] is True
            assert health["workers"]["restarts"] == 1

            status, _ = get(server.url, "/search?q=bakery")
            assert status == 200

    def test_healthz_reports_degraded_pool(self):
        system = build_system()
        with SearchServer.for_system(
            system, workers=2, watchdog_interval=0
        ) as server:
            FAULTS.arm("worker.loop", "crash", times=1)
            get(server.url, "/search?q=bakery")
            deadline = time.monotonic() + 5
            while (
                server.executor.health()["workers"]["alive"] > 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            status, payload = get(server.url, "/healthz")
            assert status == 200  # liveness, not readiness
            assert payload["status"] == "degraded"


class TestGracefulShutdown:
    def test_close_drains_and_refuses_new_connections(self):
        system = build_system()
        server = SearchServer.for_system(system, workers=2).start()
        url = server.url
        status, _ = get(url, "/search?q=partnership,+sports")
        assert status == 200
        server.close(drain_timeout=1.0)
        assert server.draining is True
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/healthz", timeout=2)
        # Idempotent: a second close is a no-op.
        server.close()

    def test_readyz_says_draining_during_close(self):
        # The draining flag is what /readyz consults; exercise the flag
        # directly since close() tears the listener down synchronously.
        system = build_system()
        with SearchServer.for_system(system, workers=1, watchdog_interval=0) as server:
            server._httpd.draining = True
            status, health = get(server.url, "/readyz")
            assert status == 503
            assert health["status"] == "draining"
            assert health["ready"] is False
            server._httpd.draining = False
            status, _ = get(server.url, "/readyz")
            assert status == 200


class TestStructuredErrors:
    def test_shutdown_executor_maps_to_structured_503(self):
        system = build_system()
        with SearchServer.for_system(system, workers=1, watchdog_interval=0) as server:
            server.executor.shutdown(wait=True)
            status, payload = get(server.url, "/search?q=bakery")
            assert status == 503
            assert payload["error"]["code"] == "overloaded"

    def test_malformed_parameters_are_structured_400s(self):
        system = build_system()
        with SearchServer.for_system(system, workers=1, watchdog_interval=0) as server:
            for path, code in [
                ("/search?q=bakery&top_k=zero", "invalid_parameter"),
                ("/search?q=bakery&top_k=0", "invalid_parameter"),
                ("/search?q=bakery&timeout_ms=soon", "invalid_parameter"),
                ("/search?q=bakery&timeout_ms=-5", "invalid_parameter"),
                ("/search?q=bakery&scoring=turbo", "invalid_parameter"),
                ("/search?q=%22unterminated", "bad_query"),
                ("/search", "missing_parameter"),
            ]:
                status, payload = get(server.url, path)
                assert status == 400, (path, payload)
                assert payload["error"]["code"] == code
                assert payload["error"]["message"]
