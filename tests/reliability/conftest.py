"""Chaos-suite hygiene: fault cleanup, stray-thread checks, hang watchdog.

Every test in ``tests/reliability/``:

* starts and ends with a clean fault registry (a leaked armed fault
  would poison unrelated tests);
* must return the process to its thread-count baseline — executors,
  watchdogs, and HTTP servers all have to be torn down, even when the
  test injected worker crashes;
* runs under a per-test watchdog: if a test wedges (deadlocked future,
  stuck drain), ``faulthandler`` dumps every thread's traceback and
  kills the process rather than hanging CI.  Budget comes from
  ``REPRO_CHAOS_TEST_TIMEOUT`` (seconds, default 120, 0 disables).
"""

import faulthandler
import os
import threading
import time

import pytest

from repro.reliability.faults import FAULTS


@pytest.fixture(autouse=True)
def chaos_hygiene():
    FAULTS.reset()
    baseline = threading.active_count()
    timeout = float(os.environ.get("REPRO_CHAOS_TEST_TIMEOUT", "120") or 0)
    if timeout > 0:
        faulthandler.dump_traceback_later(timeout, exit=True)
    try:
        yield
    finally:
        if timeout > 0:
            faulthandler.cancel_dump_traceback_later()
        FAULTS.reset()
    # Teardown ran inside the test (context managers / explicit close);
    # give retiring daemon threads a moment to finish dying.
    deadline = time.monotonic() + 10.0
    while threading.active_count() > baseline and time.monotonic() < deadline:
        time.sleep(0.02)
    leaked = threading.active_count() - baseline
    assert leaked <= 0, (
        f"chaos test leaked {leaked} thread(s): "
        f"{[t.name for t in threading.enumerate()]}"
    )
