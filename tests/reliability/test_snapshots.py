"""Crash-safe snapshots: round trips, corruption detection, fallback."""

import json

import pytest

from repro.core.io import SerializationError
from repro.index.inverted import InvertedIndex
from repro.index.io import (
    INDEX_FORMAT_VERSION,
    index_from_dict,
    index_to_dict,
    load_index,
    save_index,
)
from repro.reliability.faults import FAULTS, InjectedFault
from repro.reliability.snapshot import (
    SnapshotCorrupted,
    backup_path,
    read_snapshot,
    write_snapshot,
)
from repro.system import SearchSystem
from repro.text.document import Corpus, Document


@pytest.fixture
def index():
    corpus = Corpus(
        [
            Document("d1", "Lenovo partners with the NBA on marketing"),
            Document("d2", "Dell and Lenovo are PC makers"),
        ]
    )
    return InvertedIndex.build(corpus)


def _assert_same_index(left: InvertedIndex, right: InvertedIndex) -> None:
    assert left.document_count == right.document_count
    assert left.vocabulary_size == right.vocabulary_size
    for token, posting in left._postings.items():
        for doc_id in posting.documents():
            assert right.positions(token, doc_id) == posting.positions(doc_id)


class TestRoundTrips:
    def test_plain_round_trip(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        _assert_same_index(index, load_index(path))

    def test_empty_index_round_trip(self, tmp_path):
        path = tmp_path / "index.json"
        empty = InvertedIndex()
        save_index(empty, path)
        loaded = load_index(path)
        assert loaded.document_count == 0
        assert loaded.vocabulary_size == 0

    def test_unicode_tokens_and_doc_ids_round_trip(self, tmp_path):
        # The tokenizer is ASCII-run based, but the persistence layer
        # must not be: feed unicode tokens/ids through the dict format.
        payload = {
            "version": INDEX_FORMAT_VERSION,
            "stem": False,
            "drop_stopwords": False,
            "doc_lengths": {"naïve-doc": 3, "東京-doc": 2},
            "postings": {
                "café": [["naïve-doc", [0, 2]], ["東京-doc", [1]]],
                "смысл": [["東京-doc", [0]]],
            },
        }
        index = index_from_dict(payload)
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.positions("café", "naïve-doc") == (0, 2)
        assert loaded.positions("смысл", "東京-doc") == (0,)
        assert loaded.document_length("naïve-doc") == 3

    def test_legacy_v1_file_still_loads(self, index, tmp_path):
        # A pre-envelope snapshot: bare payload with dict-form postings.
        payload = index_to_dict(index)
        payload["version"] = 1
        payload["postings"] = {
            token: {doc_id: positions for doc_id, positions in docs}
            for token, docs in payload["postings"].items()
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload))
        _assert_same_index(index, load_index(path))


class TestCorruptionDetection:
    def test_version_mismatch_rejected(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        envelope = json.loads(path.read_text())
        envelope["version"] = INDEX_FORMAT_VERSION + 9
        path.write_text(json.dumps(envelope))
        with pytest.raises(SerializationError, match="version"):
            load_index(path)

    def test_legacy_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "index.json"
        path.write_text(json.dumps({"version": INDEX_FORMAT_VERSION + 9}))
        with pytest.raises(SerializationError, match="version"):
            load_index(path)

    def test_truncated_file_detected(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(SnapshotCorrupted):
            load_index(path)

    def test_tampered_payload_fails_checksum(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        envelope = json.loads(path.read_text())
        envelope["payload"]["doc_lengths"]["d1"] = 999
        path.write_text(json.dumps(envelope))
        with pytest.raises(SnapshotCorrupted, match="checksum"):
            load_index(path)

    def test_wrong_kind_rejected(self, index, tmp_path):
        path = tmp_path / "index.json"
        write_snapshot(path, kind="system", version=2, payload={"version": 2})
        with pytest.raises(SerializationError, match="kind"):
            load_index(path)


class TestBadRecords:
    def _payload(self, **overrides):
        payload = {
            "version": INDEX_FORMAT_VERSION,
            "stem": True,
            "drop_stopwords": False,
            "doc_lengths": {"d1": 4},
            "postings": {"tok": [["d1", [0, 2]]]},
        }
        payload.update(overrides)
        return payload

    def test_negative_position_rejected(self):
        with pytest.raises(SerializationError, match="negative"):
            index_from_dict(self._payload(postings={"tok": [["d1", [-1, 2]]]}))

    def test_non_integer_position_rejected(self):
        with pytest.raises(SerializationError, match="not an integer"):
            index_from_dict(self._payload(postings={"tok": [["d1", [0, "2"]]]}))
        with pytest.raises(SerializationError, match="not an integer"):
            index_from_dict(self._payload(postings={"tok": [["d1", [True]]]}))

    def test_duplicate_doc_id_rejected(self):
        with pytest.raises(SerializationError, match="duplicate doc id"):
            index_from_dict(
                self._payload(postings={"tok": [["d1", [0]], ["d1", [5]]]})
            )

    def test_unknown_document_rejected(self):
        with pytest.raises(SerializationError, match="unknown"):
            index_from_dict(self._payload(postings={"tok": [["ghost", [0]]]}))

    def test_out_of_order_positions_rejected(self):
        with pytest.raises(SerializationError):
            index_from_dict(self._payload(postings={"tok": [["d1", [3, 1]]]}))

    def test_bad_doc_length_rejected(self):
        with pytest.raises(SerializationError, match="length"):
            index_from_dict(self._payload(doc_lengths={"d1": -1}))
        with pytest.raises(SerializationError, match="length"):
            index_from_dict(self._payload(doc_lengths={"d1": "four"}))


class TestCrashSafety:
    def test_crash_between_write_and_rename_keeps_previous(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)  # generation 1 lands safely

        bigger = InvertedIndex.build(
            Corpus([Document("d9", "an entirely different corpus")])
        )
        FAULTS.arm("snapshot.rename", "error", times=1)
        with pytest.raises(InjectedFault):
            save_index(bigger, path)  # simulated kill -9 mid-save

        # The previous snapshot is untouched and loadable.
        recovered = load_index(path)
        _assert_same_index(index, recovered)
        # And a retry completes the interrupted save.
        save_index(bigger, path)
        assert load_index(path).document_count == 1

    def test_corrupted_bytes_on_disk_detected(self, index, tmp_path):
        path = tmp_path / "index.json"
        FAULTS.arm("snapshot.write", "corrupt", times=1)
        save_index(index, path)  # the bytes that reached disk are truncated
        with pytest.raises(SnapshotCorrupted):
            load_index(path, fallback=False)

    def test_fallback_to_backup_generation(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)  # generation 1
        second = InvertedIndex.build(Corpus([Document("solo", "one doc only")]))
        save_index(second, path)  # generation 2; generation 1 → .bak
        assert backup_path(path).exists()

        # Corrupt the primary: load falls back to the .bak generation.
        text = path.read_text()
        path.write_text(text[: len(text) // 3])
        recovered = load_index(path)
        _assert_same_index(index, recovered)

        # With fallback disabled the corruption surfaces.
        with pytest.raises(SnapshotCorrupted):
            load_index(path, fallback=False)

    def test_missing_primary_falls_back(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        save_index(index, path)  # create the .bak
        path.unlink()
        _assert_same_index(index, load_index(path))

    def test_missing_everything_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "absent.json")

    def test_index_load_fault_point(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        FAULTS.arm("index.load", "error", times=1)
        with pytest.raises(InjectedFault):
            load_index(path)
        _assert_same_index(index, load_index(path))  # next load is clean


class TestSystemSnapshots:
    def test_system_round_trip_through_envelope(self, tmp_path):
        system = SearchSystem()
        system.add_texts(
            [
                ("s1", "Lenovo partners with the NBA."),
                ("s2", "A völkisch café in 東京 serves naïve pastries."),
            ]
        )
        path = tmp_path / "system.json"
        system.save(path)
        envelope = json.loads(path.read_text())
        assert envelope["format"] == "repro-snapshot"
        assert envelope["kind"] == "system"
        loaded = SearchSystem.load(path)
        assert len(loaded) == 2
        assert loaded.corpus["s2"].text == system.corpus["s2"].text

    def test_system_crash_mid_save_keeps_previous(self, tmp_path):
        path = tmp_path / "system.json"
        system = SearchSystem()
        system.add_texts([("s1", "Lenovo partners with the NBA.")])
        system.save(path)
        system.add_texts([("s2", "Dell explored an alliance.")])
        FAULTS.arm("snapshot.rename", "error", times=1)
        with pytest.raises(InjectedFault):
            system.save(path)
        assert len(SearchSystem.load(path)) == 1  # previous generation intact

    def test_legacy_system_file_still_loads(self, tmp_path):
        payload = {
            "version": 1,
            "documents": [{"id": "s1", "text": "Lenovo partners with the NBA."}],
            "index": {
                "version": 1,
                "stem": True,
                "drop_stopwords": False,
                "doc_lengths": {"s1": 6},
                "postings": {"lenovo": {"s1": [0]}},
            },
        }
        path = tmp_path / "legacy-system.json"
        path.write_text(json.dumps(payload))
        loaded = SearchSystem.load(path)
        assert len(loaded) == 1

    def test_duplicate_documents_rejected(self, tmp_path):
        payload = {
            "version": 1,
            "documents": [
                {"id": "dup", "text": "once"},
                {"id": "dup", "text": "twice"},
            ],
            "index": {
                "version": 1,
                "stem": True,
                "drop_stopwords": False,
                "doc_lengths": {},
                "postings": {},
            },
        }
        path = tmp_path / "dup.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="duplicate"):
            SearchSystem.load(path)


class TestEnvelopeEdgeCases:
    def test_non_object_snapshot_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SnapshotCorrupted):
            read_snapshot(path, kind="index", versions=(1, 2))

    def test_envelope_without_payload_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(
            json.dumps({"format": "repro-snapshot", "kind": "index", "version": 2})
        )
        with pytest.raises(SnapshotCorrupted, match="payload"):
            read_snapshot(path, kind="index", versions=(1, 2))

    def test_version_mismatch_does_not_fall_back(self, index, tmp_path):
        # An intact-but-newer snapshot must error loudly, not silently
        # serve the stale .bak generation.
        path = tmp_path / "index.json"
        save_index(index, path)
        save_index(index, path)  # .bak exists and is valid
        envelope = json.loads(path.read_text())
        envelope["version"] = 99
        path.write_text(json.dumps(envelope))
        with pytest.raises(SerializationError, match="version"):
            load_index(path)
