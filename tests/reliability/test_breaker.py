"""Circuit-breaker state machine: closed → open → half-open → closed."""

import pytest

from repro.reliability.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0, clock=clock)


class TestStateMachine:
    def test_closed_allows_and_counts_failures(self, breaker):
        assert breaker.allow()
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.state == CircuitBreaker.CLOSED

    def test_opens_at_threshold(self, breaker):
        for _ in range(2):
            breaker.record_failure()
        assert breaker.record_failure() is True  # the opening transition
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.allow() is False

    def test_success_resets_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        for _ in range(2):
            assert breaker.record_failure() is False
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_after_reset_timeout(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.allow() is False
        clock.advance(10.0)
        assert breaker.allow() is True  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow() is False  # only one probe at a time

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.record_failure() is True  # re-opened
        assert breaker.allow() is False
        # and the timer restarted
        clock.advance(9.0)
        assert breaker.allow() is False
        clock.advance(1.0)
        assert breaker.allow() is True

    def test_abandoned_probe_grants_another(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.abandon_probe()  # attempt said nothing about the dependency
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow() is True


class TestIntrospection:
    def test_snapshot(self, breaker):
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["failures"] == 1
        assert snap["opened_count"] == 0
        for _ in range(2):
            breaker.record_failure()
        assert breaker.snapshot()["opened_count"] == 1

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=-1)
