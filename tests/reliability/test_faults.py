"""The fault-point registry: arming, modes, env spec, bookkeeping."""

import time

import pytest

from repro.reliability.faults import (
    FAULTS,
    FaultRegistry,
    FaultSpec,
    InjectedFault,
    TransientFault,
    WorkerCrash,
    configure_from_env,
)


@pytest.fixture
def registry():
    return FaultRegistry()


class TestArming:
    def test_unarmed_point_is_a_no_op(self, registry):
        assert registry.inject("nowhere") is None
        assert registry.inject("nowhere", 42) == 42

    def test_error_mode_raises(self, registry):
        registry.arm("p", "error")
        with pytest.raises(InjectedFault) as excinfo:
            registry.inject("p")
        assert excinfo.value.point == "p"

    def test_transient_and_crash_modes_raise_subtypes(self, registry):
        registry.arm("t", "transient")
        registry.arm("c", "crash")
        with pytest.raises(TransientFault):
            registry.inject("t")
        with pytest.raises(WorkerCrash):
            registry.inject("c")
        # Both are InjectedFault, so one except clause can cover chaos.
        assert issubclass(TransientFault, InjectedFault)
        assert issubclass(WorkerCrash, InjectedFault)

    def test_times_bounds_firing_and_auto_disarms(self, registry):
        registry.arm("p", "error", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                registry.inject("p")
        assert registry.inject("p") is None  # exhausted
        assert registry.armed() == {}  # fast path restored
        assert registry.fired("p") == 2

    def test_disarm_and_reset(self, registry):
        registry.arm("p", "error")
        assert registry.disarm("p") is True
        assert registry.disarm("p") is False
        assert registry.inject("p") is None
        registry.arm("q", "error")
        with pytest.raises(InjectedFault):
            registry.inject("q")
        registry.reset()
        assert registry.inject("q") is None
        assert registry.fired("q") == 0

    def test_arming_context_manager(self, registry):
        with registry.arming("p", "error"):
            with pytest.raises(InjectedFault):
                registry.inject("p")
        assert registry.inject("p") is None

    def test_probability_zero_never_fires(self, registry):
        registry.arm("p", "error", probability=0.0)
        for _ in range(50):
            assert registry.inject("p") is None
        assert registry.fired("p") == 0

    def test_custom_exception(self, registry):
        registry.arm("p", "error", exception=ConnectionResetError)
        with pytest.raises(ConnectionResetError):
            registry.inject("p")


class TestModes:
    def test_delay_mode_sleeps_then_continues(self, registry):
        registry.arm("p", "delay", delay_s=0.05)
        start = time.monotonic()
        assert registry.inject("p", "payload") == "payload"
        assert time.monotonic() - start >= 0.04

    def test_corrupt_mode_default_truncates(self, registry):
        registry.arm("p", "corrupt")
        assert registry.inject("p", "abcdef") == "abc"
        registry.arm("p", "corrupt")
        assert registry.inject("p", b"12345678") == b"1234"

    def test_corrupt_mode_custom_transform(self, registry):
        registry.arm("p", "corrupt", corrupt=lambda v: v[::-1])
        assert registry.inject("p", "abc") == "cba"

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(mode="explode")
        with pytest.raises(ValueError):
            FaultSpec(times=0)
        with pytest.raises(ValueError):
            FaultSpec(probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(delay_s=-1)


class TestEnvSpec:
    def test_load_spec_grammar(self, registry):
        armed = registry.load_spec("a.b:error:2, c.d:delay:0.01 ,e.f")
        assert armed == ["a.b", "c.d", "e.f"]
        assert registry.armed() == {"a.b": "error", "c.d": "delay", "e.f": "error"}
        with pytest.raises(InjectedFault):
            registry.inject("e.f")

    def test_bad_spec_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.load_spec("a:error:two")
        with pytest.raises(ValueError):
            registry.load_spec("a:b:c:d")

    def test_configure_from_env(self, registry, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert configure_from_env(registry=registry) == []
        monkeypatch.setenv("REPRO_FAULTS", "cache.get:transient:1")
        assert configure_from_env(registry=registry) == ["cache.get"]
        with pytest.raises(TransientFault):
            registry.inject("cache.get")


class TestDefaultRegistry:
    def test_module_level_registry_is_shared(self):
        FAULTS.arm("tests.shared", "error", times=1)
        with pytest.raises(InjectedFault):
            FAULTS.inject("tests.shared")
        assert FAULTS.fired("tests.shared") == 1
