"""Structured JSON logging: line shape, level filtering, sinks."""

import io
import json

import pytest

from repro.obs.log import LEVELS, MemorySink, StructuredLogger


def test_one_json_object_per_line():
    stream = io.StringIO()
    logger = StructuredLogger(stream, clock=lambda: 123.4567891)
    record = logger.info("request", trace_id="t1", latency_ms=4.2, outcome="ok")
    line = stream.getvalue()
    assert line.endswith("\n") and line.count("\n") == 1
    parsed = json.loads(line)
    assert parsed == record
    assert parsed["ts"] == 123.456789  # clock rounded to microseconds
    assert parsed["level"] == "info"
    assert parsed["event"] == "request"
    assert parsed["trace_id"] == "t1"
    assert parsed["outcome"] == "ok"


def test_level_filtering():
    sink = MemorySink()
    logger = StructuredLogger(min_level="warning")
    logger.add_sink(sink)
    assert logger.info("dropped") is None
    assert logger.warning("kept") is not None
    assert logger.error("also_kept") is not None
    assert [e["event"] for e in sink.events] == ["kept", "also_kept"]


def test_unknown_levels_rejected():
    with pytest.raises(ValueError):
        StructuredLogger(min_level="loud")
    logger = StructuredLogger(io.StringIO())
    with pytest.raises(ValueError):
        logger.log("x", level="loud")
    assert set(LEVELS) == {"debug", "info", "warning", "error"}


def test_disabled_logger_is_a_no_op():
    logger = StructuredLogger()  # no stream, no sinks
    assert not logger.enabled
    assert logger.info("request") is None


def test_non_jsonable_fields_are_clamped():
    class Opaque:
        def __repr__(self):
            return "<opaque>"

    sink = MemorySink()
    logger = StructuredLogger()
    logger.add_sink(sink)
    logger.info("request", thing=Opaque(), nested={"k": (1, Opaque())})
    event = sink.events[0]
    assert event["thing"] == "<opaque>"
    assert event["nested"] == {"k": [1, "<opaque>"]}
    json.dumps(event)


def test_dead_stream_never_fails_the_caller():
    stream = io.StringIO()
    stream.close()
    sink = MemorySink()
    logger = StructuredLogger(stream)
    logger.add_sink(sink)
    record = logger.info("request")  # write raises internally; swallowed
    assert record is not None
    assert sink.named("request") == [record]


def test_broken_sink_does_not_stop_delivery():
    good = MemorySink()
    logger = StructuredLogger()
    logger.add_sink(lambda event: (_ for _ in ()).throw(RuntimeError("boom")))
    logger.add_sink(good)
    logger.info("request")
    assert len(good.events) == 1
    logger.remove_sink(good)
    logger.info("request")
    assert len(good.events) == 1


def test_memory_sink_named_and_clear():
    sink = MemorySink()
    logger = StructuredLogger()
    logger.add_sink(sink)
    logger.info("a")
    logger.info("b")
    logger.info("a")
    assert len(sink.named("a")) == 2
    sink.clear()
    assert sink.events == []


def test_memory_sink_capacity_is_a_ring():
    sink = MemorySink(capacity=3)
    logger = StructuredLogger()
    logger.add_sink(sink)
    for i in range(5):
        logger.info("e", n=i)
    # Oldest events are dropped first; the newest `capacity` remain.
    assert [e["n"] for e in sink.events] == [2, 3, 4]


def test_memory_sink_default_is_unbounded():
    sink = MemorySink()
    logger = StructuredLogger()
    logger.add_sink(sink)
    for i in range(100):
        logger.info("e", n=i)
    assert len(sink.events) == 100


def test_memory_sink_rejects_bad_capacity():
    with pytest.raises(ValueError):
        MemorySink(capacity=0)
    with pytest.raises(ValueError):
        MemorySink(capacity=-1)
