"""Tracer/Trace/Span: span trees, cross-thread handoff, sampling."""

import threading

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACE,
    Tracer,
    current_trace,
    span,
    use_trace,
)


class TestSpanTree:
    def test_nested_spans_parent_correctly(self):
        tracer = Tracer()
        trace = tracer.trace("request", query="q")
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                pass
        trace.finish()
        assert outer.parent_id == trace.root.span_id
        assert inner.parent_id == outer.span_id
        assert [s.name for s in trace.spans] == ["request", "outer", "inner"]
        assert all(s.trace_id == trace.trace_id for s in trace.spans)

    def test_span_ids_are_trace_scoped_and_unique(self):
        trace = Tracer().trace("request")
        for _ in range(5):
            trace.begin("child").finish()
        ids = [s.span_id for s in trace.spans]
        assert len(set(ids)) == len(ids)
        assert all(i.startswith(trace.trace_id + ".") for i in ids)

    def test_durations_are_monotonic_and_nested(self):
        clock = iter(range(0, 1000, 10))
        tracer = Tracer(clock_ns=lambda: next(clock))
        trace = tracer.trace("request")  # root starts at t=0
        child = trace.begin("child")  # child starts at t=10
        child.finish(lambda: 40)  # explicit end stamp at t=40
        trace.finish()
        assert child.duration_ns == 30
        assert child.start_ns >= trace.root.start_ns

    def test_finish_is_idempotent_first_wins(self):
        trace = Tracer().trace("request")
        sp = trace.begin("child")
        sp.finish()
        first_end = sp.end_ns
        sp.finish()
        assert sp.end_ns == first_end
        trace.finish()
        trace.finish()  # second finish is a no-op

    def test_root_tags_via_finish(self):
        trace = Tracer().trace("request")
        trace.finish(outcome="ok")
        assert trace.root.tags["outcome"] == "ok"

    def test_to_dict_roundtrips_structure(self):
        trace = Tracer().trace("request", query="q")
        trace.begin("child", note="x").finish()
        trace.finish()
        payload = trace.to_dict()
        assert payload["trace_id"] == trace.trace_id
        assert [s["name"] for s in payload["spans"]] == ["request", "child"]
        assert payload["spans"][1]["tags"] == {"note": "x"}


class TestCrossThread:
    def test_begin_on_one_thread_finish_on_another(self):
        """The executor's queue-span pattern: begun at submit, finished
        by whichever worker picks the request up."""
        trace = Tracer().trace("request")
        queue_span = trace.begin("queue", parent=trace.root)

        def worker():
            queue_span.finish()
            inner = trace.begin("work", parent=queue_span)
            inner.finish()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        trace.finish()
        names = {s.name: s for s in trace.spans}
        assert names["queue"].finished
        assert names["work"].parent_id == names["queue"].span_id

    def test_per_thread_parent_stacks_do_not_interfere(self):
        """Two threads pushing different parents onto one trace must not
        corrupt each other's parenting."""
        trace = Tracer().trace("request")
        anchors = [trace.begin(f"anchor{i}") for i in range(2)]
        barrier = threading.Barrier(2)
        children = {}

        def worker(index):
            with use_trace(trace, parent=anchors[index]):
                barrier.wait()
                children[index] = trace.begin(f"child{index}")
                children[index].finish()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert children[0].parent_id == anchors[0].span_id
        assert children[1].parent_id == anchors[1].span_id

    def test_use_trace_activates_and_restores(self):
        trace = Tracer().trace("request")
        assert current_trace() is NULL_TRACE
        with use_trace(trace):
            assert current_trace() is trace
            with span("ambient") as sp:
                pass
        assert current_trace() is NULL_TRACE
        assert sp.name == "ambient"
        assert sp.parent_id == trace.root.span_id

    def test_ambient_span_without_trace_is_null(self):
        with span("nothing") as sp:
            assert sp is NULL_SPAN


class TestSampling:
    def test_sample_rate_zero_returns_null_trace(self):
        tracer = Tracer(sample_rate=0.0)
        trace = tracer.trace("request")
        assert trace is NULL_TRACE
        assert tracer.started == 1
        assert tracer.sampled_out == 1
        # Null trace absorbs everything without allocating.
        assert trace.begin("x") is NULL_SPAN
        with trace.span("y") as sp:
            assert sp is NULL_SPAN
        assert trace.finish() is NULL_TRACE

    def test_fractional_sampling_uses_rng(self):
        values = iter([0.2, 0.8, 0.2])
        tracer = Tracer(sample_rate=0.5, rng=lambda: next(values))
        kept = [tracer.trace("r") for _ in range(3)]
        assert kept[0] is not NULL_TRACE
        assert kept[1] is NULL_TRACE
        assert kept[2] is not NULL_TRACE
        assert tracer.sampled_out == 1

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestRingBufferAndSinks:
    def test_finished_traces_land_in_ring(self):
        tracer = Tracer(capacity=2)
        traces = [tracer.trace(f"r{i}").finish() for i in range(3)]
        ring = tracer.finished()
        assert len(ring) == 2
        assert ring == traces[1:]

    def test_drain_clears_the_ring(self):
        tracer = Tracer()
        tracer.trace("r").finish()
        assert len(tracer.drain()) == 1
        assert tracer.finished() == []

    def test_sinks_receive_finished_traces_and_may_break(self):
        tracer = Tracer()
        seen = []

        def bad_sink(trace):
            raise RuntimeError("broken sink")

        tracer.add_sink(bad_sink)
        tracer.add_sink(seen.append)
        trace = tracer.trace("r")
        trace.finish()  # the broken sink must not stop delivery
        assert seen == [trace]
        tracer.remove_sink(seen.append)
        tracer.trace("r2").finish()
        assert len(seen) == 1
