"""Profiling harness: path aggregation, self time, quantiles, rendering."""

import pytest

from repro.obs.profile import (
    ProfileReport,
    aggregate_traces,
    format_flame,
    profile_workload,
    quantile,
)
from repro.obs.trace import Tracer


def make_trace(tracer):
    """One deterministic request/batch/join trace.

    Clock stamps (ns): root starts at 0, batch at 10, join at 20;
    join ends at 60, batch at 80, root at 100.
    """
    trace = tracer.trace("request")
    batch = trace.begin("batch", parent=trace.root)
    join = trace.begin("join", parent=batch)
    join.finish(lambda: 60)
    batch.finish(lambda: 80)
    trace.finish()
    return trace


def deterministic_tracer():
    clock = iter([0, 10, 20, 100, 0, 10, 20, 100])
    return Tracer(clock_ns=lambda: next(clock))


class TestAggregateTraces:
    def test_paths_durations_and_self_time(self):
        report = aggregate_traces([make_trace(deterministic_tracer())])
        assert [s.path for s in report.stages] == [
            "request",
            "request/batch",
            "request/batch/join",
        ]
        root = report.stage("request")
        batch = report.stage("request/batch")
        join = report.stage("request/batch/join")
        assert root.total_ns == 100
        assert batch.total_ns == 70
        assert join.total_ns == 40
        # Self time = own duration minus direct children.
        assert root.self_ns == 100 - 70
        assert batch.self_ns == 70 - 40
        assert join.self_ns == 40
        assert report.traces == 1
        assert report.total_ns == 100

    def test_multiple_traces_accumulate(self):
        tracer = deterministic_tracer()
        report = aggregate_traces([make_trace(tracer), make_trace(tracer)])
        assert report.stage("request").count == 2
        assert report.stage("request/batch/join").total_ns == 80
        assert report.total_ns == 200

    def test_children_never_exceed_parent_in_this_tree(self):
        report = aggregate_traces([make_trace(deterministic_tracer())])
        assert report.stage("request/batch").total_ns <= report.stage(
            "request"
        ).total_ns

    def test_to_dict_shape(self):
        payload = aggregate_traces([make_trace(deterministic_tracer())]).to_dict()
        assert payload["traces"] == 1
        assert {s["path"] for s in payload["stages"]} == {
            "request",
            "request/batch",
            "request/batch/join",
        }
        assert all(
            {"count", "total_ms", "self_ms", "mean_ms", "p50_ms", "p95_ms"}
            <= set(s)
            for s in payload["stages"]
        )


class TestQuantile:
    def test_nearest_rank(self):
        samples = [5, 1, 4, 2, 3]
        assert quantile(samples, 0.0) == 1
        assert quantile(samples, 0.5) == 3
        assert quantile(samples, 1.0) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)


class TestFormatFlame:
    def test_renders_indented_tree(self):
        text = format_flame(aggregate_traces([make_trace(deterministic_tracer())]))
        lines = text.splitlines()
        assert lines[0].startswith("stage")
        assert any(l.startswith("request") for l in lines)
        assert any(l.startswith("  batch") for l in lines)  # depth-1 indent
        assert any(l.startswith("    join") for l in lines)
        assert "%" in text

    def test_empty_report(self):
        empty = ProfileReport(stages=[], traces=0, total_ns=0)
        assert "no traces" in format_flame(empty)


class TestProfileWorkload:
    @pytest.fixture(scope="class")
    def system(self):
        from repro.system import SearchSystem
        from repro.text.document import Document

        system = SearchSystem()
        system.add(
            Document("d1", "the sports partnership was announced today"),
            Document("d2", "a marketing partnership with the sports league"),
        )
        return system

    def test_traced_run_produces_stage_report(self, system):
        report, latencies = profile_workload(
            system, ["partnership, sports"], repeat=2
        )
        assert len(latencies) == 2
        assert report.traces == 2
        assert report.stage("request") is not None
        join = [s for s in report.stages if s.name == "join"]
        assert join and join[0].count == 2

    def test_untraced_baseline_has_no_report(self, system):
        report, latencies = profile_workload(
            system, ["partnership, sports"], repeat=1, sample_rate=None
        )
        assert report.traces == 0
        assert report.stages == []
        assert len(latencies) == 1
