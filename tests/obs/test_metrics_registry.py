"""Metrics registry: bucket placement, percentile estimates, thread safety."""

import math
import threading

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total", "Requests served.")
        c.inc()
        c.inc(4)
        assert c.value() == 5
        assert c.total() == 5

    def test_labels_are_independent_series(self):
        c = Counter("joins_total", "")
        c.inc(2, family="win")
        c.inc(3, family="max")
        assert c.value(family="win") == 2
        assert c.value(family="max") == 3
        assert c.total() == 5

    def test_counters_only_go_up(self):
        c = Counter("requests_total", "")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_unobserved_counter_still_exposes_a_sample(self):
        assert Counter("requests_total", "").samples() == ["requests_total 0"]


class TestGauge:
    def test_set_inc_value(self):
        g = Gauge("queue_depth", "")
        g.set(7)
        g.inc(-2)
        assert g.value() == 5


class TestHistogramBuckets:
    def test_value_equal_to_boundary_lands_in_that_bucket(self):
        """``le`` is an inclusive upper bound: observing exactly 1.0 must
        count toward the le="1" bucket, not the next one."""
        h = Histogram("lat", "", buckets=(1.0, 2.0))
        h.observe(1.0)
        samples = h.samples()
        assert 'lat_bucket{le="1"} 1' in samples
        assert 'lat_bucket{le="2"} 1' in samples
        assert 'lat_bucket{le="+Inf"} 1' in samples

    def test_value_just_past_boundary_lands_in_next_bucket(self):
        h = Histogram("lat", "", buckets=(1.0, 2.0))
        h.observe(1.0 + 1e-9)
        samples = h.samples()
        assert 'lat_bucket{le="1"} 0' in samples
        assert 'lat_bucket{le="2"} 1' in samples

    def test_overflow_goes_to_implicit_inf_bucket(self):
        h = Histogram("lat", "", buckets=(1.0, 2.0))
        h.observe(99.0)
        samples = h.samples()
        assert 'lat_bucket{le="2"} 0' in samples
        assert 'lat_bucket{le="+Inf"} 1' in samples
        assert h.count() == 1
        assert h.sum() == 99.0

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram("lat", "", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", "", buckets=(1.0, 1.0))  # not strictly increasing
        with pytest.raises(ValueError):
            Histogram("lat", "", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", "", buckets=(1.0, math.inf))  # +Inf is implicit

    def test_metric_name_validation(self):
        with pytest.raises(ValueError):
            Counter("bad name", "")
        with pytest.raises(ValueError):
            Counter("1leading_digit", "")
        Counter("ok_name:with_colon", "")  # colons are legal in Prometheus


class TestHistogramPercentiles:
    def test_uniform_distribution_interpolates_exactly(self):
        """100 uniform samples over (0, 1] against quartile boundaries:
        the interpolated estimates must hit the true quantiles."""
        h = Histogram("lat", "", buckets=(0.25, 0.5, 0.75, 1.0))
        for i in range(1, 101):
            h.observe(i / 100)
        assert h.percentile(0.50) == pytest.approx(0.5)
        assert h.percentile(0.95) == pytest.approx(0.95)
        assert h.percentile(1.0) == pytest.approx(1.0)
        assert h.count() == 100
        assert h.sum() == pytest.approx(50.5)

    def test_point_mass_lands_inside_owning_bucket(self):
        h = Histogram("lat", "", buckets=(1.0, 2.0, 4.0))
        for _ in range(10):
            h.observe(1.5)  # all mass in the (1, 2] bucket
        p50 = h.percentile(0.50)
        assert 1.0 < p50 <= 2.0

    def test_overflow_reports_largest_finite_boundary(self):
        h = Histogram("lat", "", buckets=(1.0, 2.0))
        h.observe(50.0)
        h.observe(60.0)
        assert h.percentile(0.5) == 2.0

    def test_empty_histogram_has_no_percentile(self):
        h = Histogram("lat", "")
        assert h.percentile(0.5) is None
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_snapshot_shape(self):
        h = Histogram("lat", "", buckets=(1.0, 2.0))
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == 0.5
        assert set(snap) == {"count", "sum", "p50", "p95", "p99"}

    def test_labelled_series_are_independent(self):
        h = Histogram("join", "", buckets=(1.0, 2.0))
        h.observe(0.5, family="win")
        h.observe(1.5, family="max")
        assert h.count(family="win") == 1
        assert h.count(family="max") == 1
        assert h.count() == 0
        assert h.label_sets() == [{"family": "max"}, {"family": "win"}]


class TestThreadSafety:
    def test_concurrent_observes_lose_nothing(self):
        h = Histogram("lat", "", buckets=LATENCY_BUCKETS)
        c = Counter("n", "")
        threads, per_thread = 8, 2000

        def hammer():
            for _ in range(per_thread):
                h.observe(0.5)
                c.inc()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert h.count() == threads * per_thread
        assert h.sum() == threads * per_thread * 0.5  # 0.5 sums exactly
        assert c.total() == threads * per_thread


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", "Requests.")
        b = reg.counter("requests_total")
        assert a is b
        assert reg.get("requests_total") is a

    def test_kind_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x", "")
        with pytest.raises(ValueError):
            reg.histogram("x", "")

    def test_render_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "Requests served.").inc(3)
        reg.gauge("queue_depth").set(2)
        reg.histogram("lat", "Latency.", buckets=(1.0,)).observe(0.5)
        text = reg.render_prometheus()
        lines = text.splitlines()
        assert text.endswith("\n")
        assert "# HELP requests_total Requests served." in lines
        assert "# TYPE requests_total counter" in lines
        assert "requests_total 3" in lines
        # No help text -> no HELP line, but TYPE is always present.
        assert not any(l.startswith("# HELP queue_depth") for l in lines)
        assert "# TYPE queue_depth gauge" in lines
        assert "# TYPE lat histogram" in lines
        assert 'lat_bucket{le="1"} 1' in lines
        assert 'lat_bucket{le="+Inf"} 1' in lines
        assert "lat_sum 0.5" in lines
        assert "lat_count 1" in lines
        # Families come out name-sorted.
        assert lines.index("# TYPE lat histogram") < lines.index(
            "# TYPE queue_depth gauge"
        )

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("errors_total").inc(1, kind='bad"quote\nnewline\\slash')
        text = reg.render_prometheus()
        assert 'kind="bad\\"quote\\nnewline\\\\slash"' in text

    def test_snapshot_is_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("requests_total").inc(2)
        reg.gauge("depth").set(1)
        h = reg.histogram("join", buckets=(1.0, 2.0))
        h.observe(0.5, family="win")
        snap = reg.snapshot()
        assert snap["requests_total"] == 2
        assert snap["depth"] == 1
        assert snap["join"]["family=win"]["count"] == 1
        json.dumps(snap)  # must serialize cleanly
