"""Cross-process span-tree wire format: round-trip fidelity + grafting.

The cluster ships each shard worker's span subtree back to the
coordinator as a ``Trace.to_wire`` payload; the coordinator grafts it
under its own ``shard`` span.  These tests pin the wire contract
(lossless round-trip, version rejection) and the grafting rules
documented in docs/OBSERVABILITY.md (id namespacing, re-parenting,
timestamp rebasing, truncation tagging, lazy materialization, and
malformed-payload tolerance).
"""

import itertools
import random

import pytest

from repro.obs.trace import WIRE_VERSION, Span, Trace


def span_fields(span):
    return (
        span.span_id,
        span.parent_id,
        span.name,
        span.start_ns,
        span.end_ns,
        span.tags,
    )


def make_clock(start=1_000, step=10):
    counter = itertools.count(start, step)
    return lambda: next(counter)


def build_random_trace(seed):
    """A seeded-random span tree: varied depth, fan-out, tags, clocks."""
    rng = random.Random(seed)
    clock = make_clock(rng.randrange(10**6), rng.randrange(1, 50))
    trace = Trace("request", f"t{seed:04x}", clock_ns=clock, tags={"seed": seed})
    open_spans = [trace.root]
    for i in range(rng.randrange(2, 12)):
        parent = rng.choice(open_spans)
        tags = {"i": i} if rng.random() < 0.5 else {}
        child = trace.begin(f"stage{i % 4}", parent=parent, **tags)
        if rng.random() < 0.8:
            child.finish(clock)
        else:
            open_spans.append(child)  # left unfinished on purpose
    trace.root.finish(clock)
    return trace


class TestWireRoundTrip:
    def test_round_trip_preserves_every_span_field(self):
        clock = make_clock()
        trace = Trace("request", "t0001", clock_ns=clock, tags={"query": "a, b"})
        child = trace.begin("rank", parent=trace.root, scoring="win")
        grandchild = trace.begin("join", parent=child)
        grandchild.finish(clock)
        child.finish(clock)
        trace.root.finish(clock)

        restored = Trace.from_wire(trace.to_wire())
        assert restored.trace_id == trace.trace_id
        assert restored.root.name == "request"
        assert [span_fields(s) for s in restored.spans] == [
            span_fields(s) for s in trace.spans
        ]
        assert all(s.trace_id == trace.trace_id for s in restored.spans)

    def test_unfinished_span_survives_round_trip(self):
        # end_ns=None must come back as None (a truncated span), not be
        # confused with a zero-duration span.
        trace = Trace("request", "t0002", clock_ns=make_clock())
        trace.begin("interrupted", parent=trace.root)
        restored = Trace.from_wire(trace.to_wire())
        interrupted = restored.find("interrupted")[0]
        assert interrupted.end_ns is None
        assert not interrupted.finished

    def test_random_trees_round_trip_losslessly(self):
        for seed in range(20):
            trace = build_random_trace(seed)
            restored = Trace.from_wire(trace.to_wire())
            assert [span_fields(s) for s in restored.spans] == [
                span_fields(s) for s in trace.spans
            ], f"seed {seed}"

    def test_double_round_trip_is_a_fixed_point(self):
        for seed in range(5):
            wire = build_random_trace(seed).to_wire()
            assert Trace.from_wire(wire).to_wire() == wire

    def test_restored_trace_supports_the_reading_api(self):
        trace = build_random_trace(7)
        restored = Trace.from_wire(trace.to_wire())
        assert restored.to_dict()["trace_id"] == trace.trace_id
        assert len(restored.find("stage0")) == len(trace.find("stage0"))

    def test_wrong_version_rejected(self):
        wire = build_random_trace(1).to_wire()
        wire["version"] = WIRE_VERSION + 1
        with pytest.raises(ValueError, match="wire version"):
            Trace.from_wire(wire)
        with pytest.raises(ValueError, match="wire version"):
            Trace.from_wire({"trace_id": "t", "spans": []})

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError, match="no spans"):
            Trace.from_wire(
                {"version": WIRE_VERSION, "trace_id": "t", "spans": []}
            )


def build_remote_trace():
    """The shard-worker side: a small finished subtree at its own clock."""
    clock = make_clock(start=500_000, step=100)
    remote = Trace("shard.execute", "w0001", clock_ns=clock, tags={"shard": 1})
    child = remote.begin("ask", parent=remote.root)
    child.finish(clock)
    remote.root.finish(clock)
    return remote


class TestGraft:
    def build_local(self):
        clock = make_clock(start=9_000_000, step=100)
        local = Trace("request", "t0009", clock_ns=clock)
        shard_span = local.begin("shard", parent=local.root, shard=1)
        return local, shard_span, clock

    def test_grafted_ids_are_namespaced_under_the_anchor(self):
        local, shard_span, _ = self.build_local()
        local.graft(build_remote_trace().to_wire(), under=shard_span)
        grafted = [s for s in local.spans if ":" in s.span_id]
        assert grafted, "graft produced no spans"
        assert all(
            s.span_id.startswith(shard_span.span_id + ":") for s in grafted
        )
        assert all(s.trace_id == local.trace_id for s in grafted)

    def test_remote_root_is_reparented_onto_the_anchor(self):
        local, shard_span, _ = self.build_local()
        local.graft(build_remote_trace().to_wire(), under=shard_span)
        execute = local.find("shard.execute")[0]
        assert execute.parent_id == shard_span.span_id
        # The remote root's child keeps its (namespaced) remote parent.
        ask = local.find("ask")[0]
        assert ask.parent_id == execute.span_id

    def test_timestamps_rebase_to_the_anchor_preserving_durations(self):
        # The remote clock (500ms epoch) is process-local and meaningless
        # here; the subtree must start when the shard span started, with
        # every remote duration intact.
        local, shard_span, _ = self.build_local()
        remote = build_remote_trace()
        local.graft(remote.to_wire(), under=shard_span)
        execute = local.find("shard.execute")[0]
        assert execute.start_ns == shard_span.start_ns
        assert execute.duration_ns == remote.root.duration_ns
        ask_remote = remote.find("ask")[0]
        ask_local = local.find("ask")[0]
        assert ask_local.duration_ns == ask_remote.duration_ns
        assert (
            ask_local.start_ns - execute.start_ns
            == ask_remote.start_ns - remote.root.start_ns
        )

    def test_unfinished_remote_span_is_closed_and_tagged_truncated(self):
        local, shard_span, _ = self.build_local()
        remote = build_remote_trace()
        remote.begin("cut.off", parent=remote.root)  # never finished
        local.graft(remote.to_wire(), under=shard_span)
        cut = local.find("cut.off")[0]
        assert cut.finished
        assert cut.duration_ns == 0
        assert cut.tags["truncated"] is True

    def test_graft_is_lazy_until_the_trace_is_read(self):
        local, shard_span, _ = self.build_local()
        local.graft(build_remote_trace().to_wire(), under=shard_span)
        # Enqueued, not yet materialized: the graft runs on the reply
        # I/O thread, so it must not pay tree-building there.
        assert local._pending_grafts
        assert local.find("shard.execute")  # first read materializes
        assert not local._pending_grafts

    def test_two_shards_graft_without_id_collisions(self):
        local, shard_a, _ = self.build_local()
        shard_b = local.begin("shard", parent=local.root, shard=2)
        local.graft(build_remote_trace().to_wire(), under=shard_a)
        local.graft(build_remote_trace().to_wire(), under=shard_b)
        ids = [s.span_id for s in local.spans]
        assert len(ids) == len(set(ids))
        assert len(local.find("shard.execute")) == 2

    def test_wrong_version_graft_raises_eagerly(self):
        local, shard_span, _ = self.build_local()
        wire = build_remote_trace().to_wire()
        wire["version"] = WIRE_VERSION + 1
        with pytest.raises(ValueError, match="wire version"):
            local.graft(wire, under=shard_span)

    def test_empty_payload_graft_is_a_no_op(self):
        local, shard_span, _ = self.build_local()
        local.graft(
            {"version": WIRE_VERSION, "trace_id": "w", "spans": []},
            under=shard_span,
        )
        assert local.find("shard.execute") == []

    def test_malformed_payload_is_skipped_not_raised_at_read_time(self):
        # A payload that passes the eager version check but is broken
        # inside must not explode when the trace is later read — the
        # shard span simply keeps no subtree.
        local, shard_span, _ = self.build_local()
        broken = {
            "version": WIRE_VERSION,
            "trace_id": "w0001",
            "spans": [{"name": "no-span-id", "start_ns": "not-a-number"}],
        }
        local.graft(broken, under=shard_span)
        good = build_remote_trace().to_wire()
        local.graft(good, under=shard_span)
        names = {s.name for s in local.spans}
        assert "no-span-id" not in names
        assert "shard.execute" in names  # the good graft still lands
