"""The SearchSystem façade."""

import pytest

from repro.system import SearchSystem
from repro.text.document import Document

NEWS = [
    ("news-1", "Lenovo announced a marketing partnership with the NBA."),
    ("news-2", "Dell explored an alliance with the Olympic Games organizers."),
    ("news-3", "A bakery opened downtown; nothing about computers here."),
    ("cfp-1", "CALL FOR PAPERS: the workshop will be held in Pisa, Italy on June 24, 2008."),
]


@pytest.fixture
def system():
    s = SearchSystem()
    s.add_texts(NEWS)
    return s


class TestCorpusManagement:
    def test_add_and_len(self, system):
        assert len(system) == 4

    def test_duplicate_ids_rejected(self, system):
        with pytest.raises(ValueError):
            system.add(Document("news-1", "again"))


class TestAsk:
    def test_offline_path_for_semantic_queries(self, system):
        query, matcher = system._plan('"pc maker", sports, partnership')
        assert matcher is None  # all-semantic → index-derived lists
        ranked = system.ask('"pc maker", sports, partnership')
        assert ranked
        assert ranked[0].doc_id == "news-1"

    def test_online_path_for_special_matchers(self, system):
        query, matcher = system._plan("conference|workshop, when:date, where:place")
        assert matcher is not None  # dates/places need the online matchers
        ranked = system.ask("conference|workshop, when:date, where:place")
        assert ranked
        assert ranked[0].doc_id == "cfp-1"

    def test_offline_and_online_agree_on_semantic_queries(self, system):
        """Both match-list derivations feed the same join; on a semantic
        query they must produce the same ranking."""
        from repro.core.query import Query
        from repro.matching.pipeline import QueryMatcher
        from repro.retrieval.ranking import rank_documents

        offline = system.ask('"pc maker", sports, partnership', top_k=10)
        query = Query.of("pc maker", "sports", "partnership")
        online = rank_documents(system.corpus, query, system.scoring)
        assert [(r.doc_id, pytest.approx(r.score)) for r in offline] == [
            (r.doc_id, pytest.approx(r.score)) for r in online
        ]

    def test_top_k_limits(self, system):
        assert len(system.ask("partnership, sports", top_k=1)) <= 1

    def test_no_results_for_unmatchable_query(self, system):
        assert system.ask("quantum:exact, chromodynamics:exact") == []


class TestIndexGeneration:
    def test_fresh_system_starts_at_zero(self):
        assert SearchSystem().index_generation == 0

    def test_add_increments(self, system):
        before = system.index_generation
        system.add(Document("gen-1", "one more document"))
        assert system.index_generation == before + 1

    def test_empty_add_does_not_increment(self, system):
        before = system.index_generation
        system.add()
        assert system.index_generation == before

    def test_remove_increments(self, system):
        before = system.index_generation
        system.remove("news-3")
        assert system.index_generation == before + 1

    def test_load_yields_nonzero_generation(self, system, tmp_path):
        path = tmp_path / "system.json"
        system.save(path)
        assert SearchSystem.load(path).index_generation > 0


class TestAskMany:
    QUERIES = [
        '"pc maker", sports, partnership',
        "partnership, sports",
        "conference|workshop, when:date, where:place",
        "partnership, sports",  # repeated: exercises the shared memo
    ]

    def test_identical_to_serial_ask(self, system):
        batched = system.ask_many(self.QUERIES, top_k=10)
        for query, ranked in zip(self.QUERIES, batched):
            serial = system.ask(query, top_k=10)
            assert [(r.doc_id, r.score) for r in ranked] == [
                (r.doc_id, r.score) for r in serial
            ]

    def test_empty_batch(self, system):
        assert system.ask_many([]) == []

    def test_shared_memo_materializes_each_term_list_once(self, system, monkeypatch):
        calls: list[tuple[str, str]] = []
        original = type(system._concepts).match_list

        def counting(self_, concept, doc_id):
            calls.append((concept, doc_id))
            return original(self_, concept, doc_id)

        monkeypatch.setattr(type(system._concepts), "match_list", counting)
        system.ask_many(["partnership, sports", "sports, partnership"])
        assert calls, "offline path did not run"
        assert len(calls) == len(set(calls)), "a (term, doc) list was rebuilt"


class TestExtract:
    def test_extraction_fields(self, system):
        results = system.extract("conference|workshop, when:date, where:place")
        assert results
        record = results[0].as_dict()
        assert record["where"] in {"pisa", "italy"}
        assert record["when"] in {"june", "2008", "24"}

    def test_min_score_filter(self, system):
        everything = system.extract("partnership, sports")
        assert everything
        nothing = system.extract("partnership, sports", min_score=1e9)
        assert nothing == []


class TestPersistence:
    def test_save_and_load_round_trip(self, system, tmp_path):
        path = tmp_path / "system.json"
        system.save(path)
        loaded = SearchSystem.load(path)
        assert len(loaded) == len(system)
        a = system.ask('"pc maker", sports, partnership')
        b = loaded.ask('"pc maker", sports, partnership')
        assert [(r.doc_id, r.score) for r in a] == [(r.doc_id, r.score) for r in b]

    def test_loaded_system_accepts_new_documents(self, system, tmp_path):
        path = tmp_path / "system.json"
        system.save(path)
        loaded = SearchSystem.load(path)
        loaded.add(Document("new-1", "Acer struck a partnership with a tennis league."))
        ranked = loaded.ask("partnership, sports", top_k=10)
        assert any(r.doc_id == "new-1" for r in ranked)


class TestRemoval:
    def test_removed_document_disappears_from_results(self, system):
        assert system.ask("partnership, sports")[0].doc_id == "news-1"
        system.remove("news-1")
        assert len(system) == 3
        ranked = system.ask("partnership, sports", top_k=10)
        assert all(r.doc_id != "news-1" for r in ranked)

    def test_remove_unknown_raises(self, system):
        with pytest.raises(KeyError):
            system.remove("nope")

    def test_index_vocabulary_shrinks(self, system):
        before = system.index.vocabulary_size
        system.remove("cfp-1")
        assert system.index.vocabulary_size < before
        assert system.index.positions("pisa", "cfp-1") == ()


class TestExplain:
    """The EXPLAIN report: stable schema, real pruning counters.

    The schema (version ``EXPLAIN_VERSION``, documented in
    docs/OBSERVABILITY.md) is a public contract — consumers parse it —
    so these tests pin the exact key sets, not just a sample of them.
    Growing the schema means bumping the version and updating the docs
    and this test together.
    """

    # A corpus skewed so DAAT's pivot bound prunes most documents: the
    # query terms concentrate in the first few docs while the tail is
    # filler-heavy, making the top-3 threshold unreachable for it.
    PRUNING_CORPUS = [
        (
            f"d{i}",
            ("alpha beta " * (i % 5 + 1))
            + f"gamma delta doc {i} "
            + ("filler words here " * i),
        )
        for i in range(40)
    ]

    @pytest.fixture
    def pruning_system(self):
        s = SearchSystem()
        s.add_texts(self.PRUNING_CORPUS)
        return s

    def test_explain_returns_ranking_plus_report(self, pruning_system):
        plain = pruning_system.ask("alpha beta", top_k=3)
        ranked, report = pruning_system.ask("alpha beta", top_k=3, explain=True)
        assert list(ranked) == list(plain)  # explain never changes answers
        assert isinstance(report, dict)

    def test_schema_is_stable(self, pruning_system):
        from repro.system import EXPLAIN_VERSION

        _, report = pruning_system.ask("alpha beta", top_k=3, explain=True)
        assert report["version"] == EXPLAIN_VERSION == 1
        assert set(report) == {
            "version", "query", "generation", "plan", "terms", "daat",
            "index", "provenance", "stages",
        }
        assert set(report["plan"]) == {
            "path", "ranking", "scoring", "top_k", "avoid_duplicates",
            "n_terms", "pair_index",
        }
        assert set(report["daat"]) == {
            "documents_scanned", "documents_pivot_skipped",
            "pair_index_hits", "pair_bound_tightenings", "joins_run",
            "joins_skipped", "bound_skip_rate", "join_micros",
            "dedup_invocations",
        }
        assert set(report["index"]) == {
            "durable", "segments", "memtable_docs", "tombstones",
        }
        assert set(report["provenance"]) == {"result_cache", "memo_shared"}
        for row in report["terms"]:
            assert set(row) == {
                "term", "df", "postings_len", "impact_ceiling", "best_score",
            }

    def test_daat_pruning_counters_are_nonzero(self, pruning_system):
        _, report = pruning_system.ask("alpha beta", top_k=3, explain=True)
        assert report["plan"]["ranking"] == "daat"
        assert report["plan"]["path"] == "offline"
        daat = report["daat"]
        assert daat["documents_scanned"] > 0
        # The filler-heavy tail falls under the pivot bound: most of the
        # 40 documents are skipped without being joined.
        assert daat["documents_pivot_skipped"] > len(self.PRUNING_CORPUS) // 2
        assert daat["joins_run"] > 0

    def test_stage_timings_cover_the_serving_stages(self, pruning_system):
        _, report = pruning_system.ask("alpha beta", top_k=3, explain=True)
        stage_names = [row["stage"] for row in report["stages"]]
        assert "ask" in stage_names
        assert "plan" in stage_names
        assert "rank" in stage_names
        assert all(row["micros"] >= 0 for row in report["stages"])

    def test_plan_and_provenance_defaults(self, pruning_system):
        _, report = pruning_system.ask("alpha beta", top_k=3, explain=True)
        assert report["query"] == "alpha beta"
        assert report["generation"] == pruning_system.index_generation
        assert report["plan"]["top_k"] == 3
        assert report["plan"]["n_terms"] == 1  # "alpha beta" is one phrase
        assert report["index"]["durable"] is False
        # No serving layer in front of this run: cache provenance says so.
        assert report["provenance"] == {
            "result_cache": "none", "memo_shared": False,
        }

    def test_online_path_reports_scan(self, system):
        _, report = system.ask(
            "conference|workshop, when:date", top_k=3, explain=True
        )
        assert report["plan"]["path"] == "online"
        assert report["plan"]["ranking"] == "scan"
        assert report["terms"] == []  # postings stats are offline-only
