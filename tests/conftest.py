"""Shared fixtures and hypothesis strategies for the test suite.

The central strategy is :func:`join_instances`: a random query plus one
non-empty match list per term, with location ranges tight enough that
equal-location ties (the hard case for MED and for duplicate handling)
occur regularly.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core.match import Match, MatchList
from repro.core.query import Query
from repro.core.scoring.maxloc import AdditiveExponentialMax, ExponentialProductMax
from repro.core.scoring.med import AdditiveMed, ExponentialProductMed
from repro.core.scoring.win import ExponentialProductWin, LinearAdditiveWin

# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

def matches(max_location: int = 30) -> st.SearchStrategy[Match]:
    return st.builds(
        Match,
        location=st.integers(min_value=0, max_value=max_location),
        score=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    )


def match_lists(max_len: int = 6, max_location: int = 30) -> st.SearchStrategy[MatchList]:
    return st.lists(matches(max_location), min_size=1, max_size=max_len).map(MatchList)


@st.composite
def join_instances(
    draw,
    min_terms: int = 1,
    max_terms: int = 4,
    max_len: int = 6,
    max_location: int = 30,
) -> tuple[Query, list[MatchList]]:
    """A random (query, match lists) problem instance."""
    n = draw(st.integers(min_value=min_terms, max_value=max_terms))
    query = Query.of(*(f"t{i}" for i in range(n)))
    lists = [draw(match_lists(max_len, max_location)) for _ in range(n)]
    return query, lists


def win_scorings() -> st.SearchStrategy:
    return st.one_of(
        st.builds(LinearAdditiveWin, scale=st.floats(0.1, 1.0)),
        st.builds(ExponentialProductWin, alpha=st.floats(0.01, 0.5)),
    )


def med_scorings() -> st.SearchStrategy:
    return st.one_of(
        st.builds(AdditiveMed, scale=st.floats(0.1, 1.0)),
        st.builds(ExponentialProductMed, alpha=st.floats(0.01, 0.5)),
    )


def max_scorings() -> st.SearchStrategy:
    return st.one_of(
        st.builds(AdditiveExponentialMax, alpha=st.floats(0.01, 0.5)),
        st.builds(ExponentialProductMax, alpha=st.floats(0.01, 0.5)),
    )


# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def three_term_query() -> Query:
    return Query.of("pc maker", "sports", "partnership")


@pytest.fixture
def figure1_lists(three_term_query: Query) -> list[MatchList]:
    """Match lists loosely following the paper's Figure 1 example.

    Locations/scores model the underlined matches of the sample document:
    deal(1, 0.5), Lenovo(4, 1.0), PC(10, 0.3), partner(12, 0.9),
    NBA(15, 0.9), NBA(22, 0.9), laptop maker(31, 0.7),
    partnership(39, 1.0), Olympic Games(42, 0.8),
    Winter Olympics(51, 0.7), Summer Olympics(63, 0.7),
    Lenovo(72, 1.0), Dell(80, 1.0), Hewlett-Packard(83, 1.0).
    """
    pc_maker = MatchList.from_pairs(
        [(4, 1.0), (10, 0.3), (31, 0.7), (72, 1.0), (80, 1.0), (83, 1.0)],
        term="pc maker",
    )
    sports = MatchList.from_pairs(
        [(15, 0.9), (22, 0.9), (42, 0.8), (51, 0.7), (63, 0.7)], term="sports"
    )
    partnership = MatchList.from_pairs(
        [(1, 0.5), (12, 0.9), (39, 1.0)], term="partnership"
    )
    return [pc_maker, sports, partnership]


def assert_scores_equal(a: float, b: float, *, rel: float = 1e-9) -> None:
    assert abs(a - b) <= rel * max(1.0, abs(a), abs(b)), f"{a} != {b}"
