"""The repro-search CLI."""

import pytest

from repro.cli import main


@pytest.fixture
def news_file(tmp_path):
    path = tmp_path / "news.txt"
    path.write_text(
        "As part of the new deal, Lenovo will become the official PC "
        "partner of the NBA. The laptop maker has a similar partnership "
        "with the Olympic Games."
    )
    return str(path)


@pytest.fixture
def cfp_file(tmp_path):
    path = tmp_path / "cfp.txt"
    path.write_text(
        "CALL FOR PAPERS. The workshop will be held in Pisa, Italy on "
        "June 24-26, 2008, at the local university."
    )
    return str(path)


class TestAsk:
    def test_finds_answer(self, news_file, capsys):
        rc = main(["ask", '"pc maker", sports, partnership', news_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "news.txt" in out
        assert "sports=" in out

    def test_scoring_flag(self, news_file, capsys):
        rc = main(["ask", "--scoring", "win", '"pc maker", sports', news_file])
        assert rc == 0
        assert "score=" in capsys.readouterr().out

    def test_no_match_returns_nonzero(self, news_file, capsys):
        rc = main(["ask", "quantum:exact, chromodynamics:exact", news_file])
        assert rc == 1
        assert "no document" in capsys.readouterr().out

    def test_bad_query_exits(self, news_file):
        with pytest.raises(SystemExit):
            main(["ask", '"unterminated', news_file])

    def test_missing_file_exits(self):
        with pytest.raises(SystemExit):
            main(["ask", "a, b", "/nonexistent/file.txt"])


class TestExtract:
    def test_extracts_fields(self, cfp_file, capsys):
        rc = main(
            ["extract", "conference|workshop, when:date, where:place", cfp_file]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "when=" in out and "where=" in out

    def test_min_score_filter_can_empty_results(self, cfp_file, capsys):
        rc = main(
            [
                "extract",
                "--min-score",
                "1e9",
                "conference|workshop, when:date, where:place",
                cfp_file,
            ]
        )
        assert rc == 1
        assert "no matchsets" in capsys.readouterr().out

    def test_top_limits_per_document(self, cfp_file, capsys):
        rc = main(
            [
                "extract",
                "--top",
                "1",
                "--gap",
                "1",
                "conference|workshop, when:date, where:place",
                cfp_file,
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("cfp.txt@") == 1


class TestFusedAsk:
    def test_scoring_all_fuses_rankings(self, news_file, capsys):
        rc = main(["ask", "--scoring", "all", '"pc maker", sports', news_file])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fused ranking" in out
        assert "per-family ranks" in out

    def test_extract_rejects_scoring_all(self, cfp_file):
        with pytest.raises(SystemExit):
            main(["extract", "--scoring", "all", "a, b", cfp_file])


class TestServe:
    def test_rejects_zero_shards(self, news_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", news_file, "--shards", "0"])
        assert "--shards must be >= 1" in str(excinfo.value.code)

    def test_rejects_negative_shards(self, news_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", news_file, "--shards", "-2"])
        assert "--shards must be >= 1" in str(excinfo.value.code)

    def test_rejects_no_files_and_no_data_dir(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve"])
        assert "files to serve" in str(excinfo.value.code)

    def test_rejects_data_dir_with_shards(self, news_file, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "serve",
                    news_file,
                    "--data-dir",
                    str(tmp_path / "index"),
                    "--shards",
                    "2",
                ]
            )
        assert "incompatible with --shards" in str(excinfo.value.code)
