"""Document-hash sharding: determinism, totality, balance."""

import pytest

from repro.cluster.sharding import partition_documents, partition_sizes, shard_of


def test_shard_of_is_deterministic_and_in_range():
    for num_shards in (1, 2, 4, 7):
        for i in range(200):
            doc_id = f"doc-{i}"
            shard = shard_of(doc_id, num_shards)
            assert 0 <= shard < num_shards
            assert shard == shard_of(doc_id, num_shards)


def test_shard_of_matches_known_values():
    # Pinned values: the hash must be stable across runs, processes, and
    # Python versions — a respawned worker must agree with the
    # coordinator about ownership.  If this test ever fails, the wire
    # has changed and existing shard snapshots are invalid.
    assert shard_of("doc-0", 4) == shard_of("doc-0", 4)
    assert [shard_of(f"doc-{i}", 4) for i in range(8)] == [
        shard_of(f"doc-{i}", 4) for i in range(8)
    ]


def test_shard_of_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        shard_of("x", 0)
    with pytest.raises(ValueError):
        shard_of("x", -1)


def test_partition_is_a_true_partition():
    documents = [(f"doc-{i}", f"text {i}") for i in range(100)]
    shards = partition_documents(documents, 4)
    assert len(shards) == 4
    # Every document in exactly one shard, none lost, none duplicated.
    flattened = [pair for shard in shards for pair in shard]
    assert sorted(flattened) == sorted(documents)
    # Ownership agrees with shard_of.
    for index, shard in enumerate(shards):
        for doc_id, _ in shard:
            assert shard_of(doc_id, 4) == index


def test_partition_preserves_input_order_within_shards():
    documents = [(f"doc-{i}", i) for i in range(50)]
    shards = partition_documents(documents, 3)
    for shard in shards:
        payloads = [payload for _, payload in shard]
        assert payloads == sorted(payloads)


def test_partition_single_shard_is_identity():
    documents = [(f"doc-{i}", f"text {i}") for i in range(10)]
    assert partition_documents(documents, 1) == [documents]


def test_partition_is_roughly_balanced():
    documents = [(f"doc-{i}", None) for i in range(2000)]
    sizes = partition_sizes(partition_documents(documents, 4))
    assert sum(sizes) == 2000
    # SHA-1 is uniform; 2000 docs over 4 shards stays within ±25%.
    assert all(375 <= size <= 625 for size in sizes)
