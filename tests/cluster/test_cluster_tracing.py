"""Cross-process tracing: one request, one merged span tree.

The acceptance criterion for the distributed-tracing work: a traced
request against a 2-shard cluster must produce a SINGLE span tree on
the coordinator's tracer, with each shard worker's ``shard.execute``
subtree grafted under the coordinator's per-shard ``shard`` span —
namespaced ids, rebased clocks, worker stage spans intact.
"""

import json
import urllib.request

import pytest

from repro.cluster import ClusterExecutor
from repro.obs.trace import Tracer
from repro.service import SearchServer
from repro.system import SearchSystem

CORPUS = [
    ("news-1", "Lenovo announced a marketing partnership with the NBA."),
    ("news-2", "Dell explored an alliance with the Olympic Games organizers."),
    ("news-3", "A bakery opened downtown; nothing about computers here."),
    ("news-4", "Acer sponsors a cycling team in a sports partnership."),
    ("news-5", "The partnership between Lenovo and the league expanded."),
    ("news-6", "Olympic sponsors include technology companies like Dell."),
]


@pytest.fixture(scope="module")
def system():
    system = SearchSystem()
    system.add_texts(CORPUS)
    return system


@pytest.fixture()
def traced_cluster(system):
    tracer = Tracer()
    executor = ClusterExecutor(
        system,
        shards=2,
        watchdog_interval=0,
        cache_size=0,
        tracer=tracer,
    )
    try:
        yield executor, tracer
    finally:
        executor.shutdown()


def get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def request_trace(tracer):
    traces = [t for t in tracer.finished() if t.root.name == "request"]
    assert len(traces) == 1, [t.root.name for t in tracer.finished()]
    return traces[0]


class TestMergedSpanTree:
    def test_one_request_yields_one_merged_tree(self, traced_cluster):
        executor, tracer = traced_cluster
        response = executor.ask("marketing, partnership", top_k=3)
        assert response.results

        trace = request_trace(tracer)
        spans = trace.spans
        # Every span — coordinator's and both workers' — lives in the
        # one tree under the one trace id.
        assert all(s.trace_id == trace.trace_id for s in spans)
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id, span.name

        names = {s.name for s in spans}
        assert {"request", "queue", "scatter", "shard", "merge"} <= names

    def test_each_shard_span_carries_a_grafted_worker_subtree(
        self, traced_cluster
    ):
        executor, tracer = traced_cluster
        executor.ask("marketing, partnership", top_k=3)

        trace = request_trace(tracer)
        shard_spans = trace.find("shard")
        assert len(shard_spans) == 2
        executes = trace.find("shard.execute")
        assert len(executes) == 2
        for shard_span in shard_spans:
            assert shard_span.tags["outcome"] == "ok"
            subtree = [
                s
                for s in executes
                if s.span_id.startswith(shard_span.span_id + ":")
            ]
            assert len(subtree) == 1
            execute = subtree[0]
            # Re-parented onto the shard span, rebased to its clock,
            # and stamped with the originating trace id by the worker.
            assert execute.parent_id == shard_span.span_id
            assert execute.start_ns == shard_span.start_ns
            assert execute.finished
            assert execute.tags["origin"] == trace.trace_id

    def test_worker_stage_spans_survive_the_graft(self, traced_cluster):
        executor, tracer = traced_cluster
        executor.ask("marketing, partnership", top_k=3)

        trace = request_trace(tracer)
        # The worker's in-process serving spans (SearchSystem.ask runs
        # inside shard.execute) arrive namespaced under the graft.
        asks = [
            s for s in trace.find("ask") if ":" in s.span_id and s.finished
        ]
        assert len(asks) == 2

    def test_traced_http_request_yields_one_merged_tree(self, system):
        # The acceptance path end to end: one HTTP request against a
        # 2-shard server, then the merged tree read back over
        # /debug/traces/{id} with both worker subtrees grafted in.
        executor = ClusterExecutor(
            system, shards=2, watchdog_interval=0, cache_size=0,
            tracer=Tracer(),
        )
        with SearchServer(executor, owns_executor=True) as server:
            status, payload = get_json(
                server.url + "/search?q=marketing,%20partnership&top_k=3"
            )
            assert status == 200
            trace_id = payload["trace_id"]
            status, detail = get_json(server.url + f"/debug/traces/{trace_id}")

        assert status == 200
        spans = detail["spans"]
        assert all(span["trace_id"] == trace_id for span in spans)
        by_id = {span["span_id"] for span in spans}
        for span in spans:
            if span["parent_id"] is not None:
                assert span["parent_id"] in by_id, span["name"]
        shard_spans = [s for s in spans if s["name"] == "shard"]
        executes = [s for s in spans if s["name"] == "shard.execute"]
        assert len(shard_spans) == 2
        assert len(executes) == 2
        for shard_span in shard_spans:
            subtree = [
                e
                for e in executes
                if e["span_id"].startswith(shard_span["span_id"] + ":")
            ]
            assert len(subtree) == 1
            assert subtree[0]["parent_id"] == shard_span["span_id"]

    def test_tracer_none_disables_tracing_end_to_end(self, system):
        with ClusterExecutor(
            system, shards=2, watchdog_interval=0, cache_size=0, tracer=None
        ) as executor:
            response = executor.ask("marketing, partnership", top_k=3)
            assert response.results
            assert executor.tracer is None
