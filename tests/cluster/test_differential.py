"""The cluster's central proof obligation: byte-identical answers.

For every scoring family, every k, and every shard count, the
scatter-gather threshold-merge path must return *exactly* what
single-process ``SearchSystem.ask`` returns over the same corpus —
same document ids, same scores, same matchsets, same tie order.  The
corpus deliberately contains duplicate texts under different ids
(identical scores) so tie-breaking is exercised, not assumed.
"""

import pytest

from repro.cluster import ClusterExecutor
from repro.service.executor import SCORING_PRESETS
from repro.system import SearchSystem

FAMILIES = sorted(SCORING_PRESETS)  # max, med, win
KS = (1, 5, 20)
SHARD_COUNTS = (1, 2, 4)

QUERIES = (
    "alpha, beta",
    "alpha, gamma",
    "beta",
)


def build_corpus():
    documents = []
    # Distinct proximity structure per group: term gaps grow with i, so
    # scores spread across documents instead of collapsing to one value.
    for i in range(12):
        filler = " ".join(f"w{j}" for j in range(i))
        documents.append(
            (f"doc-{i:02d}", f"alpha {filler} beta and gamma near alpha {filler} beta")
        )
    # Exact duplicate texts under different ids: identical scores, so
    # the ranking must fall back to the doc_id tie-break everywhere.
    for i in range(6):
        documents.append((f"tie-{i}", "alpha beta gamma alpha beta"))
    # Partial matches: only some query terms present.
    for i in range(6):
        documents.append((f"part-{i}", f"beta only text number {i} beta again"))
    return documents


@pytest.fixture(scope="module")
def system():
    built = SearchSystem()
    built.add_texts(build_corpus())
    return built


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def cluster(request, system):
    executor = ClusterExecutor(
        system,
        shards=request.param,
        watchdog_interval=0,
        cache_size=0,  # every ask exercises the full scatter-gather path
    )
    yield executor
    executor.shutdown()


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("k", KS)
def test_cluster_matches_single_process_exactly(system, cluster, family, k):
    scoring = SCORING_PRESETS[family]()
    for query in QUERIES:
        expected = system.ask(query, top_k=k, scoring=scoring)
        response = cluster.ask(query, top_k=k, scoring=family)
        assert not response.degraded
        got = list(response.results)
        # Identity of every field the ranking carries: ids and tie
        # order, exact scores, the winning matchsets themselves, and
        # the dedup invocation counts.
        assert [d.doc_id for d in got] == [d.doc_id for d in expected]
        assert [d.score for d in got] == [d.score for d in expected]
        assert [d.matchset for d in got] == [d.matchset for d in expected]
        assert got == list(expected)


def test_default_scoring_matches_too(system, cluster):
    for k in KS:
        expected = system.ask("alpha, beta", top_k=k)
        response = cluster.ask("alpha, beta", top_k=k)
        assert list(response.results) == list(expected)
