"""ClusterExecutor: API compatibility, lifecycle, health, HTTP serving."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cluster import ClusterExecutor, ClusterMutationError
from repro.matching.queries import QuerySyntaxError
from repro.service import QueryRejected, SearchServer
from repro.system import SearchSystem

CORPUS = [
    ("news-1", "Lenovo announced a marketing partnership with the NBA."),
    ("news-2", "Dell explored an alliance with the Olympic Games organizers."),
    ("news-3", "A bakery opened downtown; nothing about computers here."),
    ("news-4", "Acer sponsors a cycling team in a sports partnership."),
    ("news-5", "The partnership between Lenovo and the league expanded."),
    ("news-6", "Olympic sponsors include technology companies like Dell."),
    ("cfp-1", "CALL FOR PAPERS: the workshop will be held in Pisa, Italy."),
    ("cfp-2", "Submissions on marketing alliances are welcome in Pisa."),
]


def build_system():
    system = SearchSystem()
    system.add_texts(CORPUS)
    return system


@pytest.fixture(scope="module")
def system():
    return build_system()


@pytest.fixture()
def cluster(system):
    executor = ClusterExecutor(system, shards=2, watchdog_interval=0.2)
    yield executor
    executor.shutdown()


class TestQueryPath:
    def test_matches_single_process_ask(self, system, cluster):
        expected = system.ask("marketing, partnership", top_k=3)
        response = cluster.ask("marketing, partnership", top_k=3)
        assert list(response.results) == list(expected)
        assert not response.degraded
        assert response.shards_total == 2
        assert response.shards_failed == 0
        assert response.generation == system.index_generation

    def test_second_ask_is_cached(self, cluster):
        first = cluster.ask("marketing, partnership", top_k=3)
        second = cluster.ask("marketing, partnership", top_k=3)
        assert not first.cached
        assert second.cached
        assert list(second.results) == list(first.results)

    def test_scoring_presets_accepted(self, system, cluster):
        from repro.service.executor import SCORING_PRESETS

        for name, factory in SCORING_PRESETS.items():
            expected = system.ask("marketing, partnership", top_k=3, scoring=factory())
            got = cluster.ask("marketing, partnership", top_k=3, scoring=name)
            assert list(got.results) == list(expected), name

    def test_unknown_scoring_rejected_at_submit(self, cluster):
        with pytest.raises(ValueError, match="unknown scoring"):
            cluster.submit("a, b", scoring="bm25")

    def test_bad_query_syntax_raises_client_error(self, cluster):
        # Raised inside a shard worker, shipped back as a structured
        # reply, and re-raised here — not counted as a shard failure.
        with pytest.raises(QuerySyntaxError):
            cluster.ask('"unterminated', top_k=3)
        assert cluster.metrics.count("shard_failures") == 0

    def test_merge_economy_is_observable(self):
        # Every document matches, and doc-0..doc-11 hash 6/6 across two
        # shards, so each shard ships its local top-3 (6 candidates)
        # while the merge pulls at most N + k - 1 = 4 of them.
        system = SearchSystem()
        system.add_texts(
            (f"doc-{i}", f"alpha beta sentence number {i}") for i in range(12)
        )
        with ClusterExecutor(system, shards=2, watchdog_interval=0) as executor:
            executor.ask("alpha", top_k=3)
            assert executor.metrics.count("merge_pulls_saved") >= 2
            assert executor.metrics.count("shard_requests") == 2


class TestLifecycle:
    def test_rejects_bad_shard_count(self, system):
        with pytest.raises(ValueError, match="shards"):
            ClusterExecutor(system, shards=0)

    def test_single_shard_cluster_works(self, system):
        with ClusterExecutor(system, shards=1, watchdog_interval=0) as executor:
            expected = system.ask("marketing, partnership", top_k=3)
            got = executor.ask("marketing, partnership", top_k=3)
            assert list(got.results) == list(expected)

    def test_apply_refused(self, cluster):
        with pytest.raises(ClusterMutationError):
            cluster.apply(lambda system: system)

    def test_submit_after_shutdown_rejected(self, system):
        executor = ClusterExecutor(system, shards=2, watchdog_interval=0)
        executor.shutdown()
        with pytest.raises(QueryRejected):
            executor.submit("a, b")

    def test_shutdown_is_idempotent(self, system):
        executor = ClusterExecutor(system, shards=2, watchdog_interval=0)
        executor.shutdown()
        executor.shutdown()

    def test_snapshot_shards_roundtrip(self, cluster, tmp_path):
        paths = cluster.snapshot_shards(tmp_path)
        assert len(paths) == 2
        total = 0
        for path in paths:
            restored = SearchSystem.load(path)
            total += len(restored)
        assert total == len(CORPUS)


class TestHealth:
    def test_health_shape(self, cluster):
        health = cluster.health()
        assert health["status"] == "ok"
        assert health["ready"] is True
        assert health["workers"]["configured"] == 2
        assert health["workers"]["alive"] == 2
        assert len(health["shards"]) == 2
        assert health["open_breakers"] == []

    def test_shard_health_reports_topology(self, cluster):
        shards = cluster.shard_health()
        assert [entry["shard"] for entry in shards] == [0, 1]
        for entry in shards:
            assert entry["alive"] is True
            assert isinstance(entry["pid"], int)
            assert entry["breaker"] == "closed"
            assert entry["respawns"] == 0
        assert sum(entry["documents"] for entry in shards) == len(CORPUS)

    def test_health_after_shutdown(self, system):
        executor = ClusterExecutor(system, shards=2, watchdog_interval=0)
        executor.shutdown()
        health = executor.health()
        assert health["ready"] is False
        assert health["accepting"] is False


def get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestHTTPServing:
    @pytest.fixture()
    def server(self, system):
        executor = ClusterExecutor(system, shards=2, watchdog_interval=0.2)
        with SearchServer(executor, owns_executor=True) as server:
            yield server

    def test_search_over_cluster(self, system, server):
        status, payload = get_json(
            server.url + "/search?q=marketing,%20partnership&top_k=3"
        )
        assert status == 200
        expected = system.ask("marketing, partnership", top_k=3)
        assert [row["doc_id"] for row in payload["results"]] == [
            doc.doc_id for doc in expected
        ]
        assert payload["degraded"] is False
        assert payload["shards"] == {"total": 2, "failed": 0}

    def test_healthz_reports_per_shard_status(self, server):
        status, payload = get_json(server.url + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert len(payload["shards"]) == 2
        for entry in payload["shards"]:
            assert entry["alive"] is True
            assert entry["breaker"] == "closed"

    def test_readyz_ok(self, server):
        status, payload = get_json(server.url + "/readyz")
        assert status == 200
        assert payload["ready"] is True

    def test_metrics_exposes_shard_series(self, server):
        get_json(server.url + "/search?q=marketing,%20partnership")
        with urllib.request.urlopen(server.url + "/metrics", timeout=10) as response:
            text = response.read().decode()
        assert "repro_shard_requests_total" in text
        assert "repro_merge_pulls_saved_total" in text
        assert "repro_shard_request_seconds" in text
