"""Threshold-algorithm merge: correctness, tie order, pull economy."""

from dataclasses import dataclass

import pytest

from repro.cluster.merge import MergeResult, merge_key, threshold_merge


@dataclass(frozen=True)
class Doc:
    # threshold_merge is duck-typed over (.score, .doc_id); the
    # differential tests exercise it with real RankedDocuments.
    doc_id: str
    score: float


def stream(*pairs):
    docs = [Doc(doc_id, score) for doc_id, score in pairs]
    return sorted(docs, key=merge_key)


def reference_merge(streams, k):
    merged = sorted((doc for s in streams for doc in s), key=merge_key)
    return merged[:k]


def test_merge_key_orders_by_score_desc_then_doc_id_asc():
    docs = [Doc("b", 1.0), Doc("a", 1.0), Doc("c", 2.0)]
    assert sorted(docs, key=merge_key) == [Doc("c", 2.0), Doc("a", 1.0), Doc("b", 1.0)]


def test_merge_equals_full_sort():
    streams = [
        stream(("a", 0.9), ("b", 0.5), ("c", 0.1)),
        stream(("d", 0.8), ("e", 0.7)),
        stream(("f", 0.95), ("g", 0.05)),
    ]
    for k in (1, 2, 3, 5, 10):
        result = threshold_merge(streams, k)
        assert result.ranked == reference_merge(streams, k)


def test_merge_breaks_ties_by_doc_id():
    streams = [
        stream(("doc-b", 1.0), ("doc-d", 1.0)),
        stream(("doc-a", 1.0), ("doc-c", 1.0)),
    ]
    result = threshold_merge(streams, 3)
    assert [doc.doc_id for doc in result.ranked] == ["doc-a", "doc-b", "doc-c"]


def test_merge_handles_empty_and_uneven_streams():
    streams = [stream(), stream(("a", 1.0)), stream()]
    result = threshold_merge(streams, 5)
    assert [doc.doc_id for doc in result.ranked] == ["a"]
    assert threshold_merge([], 5) == MergeResult(ranked=[], pulls=0, pulls_saved=0)


def test_merge_accounts_every_entry_as_pulled_or_saved():
    streams = [
        stream(*((f"a{i}", 1.0 - i / 10) for i in range(5))),
        stream(*((f"b{i}", 0.95 - i / 10) for i in range(5))),
        stream(*((f"c{i}", 0.90 - i / 10) for i in range(5))),
    ]
    result = threshold_merge(streams, 3)
    assert result.pulls + result.pulls_saved == 15
    assert result.pulls_saved > 0


def test_merge_early_termination_bound():
    # TA with exact per-stream scores examines at most N + k - 1
    # entries: every stream head plus one advance per pop before the
    # k-th (nothing is examined behind the final pop).
    n, k = 4, 5
    streams = [
        stream(*((f"s{s}-{i}", 1.0 - (s + n * i) / 100) for i in range(k)))
        for s in range(n)
    ]
    result = threshold_merge(streams, k)
    assert result.ranked == reference_merge(streams, k)
    assert result.pulls <= n + k - 1
    assert result.pulls_saved >= n * k - (n + k - 1)


def test_merge_skewed_streams_save_most_pulls():
    # One dominant shard: the threshold proves the other shards'
    # entries irrelevant after their heads are seen.
    dominant = stream(*((f"top{i}", 10.0 - i / 100) for i in range(5)))
    losers = [
        stream(*((f"lo{s}-{i}", 1.0 - i / 100) for i in range(5)))
        for s in range(3)
    ]
    result = threshold_merge([dominant, *losers], 5)
    assert [doc.doc_id for doc in result.ranked] == [f"top{i}" for i in range(5)]
    # 5 dominant pulls + 3 loser heads = 8 of 20 examined.
    assert result.pulls == 8
    assert result.pulls_saved == 12


def test_merge_rejects_unsorted_stream():
    bad = [Doc("a", 0.1), Doc("b", 0.9)]  # ascending score: not merge order
    with pytest.raises(ValueError, match="not sorted"):
        threshold_merge([bad], 2)


def test_merge_rejects_nonpositive_k():
    with pytest.raises(ValueError):
        threshold_merge([stream(("a", 1.0))], 0)
