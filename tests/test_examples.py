"""Every shipped example must run clean.

The examples are part of the public deliverable; this suite executes
each one in-process (stdout captured) so a regression anywhere in the
stack that breaks a documented workflow fails the build.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

# Per-example argv (examples parse sys.argv via argparse).
_ARGV = {
    "synthetic_scaling.py": ["--docs", "3"],
}


@pytest.mark.parametrize("example", EXAMPLES, ids=[e.name for e in EXAMPLES])
def test_example_runs(example, capsys, monkeypatch):
    monkeypatch.setattr(
        sys, "argv", [str(example)] + _ARGV.get(example.name, [])
    )
    runpy.run_path(str(example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example.name} produced no output"


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 10
