"""Unit tests for the columnar kernel layer (:mod:`repro.core.kernels`)."""

import os

import pytest

from repro.core.kernels.columnar import (
    _CACHE_CAP,
    STATS,
    ListKernel,
    derive_kernels,
    kernels_enabled,
    lower,
    max_g_sum,
)
from repro.core.kernels.joins import max_kernel_supported, med_kernel_supported
from repro.core.match import Match, MatchList
from repro.core.scoring.base import MaxScoring, WinScoring
from repro.core.scoring.presets import trec_max, trec_med, trec_win


@pytest.fixture
def lst():
    return MatchList.from_pairs([(3, 0.5), (7, 1.0), (12, 0.25)])


class TestLowering:
    def test_arrays_mirror_the_list(self, lst):
        scoring = trec_win()
        kernel = lower(lst, scoring, 0)
        assert list(kernel.locations) == [3, 7, 12]
        assert list(kernel.g) == [scoring.g(0, m.score) for m in lst]
        assert kernel.g_bound is kernel.g
        assert kernel.scores is None
        assert kernel.max_g == max(kernel.g)
        assert kernel.n == len(lst)

    def test_max_family_keeps_raw_scores_and_float_bound(self, lst):
        scoring = trec_max()
        kernel = lower(lst, scoring, 1)
        assert list(kernel.scores) == [m.score for m in lst]
        assert list(kernel.g) == [scoring.g(1, m.score, 0) for m in lst]
        assert list(kernel.g_bound) == [scoring.g(1, m.score, 0.0) for m in lst]
        assert kernel.max_g == max(kernel.g_bound)

    def test_token_ids_lowered(self):
        lst = MatchList(
            [Match(2, 0.5, token_id=42), Match(9, 0.75, token_id=42)]
        )
        kernel = lower(lst, trec_med(), 0)
        assert list(kernel.token_ids) == [42, 42]

    def test_term_index_is_part_of_the_key(self, lst):
        scoring = trec_win()
        assert lower(lst, scoring, 0) is not lower(lst, scoring, 1)


class TestCache:
    def test_same_instance_hits(self, lst):
        scoring = trec_win()
        STATS.reset()
        first = lower(lst, scoring, 0)
        assert lower(lst, scoring, 0) is first
        assert STATS.snapshot() == {"lowerings": 1, "cache_hits": 1, "derived": 0}

    def test_equal_presets_share_via_kernel_key(self, lst):
        # Two fresh preset objects are configured identically, so their
        # kernel_key matches and the lowering is shared.
        a, b = trec_max(), trec_max()
        assert a is not b
        assert a.kernel_key() == b.kernel_key()
        assert lower(lst, a, 0) is lower(lst, b, 0)

    def test_different_params_do_not_share(self, lst):
        from repro.core.scoring.win import ExponentialProductWin

        a = ExponentialProductWin(alpha=0.1)
        b = ExponentialProductWin(alpha=0.2)
        assert lower(lst, a, 0) is not lower(lst, b, 0)

    def test_keyless_scoring_cached_by_identity(self, lst):
        class Custom(WinScoring):
            def g(self, j, x):
                return 2.0 * x

            def f(self, s, w):
                return s - w

        scoring = Custom()
        assert scoring.kernel_key() is None
        kernel = lower(lst, scoring, 0)
        assert lower(lst, scoring, 0) is kernel
        # The kernel holds the scoring alive so id() can't be recycled
        # into a colliding key.
        assert kernel._hold is scoring

    def test_fifo_eviction_at_cap(self, lst):
        from repro.core.scoring.win import ExponentialProductWin

        scorings = [ExponentialProductWin(alpha=0.01 * (i + 1)) for i in range(_CACHE_CAP + 1)]
        kernels = [lower(lst, s, 0) for s in scorings]
        # The oldest entry was evicted: lowering it again builds afresh.
        STATS.reset()
        rebuilt = lower(lst, scorings[0], 0)
        assert rebuilt is not kernels[0]
        assert STATS.lowerings == 1
        # The newest survived.
        assert lower(lst, scorings[-1], 0) is kernels[-1]


class TestDerive:
    def test_take_is_structural(self, lst):
        kernel = lower(lst, trec_max(), 0)
        sub = kernel.take([0, 2])
        assert list(sub.locations) == [3, 12]
        assert list(sub.g) == [kernel.g[0], kernel.g[2]]
        assert list(sub.g_bound) == [kernel.g_bound[0], kernel.g_bound[2]]
        assert list(sub.scores) == [kernel.scores[0], kernel.scores[2]]
        assert sub.max_g == max(sub.g_bound)

    def test_derive_kernels_seeds_the_child(self, lst):
        scoring = trec_win()
        lower(lst, scoring, 0)
        child = MatchList([lst[0], lst[2]], presorted=True)
        derive_kernels(lst, child, [0, 2])
        STATS.reset()
        kernel = lower(child, scoring, 0)
        # Served from the derived cache: no fresh lowering, no g calls.
        assert STATS.lowerings == 0
        assert STATS.cache_hits == 1
        assert list(kernel.locations) == [3, 12]


class TestBound:
    def test_max_g_sum_matches_object_rescan(self):
        lists = [
            MatchList.from_pairs([(1, 0.3), (5, 0.9)]),
            MatchList.from_pairs([(2, 0.7), (8, 0.4)]),
        ]
        for scoring in (trec_win(), trec_med()):
            expected = sum(
                max(scoring.g(j, m.score) for m in lst)
                for j, lst in enumerate(lists)
            )
            assert max_g_sum(lists, scoring) == expected
        scoring = trec_max()
        expected = sum(
            max(scoring.g(j, m.score, 0.0) for m in lst)
            for j, lst in enumerate(lists)
        )
        assert max_g_sum(lists, scoring) == expected

    def test_bound_is_o1_once_warm(self):
        lists = [MatchList.from_pairs([(i, 0.5) for i in range(100)])]
        scoring = trec_win()
        max_g_sum(lists, scoring)
        STATS.reset()
        for _ in range(10):
            max_g_sum(lists, scoring)
        assert STATS.lowerings == 0, "warm bound must not rescan the list"
        assert STATS.cache_hits == 10


class TestToggles:
    def test_escape_hatch(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_KERNELS", raising=False)
        assert kernels_enabled()
        for value in ("1", "true", "YES", "on"):
            monkeypatch.setenv("REPRO_NO_KERNELS", value)
            assert not kernels_enabled()
        monkeypatch.setenv("REPRO_NO_KERNELS", "0")
        assert kernels_enabled()

    def test_guards_accept_the_presets(self):
        assert med_kernel_supported(trec_med())
        assert max_kernel_supported(trec_max())

    def test_guards_reject_overridden_contributions(self):
        from repro.core.scoring.base import MedScoring

        class Odd(MaxScoring):
            def g(self, j, x, d):
                return x - d

            def f(self, s):
                return s

            def contribution(self, j, match, location):  # non-standard
                return 0.0

        assert not max_kernel_supported(Odd())

        class OddMed(MedScoring):
            def g(self, j, x):
                return x

            def f(self, s):
                return s

            def score(self, matchset):  # non-standard
                return 0.0

        assert not med_kernel_supported(OddMed())
