"""Tests for MatchSet and the paper's median definition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidMatchError
from repro.core.match import Match
from repro.core.matchset import MatchSet, upper_median
from repro.core.query import Query


class TestUpperMedian:
    def test_odd_sized_multiset(self):
        assert upper_median([1, 5, 9]) == 5

    def test_even_sized_multiset_takes_upper(self):
        # n=4: rank ⌊(4+1)/2⌋ = 2 from the greatest → the second largest.
        assert upper_median([1, 5, 9, 20]) == 9

    def test_singleton(self):
        assert upper_median([7]) == 7

    def test_pair(self):
        assert upper_median([3, 10]) == 10

    def test_with_ties(self):
        assert upper_median([5, 5, 1]) == 5
        assert upper_median([5, 5, 1, 1]) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            upper_median([])

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=9))
    def test_matches_rank_definition(self, values):
        # Direct transcription of footnote 2.
        ranked = sorted(values, reverse=True)
        rank = (len(values) + 1) // 2
        assert upper_median(values) == ranked[rank - 1]

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=9))
    def test_median_is_an_element(self, values):
        assert upper_median(values) in values


class TestMatchSet:
    @pytest.fixture
    def query(self):
        return Query.of("a", "b", "c")

    def test_from_sequence(self, query):
        ms = MatchSet.from_sequence(query, [Match(1, 0.5), Match(9, 0.7), Match(4, 0.2)])
        assert ms["a"].location == 1
        assert ms.locations == (1, 9, 4)

    def test_missing_term_rejected(self, query):
        with pytest.raises(InvalidMatchError):
            MatchSet(query, {"a": Match(1, 0.5), "b": Match(2, 0.5)})

    def test_extra_term_rejected(self, query):
        with pytest.raises(InvalidMatchError):
            MatchSet(
                query,
                {"a": Match(1, 0.5), "b": Match(2, 0.5), "c": Match(3, 0.5), "d": Match(4, 0.5)},
            )

    def test_wrong_sequence_length_rejected(self, query):
        with pytest.raises(InvalidMatchError):
            MatchSet.from_sequence(query, [Match(1, 0.5)])

    def test_window_length(self, query):
        ms = MatchSet.from_sequence(query, [Match(3, 1), Match(11, 1), Match(7, 1)])
        assert ms.window_length == 8
        assert ms.min_location == 3
        assert ms.max_location == 11

    def test_median_location(self, query):
        ms = MatchSet.from_sequence(query, [Match(3, 1), Match(11, 1), Match(7, 1)])
        assert ms.median_location == 7

    def test_zero_window_when_co_located(self, query):
        ms = MatchSet.from_sequence(query, [Match(5, 1), Match(5, 1), Match(5, 1)])
        assert ms.window_length == 0
        assert ms.median_location == 5

    def test_validity_uses_token_ids(self, query):
        shared = Match(5, 0.9)  # token_id defaults to location 5
        ms = MatchSet.from_sequence(query, [shared, Match(5, 0.7), Match(8, 0.5)])
        assert not ms.is_valid()
        distinct = MatchSet.from_sequence(
            query, [Match(5, 0.9, token_id=1), Match(5, 0.7, token_id=2), Match(8, 0.5)]
        )
        assert distinct.is_valid()

    def test_duplicate_groups(self, query):
        ms = MatchSet.from_sequence(query, [Match(5, 0.9), Match(5, 0.7), Match(8, 0.5)])
        groups = ms.duplicate_groups()
        assert groups == [["a", "b"]]

    def test_mapping_protocol(self, query):
        ms = MatchSet.from_sequence(query, [Match(1, 0.5), Match(2, 0.6), Match(3, 0.7)])
        assert set(ms) == {"a", "b", "c"}
        assert len(ms) == 3
        assert dict(ms)["b"].location == 2

    def test_equality_and_hash(self, query):
        m = [Match(1, 0.5), Match(2, 0.6), Match(3, 0.7)]
        assert MatchSet.from_sequence(query, m) == MatchSet.from_sequence(query, m)
        assert hash(MatchSet.from_sequence(query, m)) == hash(
            MatchSet.from_sequence(query, m)
        )
