"""Tests for Query."""

import pytest

from repro.core.errors import InvalidQueryError
from repro.core.query import Query


class TestQuery:
    def test_of_constructor(self):
        q = Query.of("a", "b")
        assert q.terms == ("a", "b")
        assert len(q) == 2

    def test_empty_query_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query([])

    def test_blank_term_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query.of("a", "  ")

    def test_non_string_term_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query([1, 2])  # type: ignore[list-item]

    def test_duplicate_terms_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query.of("a", "a")

    def test_contains_and_index_of(self):
        q = Query.of("pc maker", "sports")
        assert "sports" in q
        assert "nba" not in q
        assert q.index_of("sports") == 1
        with pytest.raises(InvalidQueryError):
            q.index_of("nba")

    def test_iteration_and_indexing(self):
        q = Query.of("a", "b", "c")
        assert list(q) == ["a", "b", "c"]
        assert q[1] == "b"
        assert q[-1] == "c"

    def test_equality_and_hash(self):
        assert Query.of("a", "b") == Query.of("a", "b")
        assert Query.of("a", "b") != Query.of("b", "a")
        assert hash(Query.of("a")) == hash(Query.of("a"))

    def test_alternation_terms_are_opaque_labels(self):
        q = Query.of("conference|workshop", "date", "place")
        assert q.index_of("conference|workshop") == 0
