"""Core serialization round-trips."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.io import (
    FORMAT_VERSION,
    SerializationError,
    load_match_lists,
    match_from_dict,
    match_list_from_dict,
    match_list_to_dict,
    match_to_dict,
    matchset_from_dict,
    matchset_to_dict,
    save_match_lists,
)
from repro.core.match import Match, MatchList
from repro.core.matchset import MatchSet
from repro.core.query import Query


class TestMatchRoundTrip:
    def test_basic(self):
        m = Match(5, 0.7, token="lenovo", token_id=3)
        assert match_from_dict(match_to_dict(m)) == m

    def test_defaults_omitted_from_dict(self):
        d = match_to_dict(Match(5, 0.7))
        assert "token" not in d and "token_id" not in d
        assert match_from_dict(d) == Match(5, 0.7)

    def test_bad_record_rejected(self):
        with pytest.raises(SerializationError):
            match_from_dict({"score": 0.5})
        with pytest.raises(SerializationError):
            match_from_dict({"location": -3, "score": 0.5})

    @given(
        st.integers(0, 1000),
        st.floats(0.01, 1.0),
        st.one_of(st.none(), st.text(min_size=1, max_size=8)),
    )
    def test_round_trip_property(self, loc, score, token):
        m = Match(loc, score, token=token)
        assert match_from_dict(match_to_dict(m)) == m


class TestMatchListRoundTrip:
    def test_round_trip_with_term(self):
        lst = MatchList.from_pairs([(1, 0.5), (9, 0.8)], term="sports")
        back = match_list_from_dict(match_list_to_dict(lst))
        assert back == lst

    def test_missing_matches_key_rejected(self):
        with pytest.raises(SerializationError):
            match_list_from_dict({"term": "x"})


class TestMatchSetRoundTrip:
    def test_round_trip(self):
        q = Query.of("a", "b")
        ms = MatchSet.from_sequence(q, [Match(1, 0.5), Match(4, 0.9)])
        back = matchset_from_dict(matchset_to_dict(ms))
        assert back == ms

    def test_bad_record_rejected(self):
        with pytest.raises(SerializationError):
            matchset_from_dict({"terms": ["a"]})


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(1, 0.5)], term="a"),
            MatchList.from_pairs([(2, 0.9), (8, 0.1)], term="b"),
        ]
        path = tmp_path / "lists.json"
        save_match_lists(path, q, lists)
        q2, lists2 = load_match_lists(path)
        assert q2 == q
        assert lists2 == lists

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "lists.json"
        path.write_text(json.dumps({"version": FORMAT_VERSION + 1, "terms": ["a"], "lists": []}))
        with pytest.raises(SerializationError):
            load_match_lists(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "lists.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_match_lists(path)

    def test_term_list_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "lists.json"
        path.write_text(
            json.dumps(
                {"version": FORMAT_VERSION, "terms": ["a", "b"], "lists": []}
            )
        )
        with pytest.raises(SerializationError):
            load_match_lists(path)
