"""Tests for Match and MatchList."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidMatchError, InvalidMatchListError
from repro.core.match import Match, MatchList, merge_by_location


class TestMatch:
    def test_basic_construction(self):
        m = Match(location=5, score=0.7, token="lenovo")
        assert m.location == 5
        assert m.score == 0.7
        assert m.token == "lenovo"

    def test_token_id_defaults_to_location(self):
        assert Match(location=9, score=1.0).token_id == 9

    def test_explicit_token_id_preserved(self):
        assert Match(location=9, score=1.0, token_id=3).token_id == 3

    def test_negative_location_rejected(self):
        with pytest.raises(InvalidMatchError):
            Match(location=-1, score=0.5)

    def test_non_integer_location_rejected(self):
        with pytest.raises(InvalidMatchError):
            Match(location=1.5, score=0.5)  # type: ignore[arg-type]

    def test_bool_location_rejected(self):
        with pytest.raises(InvalidMatchError):
            Match(location=True, score=0.5)

    def test_nan_score_rejected(self):
        with pytest.raises(InvalidMatchError):
            Match(location=0, score=float("nan"))

    def test_infinite_score_rejected(self):
        with pytest.raises(InvalidMatchError):
            Match(location=0, score=float("inf"))

    def test_matches_are_hashable_and_equal_by_value(self):
        assert Match(1, 0.5) == Match(1, 0.5)
        assert hash(Match(1, 0.5)) == hash(Match(1, 0.5))
        assert Match(1, 0.5) != Match(2, 0.5)


class TestMatchList:
    def test_sorts_by_location(self):
        lst = MatchList([Match(5, 0.1), Match(2, 0.2), Match(9, 0.3)])
        assert lst.locations == (2, 5, 9)

    def test_presorted_validation(self):
        with pytest.raises(InvalidMatchListError):
            MatchList([Match(5, 0.1), Match(2, 0.2)], presorted=True)

    def test_presorted_accepts_ties(self):
        lst = MatchList([Match(2, 0.1), Match(2, 0.2)], presorted=True)
        assert len(lst) == 2

    def test_from_pairs(self):
        lst = MatchList.from_pairs([(3, 0.5), (1, 0.9)], term="q")
        assert lst.term == "q"
        assert lst.locations == (1, 3)
        assert lst[0].score == 0.9

    def test_rejects_non_match_items(self):
        with pytest.raises(InvalidMatchListError):
            MatchList([(1, 0.5)])  # type: ignore[list-item]

    def test_slicing_returns_matchlist(self):
        lst = MatchList.from_pairs([(1, 0.1), (2, 0.2), (3, 0.3)], term="q")
        sub = lst[1:]
        assert isinstance(sub, MatchList)
        assert sub.locations == (2, 3)
        assert sub.term == "q"

    def test_bisection_helpers(self):
        lst = MatchList.from_pairs([(2, 0.1), (5, 0.2), (5, 0.3), (9, 0.4)])
        assert lst.first_at_or_after(5) == 1
        assert lst.first_at_or_after(6) == 3
        assert lst.first_at_or_after(100) == 4
        assert lst.last_at_or_before(5) == 2
        assert lst.last_at_or_before(1) == -1

    def test_without_removes_one_occurrence(self):
        m = Match(5, 0.5)
        lst = MatchList([m, Match(7, 0.2)])
        reduced = lst.without(m)
        assert reduced.locations == (7,)
        with pytest.raises(InvalidMatchListError):
            reduced.without(m)

    def test_equality_includes_term(self):
        a = MatchList.from_pairs([(1, 0.5)], term="x")
        b = MatchList.from_pairs([(1, 0.5)], term="y")
        assert a != b
        assert a == MatchList.from_pairs([(1, 0.5)], term="x")

    @given(st.lists(st.tuples(st.integers(0, 50), st.floats(0.1, 1.0)), min_size=1))
    def test_always_sorted_property(self, pairs):
        lst = MatchList.from_pairs(pairs)
        assert all(a <= b for a, b in zip(lst.locations, lst.locations[1:]))


class TestMergeByLocation:
    def test_merges_in_location_order(self):
        lists = [
            MatchList.from_pairs([(1, 0.1), (5, 0.2)]),
            MatchList.from_pairs([(2, 0.3), (5, 0.4)]),
        ]
        merged = list(merge_by_location(lists))
        assert [(j, m.location) for j, m in merged] == [
            (0, 1), (1, 2), (0, 5), (1, 5),
        ]

    def test_tie_break_by_term_index(self):
        lists = [
            MatchList.from_pairs([(3, 0.1)]),
            MatchList.from_pairs([(3, 0.2)]),
        ]
        assert [j for j, _ in merge_by_location(lists)] == [0, 1]

    def test_handles_empty_lists(self):
        lists = [MatchList(), MatchList.from_pairs([(1, 0.5)])]
        assert [(j, m.location) for j, m in merge_by_location(lists)] == [(1, 1)]

    @given(st.lists(st.lists(st.integers(0, 40), min_size=0, max_size=8), min_size=1, max_size=5))
    def test_merge_is_a_sorted_permutation(self, location_lists):
        lists = [
            MatchList.from_pairs([(loc, 0.5) for loc in locs])
            for locs in location_lists
        ]
        merged = [m.location for _, m in merge_by_location(lists)]
        assert merged == sorted(loc for locs in location_lists for loc in locs)
