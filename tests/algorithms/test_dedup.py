"""Section VI duplicate handling."""

import pytest
from hypothesis import given, settings

from repro.core.algorithms.dedup import dedup_join
from repro.core.algorithms.max_join import max_join
from repro.core.algorithms.med_join import med_join
from repro.core.algorithms.naive import naive_join, naive_join_valid
from repro.core.algorithms.win_join import win_join
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.presets import trec_max, trec_med, trec_win

from tests.conftest import join_instances


class TestChinaExample:
    """The paper's {asia, porcelain} / "china" scenario."""

    @pytest.fixture
    def instance(self):
        q = Query.of("asia", "porcelain")
        # "china" (location 5) matches both terms; the valid alternative
        # is "jingdezhen" (7) for asia and "ceramics" (8) for porcelain.
        asia = MatchList.from_pairs([(5, 1.0), (7, 0.6)], term="asia")
        porcelain = MatchList.from_pairs([(5, 0.9), (8, 0.8)], term="porcelain")
        return q, [asia, porcelain]

    def test_duplicate_unaware_picks_china_twice(self, instance):
        q, lists = instance
        result = win_join(q, lists, trec_win())
        assert not result.matchset.is_valid()
        assert result.matchset["asia"].location == result.matchset["porcelain"].location

    def test_dedup_returns_valid_matchset(self, instance):
        q, lists = instance
        result = dedup_join(q, lists, trec_win(), win_join)
        assert result.matchset.is_valid()
        assert result.score == pytest.approx(
            naive_join_valid(q, lists, trec_win()).score
        )

    def test_invocations_counted(self, instance):
        q, lists = instance
        result = dedup_join(q, lists, trec_win(), win_join)
        assert result.invocations >= 1


class TestDedupBehaviour:
    def test_single_invocation_when_best_is_valid(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(1, 0.9)]),
            MatchList.from_pairs([(2, 0.9)]),
        ]
        result = dedup_join(q, lists, trec_win(), win_join)
        assert result.invocations == 1

    def test_empty_when_no_valid_matchset(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(5, 1.0)]),
            MatchList.from_pairs([(5, 0.9)]),
        ]
        result = dedup_join(q, lists, trec_win(), win_join)
        assert not result

    def test_empty_input_lists(self):
        q = Query.of("a", "b")
        result = dedup_join(
            q, [MatchList.from_pairs([(1, 0.5)]), MatchList()], trec_win(), win_join
        )
        assert not result
        assert result.invocations == 0

    def test_max_invocations_cap(self):
        q = Query.of("a", "b", "c")
        # Everything co-located: lots of restarts needed.
        lists = [
            MatchList.from_pairs([(5, 1.0), (6, 0.9), (7, 0.8)]),
            MatchList.from_pairs([(5, 1.0), (6, 0.9), (7, 0.8)]),
            MatchList.from_pairs([(5, 1.0), (6, 0.9), (7, 0.8)]),
        ]
        result = dedup_join(q, lists, trec_med(), med_join, max_invocations=2)
        assert result.invocations <= 2

    def test_works_with_naive_inner_algorithm(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(5, 1.0), (7, 0.6)]),
            MatchList.from_pairs([(5, 0.9), (8, 0.8)]),
        ]
        result = dedup_join(q, lists, trec_win(), naive_join)
        assert result.matchset.is_valid()


class TestDedupVsExhaustiveOracle:
    @settings(max_examples=100, deadline=None)
    @given(join_instances(max_terms=4, max_len=4, max_location=10))
    def test_win(self, instance):
        query, lists = instance
        oracle = naive_join_valid(query, lists, trec_win())
        result = dedup_join(query, lists, trec_win(), win_join)
        assert bool(oracle) == bool(result)
        if oracle:
            assert result.score == pytest.approx(oracle.score)
            assert result.matchset.is_valid()

    @settings(max_examples=100, deadline=None)
    @given(join_instances(max_terms=4, max_len=4, max_location=10))
    def test_med(self, instance):
        query, lists = instance
        oracle = naive_join_valid(query, lists, trec_med())
        result = dedup_join(query, lists, trec_med(), med_join)
        assert bool(oracle) == bool(result)
        if oracle:
            assert result.score == pytest.approx(oracle.score)

    @settings(max_examples=100, deadline=None)
    @given(join_instances(max_terms=4, max_len=4, max_location=10))
    def test_max(self, instance):
        query, lists = instance
        oracle = naive_join_valid(query, lists, trec_max())
        result = dedup_join(query, lists, trec_max(), max_join)
        assert bool(oracle) == bool(result)
        if oracle:
            assert result.score == pytest.approx(oracle.score)
