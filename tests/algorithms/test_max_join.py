"""MAX joins (specialized and general): correctness against the oracle."""

import pytest
from hypothesis import given, settings

from repro.core.algorithms.max_join import general_max_join, max_join
from repro.core.algorithms.naive import naive_join
from repro.core.errors import ScoringContractError
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.maxloc import CustomMax
from repro.core.scoring.presets import eq4, eq5, trec_max, trec_med

from tests.conftest import join_instances, max_scorings


class TestMaxJoinBasics:
    def test_rejects_non_max_scoring(self):
        q = Query.of("a")
        with pytest.raises(ScoringContractError):
            max_join(q, [MatchList.from_pairs([(1, 0.5)])], trec_med())

    def test_rejects_scoring_without_properties(self):
        q = Query.of("a")
        scoring = CustomMax(
            g=lambda x, y: x - y,
            f=lambda x: x,
            anchor_candidates=lambda m: m.locations,
        )
        with pytest.raises(ScoringContractError):
            max_join(q, [MatchList.from_pairs([(1, 0.5)])], scoring)

    def test_empty_list_gives_empty_result(self):
        q = Query.of("a", "b")
        result = max_join(q, [MatchList.from_pairs([(1, 0.5)]), MatchList()], trec_max())
        assert not result

    def test_single_term(self):
        q = Query.of("a")
        lists = [MatchList.from_pairs([(3, 0.4), (9, 0.8)])]
        result = max_join(q, lists, trec_max())
        assert result.matchset["a"].location == 9
        assert result.score == pytest.approx(0.8)

    def test_anchors_near_high_scoring_matches(self):
        """MAX picks reference points near matches we're confident about."""
        q = Query.of("a", "b")
        scoring = eq5(0.5)
        lists = [
            MatchList.from_pairs([(0, 1.0)]),
            MatchList.from_pairs([(10, 0.1)]),
        ]
        result = max_join(q, lists, scoring)
        anchor, _ = scoring.best_anchor(result.matchset)
        assert anchor == 0  # anchored at the strong match

    def test_reports_best_valid_candidate(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(5, 1.0), (7, 0.6)]),
            MatchList.from_pairs([(5, 0.9), (8, 0.8)]),
        ]
        result = max_join(q, lists, trec_max())
        assert result.valid_matchset is not None
        assert result.valid_matchset.is_valid()


class TestMaxJoinVsOracle:
    @settings(max_examples=150, deadline=None)
    @given(join_instances(max_terms=4, max_len=5), max_scorings())
    def test_specialized_equals_naive(self, instance, scoring):
        query, lists = instance
        fast = max_join(query, lists, scoring)
        slow = naive_join(query, lists, scoring)
        assert fast.score == pytest.approx(slow.score)

    @settings(max_examples=100, deadline=None)
    @given(join_instances(max_terms=4, max_len=5), max_scorings())
    def test_general_envelope_equals_naive(self, instance, scoring):
        query, lists = instance
        fast = general_max_join(query, lists, scoring)
        slow = naive_join(query, lists, scoring)
        assert fast.score == pytest.approx(slow.score)

    @settings(max_examples=60, deadline=None)
    @given(join_instances(max_terms=3, max_len=4, max_location=6))
    def test_heavy_ties(self, instance):
        query, lists = instance
        scoring = eq4(0.3)
        assert max_join(query, lists, scoring).score == pytest.approx(
            naive_join(query, lists, scoring).score
        )

    @settings(max_examples=60, deadline=None)
    @given(join_instances(max_terms=4, max_len=5))
    def test_specialized_and_general_agree(self, instance):
        query, lists = instance
        scoring = trec_max()
        assert max_join(query, lists, scoring).score == pytest.approx(
            general_max_join(query, lists, scoring).score
        )

    @settings(max_examples=50, deadline=None)
    @given(join_instances(max_terms=4, max_len=5))
    def test_returned_matchset_achieves_reported_score(self, instance):
        query, lists = instance
        scoring = trec_max()
        result = max_join(query, lists, scoring)
        assert scoring.score(result.matchset) == pytest.approx(result.score)
