"""Tests for the naive cross-product baselines."""

import itertools

import pytest
from hypothesis import given, settings

from repro.core.algorithms.naive import iterate_matchsets, naive_join, naive_join_valid
from repro.core.errors import InvalidQueryError
from repro.core.match import Match, MatchList
from repro.core.query import Query
from repro.core.scoring.presets import trec_med, trec_win

from tests.conftest import join_instances


class TestIterateMatchsets:
    def test_enumerates_full_cross_product(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(1, 0.5), (2, 0.5)]),
            MatchList.from_pairs([(3, 0.5), (4, 0.5), (5, 0.5)]),
        ]
        combos = list(iterate_matchsets(q, lists))
        assert len(combos) == 6
        assert len({tuple(m.locations) for m in combos}) == 6


class TestNaiveJoin:
    def test_single_term_returns_best_single_match(self):
        q = Query.of("a")
        lists = [MatchList.from_pairs([(1, 0.2), (5, 0.9), (9, 0.4)])]
        result = naive_join(q, lists, trec_win())
        assert result.matchset["a"].location == 5

    def test_empty_list_gives_empty_result(self):
        q = Query.of("a", "b")
        lists = [MatchList.from_pairs([(1, 0.5)]), MatchList()]
        result = naive_join(q, lists, trec_win())
        assert not result
        assert result.matchset is None and result.score is None

    def test_mismatched_lists_rejected(self):
        q = Query.of("a", "b")
        with pytest.raises(InvalidQueryError):
            naive_join(q, [MatchList.from_pairs([(1, 0.5)])], trec_win())

    def test_prefers_tight_window(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(0, 0.5), (100, 0.5)]),
            MatchList.from_pairs([(1, 0.5), (200, 0.5)]),
        ]
        result = naive_join(q, lists, trec_win())
        assert result.matchset.locations == (0, 1)

    @settings(max_examples=50)
    @given(join_instances(max_terms=3, max_len=4))
    def test_score_is_max_over_cross_product(self, instance):
        query, lists = instance
        scoring = trec_med()
        result = naive_join(query, lists, scoring)
        brute = max(
            scoring.score(m) for m in iterate_matchsets(query, lists)
        )
        assert result.score == pytest.approx(brute)


class TestNaiveJoinValid:
    def test_skips_duplicate_matchsets(self):
        q = Query.of("asia", "porcelain")
        # "china" at location 5 matches both; "jingdezhen"(7)/"ceramics"(8)
        # are the valid alternative.
        asia = MatchList.from_pairs([(5, 1.0), (7, 0.6)], term="asia")
        porcelain = MatchList.from_pairs([(5, 0.9), (8, 0.8)], term="porcelain")
        result = naive_join_valid(q, [asia, porcelain], trec_win())
        assert result.matchset.is_valid()
        assert result.matchset["asia"].location != result.matchset["porcelain"].location

    def test_empty_when_only_duplicates_exist(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(5, 1.0)]),
            MatchList.from_pairs([(5, 0.9)]),
        ]
        assert not naive_join_valid(q, lists, trec_win())

    def test_matches_filtered_brute_force(self):
        q = Query.of("a", "b", "c")
        lists = [
            MatchList.from_pairs([(1, 0.9), (5, 0.4)]),
            MatchList.from_pairs([(1, 0.8), (6, 0.7)]),
            MatchList.from_pairs([(2, 0.6)]),
        ]
        scoring = trec_med()
        result = naive_join_valid(q, lists, scoring)
        brute = max(
            (scoring.score(m) for m in iterate_matchsets(q, lists) if m.is_valid()),
        )
        assert result.score == pytest.approx(brute)
