"""Algorithm 2 (MED join): correctness against the naive oracle."""

import pytest
from hypothesis import given, settings

from repro.core.algorithms.med_join import med_join
from repro.core.algorithms.naive import naive_join
from repro.core.errors import ScoringContractError
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.presets import eq3, trec_med, trec_win

from tests.conftest import join_instances, med_scorings


class TestMedJoinBasics:
    def test_rejects_non_med_scoring(self):
        q = Query.of("a")
        with pytest.raises(ScoringContractError):
            med_join(q, [MatchList.from_pairs([(1, 0.5)])], trec_win())

    def test_empty_list_gives_empty_result(self):
        q = Query.of("a", "b")
        result = med_join(q, [MatchList.from_pairs([(1, 0.5)]), MatchList()], trec_med())
        assert not result

    def test_single_term(self):
        q = Query.of("a")
        lists = [MatchList.from_pairs([(3, 0.4), (9, 0.8)])]
        result = med_join(q, lists, trec_med())
        assert result.matchset["a"].location == 9

    def test_distinguishes_figure2_clusteredness(self):
        """MED prefers the clustered matchset even with equal windows.

        Figure 2's point: both matchsets span the same window, but the
        second has most matches near the median.
        """
        q = Query.of("a", "b", "c", "d")
        scoring = trec_med()
        spread = [0, 7, 13, 20]  # evenly spread over the window
        clustered = [0, 18, 19, 20]  # same window, clustered at the median
        from repro.core.match import Match
        from repro.core.matchset import MatchSet

        spread_ms = MatchSet.from_sequence(q, [Match(l, 0.5) for l in spread])
        clustered_ms = MatchSet.from_sequence(q, [Match(l, 0.5) for l in clustered])
        assert clustered_ms.window_length == spread_ms.window_length == 20
        assert scoring.score(clustered_ms) > scoring.score(spread_ms)

    def test_equal_location_ties_found(self):
        """Regression: the best matchset realizes its median via a tie."""
        q = Query.of("a", "b", "c")
        lists = [
            MatchList.from_pairs([(5, 0.411)]),
            MatchList.from_pairs([(2, 0.743), (22, 0.624), (34, 0.169)]),
            MatchList.from_pairs([(4, 0.094), (5, 0.574), (23, 0.598), (40, 0.638)]),
        ]
        scoring = trec_med()
        assert med_join(q, lists, scoring).score == pytest.approx(
            naive_join(q, lists, scoring).score
        )

    def test_reports_best_valid_candidate(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(5, 1.0), (7, 0.6)]),
            MatchList.from_pairs([(5, 0.9), (8, 0.8)]),
        ]
        result = med_join(q, lists, trec_med())
        assert result.valid_matchset is not None
        assert result.valid_matchset.is_valid()


class TestMedJoinVsOracle:
    @settings(max_examples=150, deadline=None)
    @given(join_instances(max_terms=4, max_len=5), med_scorings())
    def test_score_equals_naive(self, instance, scoring):
        query, lists = instance
        fast = med_join(query, lists, scoring)
        slow = naive_join(query, lists, scoring)
        assert fast.score == pytest.approx(slow.score)

    @settings(max_examples=80, deadline=None)
    @given(join_instances(max_terms=4, max_len=4, max_location=6))
    def test_score_equals_naive_with_heavy_ties(self, instance):
        query, lists = instance
        scoring = eq3(0.2)
        fast = med_join(query, lists, scoring)
        slow = naive_join(query, lists, scoring)
        assert fast.score == pytest.approx(slow.score)

    @settings(max_examples=60, deadline=None)
    @given(join_instances(min_terms=5, max_terms=6, max_len=3))
    def test_score_equals_naive_for_larger_queries(self, instance):
        query, lists = instance
        scoring = trec_med()
        fast = med_join(query, lists, scoring)
        slow = naive_join(query, lists, scoring)
        assert fast.score == pytest.approx(slow.score)

    @settings(max_examples=50, deadline=None)
    @given(join_instances(max_terms=4, max_len=5))
    def test_returned_matchset_achieves_reported_score(self, instance):
        query, lists = instance
        scoring = trec_med()
        result = med_join(query, lists, scoring)
        assert scoring.score(result.matchset) == pytest.approx(result.score)
