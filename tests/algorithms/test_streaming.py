"""Streaming MED by-location (the paper's future-work algorithm)."""

import pytest
from hypothesis import given, settings

from repro.core.algorithms.by_location import med_by_location
from repro.core.algorithms.streaming import med_by_location_streaming
from repro.core.errors import ScoringContractError
from repro.core.match import Match, MatchList
from repro.core.query import Query
from repro.core.scoring.presets import eq3, trec_med, trec_win

from tests.conftest import join_instances


class TestStreamingBasics:
    def test_rejects_non_med_scoring(self):
        q = Query.of("a")
        with pytest.raises(ScoringContractError):
            list(med_by_location_streaming(q, [MatchList.from_pairs([(1, 0.5)])], trec_win()))

    def test_rejects_scores_above_bound(self):
        q = Query.of("a")
        events = [(0, Match(1, 0.9)), (0, Match(2, 0.95))]
        with pytest.raises(ScoringContractError):
            list(
                med_by_location_streaming(
                    q, events, trec_med(), score_upper_bound=0.9
                )
            )

    def test_rejects_out_of_order_events(self):
        q = Query.of("a")
        events = [(0, Match(5, 0.5)), (0, Match(1, 0.5))]
        with pytest.raises(ScoringContractError):
            list(med_by_location_streaming(q, events, trec_med()))

    def test_empty_list_yields_nothing(self):
        q = Query.of("a", "b")
        out = list(
            med_by_location_streaming(
                q, [MatchList.from_pairs([(1, 0.5)]), MatchList()], trec_med()
            )
        )
        assert out == []

    def test_anchors_emitted_in_order(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(1, 0.5), (10, 0.5), (20, 0.5)]),
            MatchList.from_pairs([(2, 0.5), (11, 0.5)]),
        ]
        anchors = [r.anchor for r in med_by_location_streaming(q, lists, trec_med())]
        assert anchors == sorted(anchors)


class TestStreamingMatchesBatch:
    @settings(max_examples=120, deadline=None)
    @given(join_instances(max_terms=4, max_len=6, max_location=40))
    def test_same_anchors_and_scores(self, instance):
        query, lists = instance
        for scoring in (trec_med(), eq3(0.2)):
            batch = {r.anchor: r.score for r in med_by_location(query, lists, scoring)}
            stream = {
                r.anchor: r.score
                for r in med_by_location_streaming(query, lists, scoring)
            }
            assert set(batch) == set(stream)
            for anchor, score in batch.items():
                assert stream[anchor] == pytest.approx(score)

    @settings(max_examples=50, deadline=None)
    @given(join_instances(max_terms=3, max_len=4, max_location=8))
    def test_tie_heavy_instances(self, instance):
        query, lists = instance
        batch = {r.anchor: r.score for r in med_by_location(query, lists, trec_med())}
        stream = {
            r.anchor: r.score
            for r in med_by_location_streaming(query, lists, trec_med())
        }
        assert set(batch) == set(stream)
        for anchor, score in batch.items():
            assert stream[anchor] == pytest.approx(score)


class TestEarlyEmission:
    def test_emits_before_consuming_whole_stream(self):
        """The point of the algorithm: with dense matches and bounded
        scores, results appear long before the end of the stream."""
        q = Query.of("a", "b", "c")
        consumed = []

        def events():
            for loc in range(0, 1000, 2):
                consumed.append(loc)
                for j in range(3):
                    yield j, Match(loc, 0.9)

        gen = med_by_location_streaming(q, events(), trec_med())
        first = next(gen)
        assert first.anchor == 0
        assert consumed[-1] < 50  # far from the stream's end

    def test_flushes_everything_at_end_of_stream(self):
        """A term that goes silent blocks early emission, but the end of
        the stream finalizes all pending anchors — batch equivalence."""
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(0, 0.9), (500, 0.9)]),
            MatchList.from_pairs([(1, 0.9)]),  # silent after location 1
        ]
        stream = list(med_by_location_streaming(q, lists, trec_med()))
        batch = list(med_by_location(q, lists, trec_med()))
        assert {r.anchor for r in stream} == {r.anchor for r in batch}


class TestMaxStreaming:
    def test_rejects_non_max_scoring(self):
        from repro.core.algorithms.streaming import max_by_location_streaming

        q = Query.of("a")
        with pytest.raises(ScoringContractError):
            list(
                max_by_location_streaming(
                    q, [MatchList.from_pairs([(1, 0.5)])], trec_med()
                )
            )

    @settings(max_examples=100, deadline=None)
    @given(join_instances(max_terms=4, max_len=6, max_location=40))
    def test_matches_batch(self, instance):
        from repro.core.algorithms.by_location import max_by_location
        from repro.core.algorithms.streaming import max_by_location_streaming
        from repro.core.scoring.presets import trec_max

        query, lists = instance
        scoring = trec_max()
        batch = {r.anchor: r.score for r in max_by_location(query, lists, scoring)}
        stream = {
            r.anchor: r.score
            for r in max_by_location_streaming(query, lists, scoring)
        }
        assert set(batch) == set(stream)
        for anchor, score in batch.items():
            assert stream[anchor] == pytest.approx(score)

    def test_emits_before_consuming_whole_stream(self):
        from repro.core.algorithms.streaming import max_by_location_streaming
        from repro.core.scoring.presets import trec_max

        q = Query.of("a", "b", "c")
        consumed = []

        def events():
            for loc in range(0, 1000, 2):
                consumed.append(loc)
                for j in range(3):
                    yield j, Match(loc, 0.9)

        gen = max_by_location_streaming(q, events(), trec_max())
        first = next(gen)
        assert first.anchor == 0
        assert consumed[-1] < 150  # exponential decay needs a longer horizon
