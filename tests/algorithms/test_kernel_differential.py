"""Differential tests: columnar kernels vs the object path.

The kernel layer (:mod:`repro.core.kernels`) promises *byte-identical*
results — same scores (no ``approx``), same tie-breaking, same
``invocations`` counts — to the original object-path joins it replaces.
These tests run the same seeded random instances through both paths
(``REPRO_NO_KERNELS=1`` toggles the escape hatch) and compare exactly,
across all three scoring families, with and without duplicate tokens,
with and without the Section VI duplicate-free join.

They also pin the :func:`rank_top_k` contract: its bound-skipping
ranking equals ``rank_match_lists(...)[:k]`` field for field, on both
paths.
"""

import random

import pytest

from repro.core.api import best_matchset, best_matchsets_by_location
from repro.core.kernels import kernels_enabled
from repro.core.match import Match, MatchList
from repro.core.query import Query
from repro.core.scoring.presets import trec_max, trec_med, trec_win
from repro.retrieval.ranking import rank_match_lists
from repro.retrieval.topk_retrieval import rank_top_k

PRESETS = [
    pytest.param(trec_win, id="win"),
    pytest.param(trec_med, id="med"),
    pytest.param(trec_max, id="max"),
]


def instance(rng, num_terms, max_len, max_location, *, duplicates):
    """One random query + match lists.

    ``duplicates=True`` leaves token ids at their location default, so
    equal locations across lists are Section VI duplicates;
    ``duplicates=False`` gives every match a globally unique token id.
    """
    query = Query.of(*(f"t{i}" for i in range(num_terms)))
    lists = []
    for j in range(num_terms):
        matches = []
        for i in range(rng.randint(1, max_len)):
            location = rng.randint(0, max_location)
            score = rng.uniform(0.05, 1.0)
            token_id = None if duplicates else 1 + j * 1_000_000 + i
            matches.append(Match(location, score, token_id=token_id))
        lists.append(MatchList(matches))
    return query, lists


def both_paths(monkeypatch, fn):
    """Run ``fn()`` with kernels on, then off; return both results."""
    monkeypatch.delenv("REPRO_NO_KERNELS", raising=False)
    assert kernels_enabled()
    with_kernels = fn()
    monkeypatch.setenv("REPRO_NO_KERNELS", "1")
    assert not kernels_enabled()
    without = fn()
    monkeypatch.delenv("REPRO_NO_KERNELS", raising=False)
    return with_kernels, without


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("duplicates", [False, True], ids=["uniq", "dup"])
@pytest.mark.parametrize("avoid_duplicates", [False, True], ids=["plain", "dedup"])
class TestBestMatchsetDifferential:
    def test_byte_identical(self, monkeypatch, preset, duplicates, avoid_duplicates):
        rng = random.Random(f"diff-{preset.__name__}-{duplicates}-{avoid_duplicates}")
        scoring = preset()
        for trial in range(25):
            num_terms = rng.randint(1, 4)
            query, lists = instance(
                rng, num_terms, max_len=6, max_location=18, duplicates=duplicates
            )
            kernel, obj = both_paths(
                monkeypatch,
                lambda: best_matchset(
                    query, lists, scoring, avoid_duplicates=avoid_duplicates
                ),
            )
            assert bool(kernel) == bool(obj)
            assert kernel.score == obj.score  # exact, not approx
            assert kernel.matchset == obj.matchset
            assert kernel.invocations == obj.invocations


@pytest.mark.parametrize("preset", PRESETS)
class TestByLocationDifferential:
    def test_streams_identical(self, monkeypatch, preset):
        rng = random.Random(f"byloc-{preset.__name__}")
        scoring = preset()
        for trial in range(15):
            query, lists = instance(
                rng, rng.randint(1, 4), max_len=5, max_location=15, duplicates=True
            )
            kernel, obj = both_paths(
                monkeypatch,
                lambda: list(best_matchsets_by_location(query, lists, scoring)),
            )
            assert len(kernel) == len(obj)
            for a, b in zip(kernel, obj):
                assert a.anchor == b.anchor
                assert a.score == b.score
                assert a.matchset == b.matchset


def corpus_lists(rng, num_docs, num_terms, *, empty_rate=0.15):
    """Per-document lists for a synthetic multi-document collection."""
    docs = []
    for d in range(num_docs):
        lists = []
        for _ in range(num_terms):
            if rng.random() < empty_rate:
                lists.append(MatchList([]))
            else:
                lists.append(
                    MatchList.from_pairs(
                        (rng.randint(0, 30), rng.uniform(0.05, 1.0))
                        for _ in range(rng.randint(1, 6))
                    )
                )
        docs.append((f"doc{d:03d}", lists))
    return docs


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("k", [1, 3, 10])
class TestTopKDifferential:
    def test_rank_top_k_equals_full_ranking_prefix(self, monkeypatch, preset, k):
        rng = random.Random(f"topk-{preset.__name__}-{k}")
        scoring = preset()
        query = Query.of("a", "b", "c")
        docs = corpus_lists(rng, num_docs=40, num_terms=3)

        def run():
            full = rank_match_lists(docs, query, scoring)
            top = rank_top_k(docs, query, scoring, k)
            return full, top

        (full_k, top_k), (full_o, top_o) = both_paths(monkeypatch, run)
        for full, top in ((full_k, top_k), (full_o, top_o)):
            assert top.ranked == full[: k], "bound skipping changed the ranking"
            assert top.documents_seen == len(docs)
            assert top.joins_run + top.joins_skipped <= len(docs)
        # And the two paths agree with each other, field for field.
        assert full_k == full_o
        assert top_k.ranked == top_o.ranked

    def test_bound_actually_skips(self, monkeypatch, preset, k):
        monkeypatch.delenv("REPRO_NO_KERNELS", raising=False)
        rng = random.Random(f"skip-{preset.__name__}-{k}")
        scoring = preset()
        query = Query.of("a", "b")
        # One strong document first, then many weak ones: the floor is
        # set early and the bound should prune at least some of the rest.
        docs = [
            (
                "doc000",
                [
                    MatchList.from_pairs([(5, 1.0), (6, 1.0)]),
                    MatchList.from_pairs([(5, 1.0), (7, 1.0)]),
                ],
            )
        ]
        for d in range(1, 60):
            docs.append(
                (
                    f"doc{d:03d}",
                    [
                        MatchList.from_pairs(
                            [(rng.randint(0, 50), rng.uniform(0.01, 0.1))]
                        )
                        for _ in range(2)
                    ],
                )
            )
        top = rank_top_k(docs, query, scoring, k)
        assert top.ranked == rank_match_lists(docs, query, scoring)[: k]
        if k == 1:
            assert top.joins_skipped > 0
