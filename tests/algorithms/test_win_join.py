"""Algorithm 1 (WIN join): correctness against the naive oracle."""

import pytest
from hypothesis import given, settings

from repro.core.algorithms.naive import naive_join
from repro.core.algorithms.win_join import win_join
from repro.core.errors import ScoringContractError
from repro.core.match import Match, MatchList
from repro.core.query import Query
from repro.core.scoring.presets import eq1, trec_med, trec_win

from tests.conftest import join_instances, win_scorings


class TestWinJoinBasics:
    def test_rejects_non_win_scoring(self):
        q = Query.of("a")
        with pytest.raises(ScoringContractError):
            win_join(q, [MatchList.from_pairs([(1, 0.5)])], trec_med())

    def test_empty_list_gives_empty_result(self):
        q = Query.of("a", "b")
        result = win_join(q, [MatchList.from_pairs([(1, 0.5)]), MatchList()], trec_win())
        assert not result

    def test_single_term(self):
        q = Query.of("a")
        lists = [MatchList.from_pairs([(1, 0.2), (7, 0.9)])]
        result = win_join(q, lists, trec_win())
        assert result.matchset["a"].location == 7
        assert result.score == pytest.approx(0.9 / 0.3)

    def test_figure1_best_is_tight_cluster(self, three_term_query, figure1_lists):
        """On the Figure 1 example the best matchset comes from the tight
        first-sentence cluster, not the far-apart high-score matches at
        the end of the document."""
        result = win_join(three_term_query, figure1_lists, trec_win())
        assert result.matchset.max_location <= 20
        assert result.matchset.window_length <= 11

    def test_co_located_matches_allowed(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(5, 0.9)]),
            MatchList.from_pairs([(5, 0.8)]),
        ]
        result = win_join(q, lists, trec_win())
        assert result.matchset.window_length == 0

    def test_reports_best_valid_candidate(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(5, 1.0), (7, 0.6)]),
            MatchList.from_pairs([(5, 0.9), (8, 0.8)]),
        ]
        result = win_join(q, lists, trec_win())
        assert not result.matchset.is_valid()  # co-located pair wins overall
        assert result.valid_matchset is not None
        assert result.valid_matchset.is_valid()

    def test_score_matches_scoring_function(self, three_term_query, figure1_lists):
        scoring = trec_win()
        result = win_join(three_term_query, figure1_lists, scoring)
        assert result.score == pytest.approx(scoring.score(result.matchset))


class TestWinJoinVsOracle:
    @settings(max_examples=150, deadline=None)
    @given(join_instances(max_terms=4, max_len=5), win_scorings())
    def test_score_equals_naive(self, instance, scoring):
        query, lists = instance
        fast = win_join(query, lists, scoring)
        slow = naive_join(query, lists, scoring)
        assert fast.score == pytest.approx(slow.score)

    @settings(max_examples=60, deadline=None)
    @given(join_instances(max_terms=3, max_len=4, max_location=6))
    def test_score_equals_naive_with_heavy_ties(self, instance):
        query, lists = instance
        scoring = eq1(0.2)
        fast = win_join(query, lists, scoring)
        slow = naive_join(query, lists, scoring)
        assert fast.score == pytest.approx(slow.score)

    @settings(max_examples=50, deadline=None)
    @given(join_instances(max_terms=4, max_len=5))
    def test_returned_matchset_achieves_reported_score(self, instance):
        query, lists = instance
        scoring = trec_win()
        result = win_join(query, lists, scoring)
        assert scoring.score(result.matchset) == pytest.approx(result.score)
