"""Top-k locally-best matchsets."""

import pytest
from hypothesis import given, settings

from repro.core.algorithms.topk import top_k_matchsets
from repro.core.api import best_matchsets_by_location
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.presets import trec_max, trec_med, trec_win

from tests.conftest import join_instances


@pytest.fixture
def instance():
    q = Query.of("a", "b")
    lists = [
        MatchList.from_pairs([(1, 0.9), (20, 0.8), (40, 0.9)]),
        MatchList.from_pairs([(2, 0.9), (21, 0.9), (41, 0.2)]),
    ]
    return q, lists


class TestTopK:
    def test_rejects_nonpositive_k(self, instance):
        q, lists = instance
        with pytest.raises(ValueError):
            top_k_matchsets(q, lists, trec_win(), 0)

    def test_results_sorted_best_first(self, instance):
        q, lists = instance
        results = top_k_matchsets(q, lists, trec_win(), 3)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_output(self, instance):
        q, lists = instance
        assert len(top_k_matchsets(q, lists, trec_win(), 2)) == 2
        assert len(top_k_matchsets(q, lists, trec_win(), 100)) == len(
            list(best_matchsets_by_location(q, lists, trec_win()))
        )

    def test_top1_equals_by_location_best(self, instance):
        q, lists = instance
        for scoring in (trec_win(), trec_med(), trec_max()):
            top = top_k_matchsets(q, lists, scoring, 1)[0]
            best = max(
                best_matchsets_by_location(q, lists, scoring),
                key=lambda r: r.score,
            )
            assert top.score == pytest.approx(best.score)

    def test_require_valid_filters_duplicates(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(5, 1.0), (9, 0.5)]),
            MatchList.from_pairs([(5, 0.9), (10, 0.5)]),
        ]
        results = top_k_matchsets(q, lists, trec_win(), 5, require_valid=True)
        assert results
        assert all(r.matchset.is_valid() for r in results)

    def test_min_anchor_gap(self, instance):
        q, lists = instance
        results = top_k_matchsets(q, lists, trec_win(), 3, min_anchor_gap=15)
        anchors = [r.anchor for r in results]
        for i, a in enumerate(anchors):
            for b in anchors[i + 1 :]:
                assert abs(a - b) >= 15

    @settings(max_examples=50, deadline=None)
    @given(join_instances(max_terms=3, max_len=4))
    def test_matches_sorted_by_location_oracle(self, inst):
        query, lists = inst
        scoring = trec_med()
        everything = sorted(
            best_matchsets_by_location(query, lists, scoring),
            key=lambda r: (-r.score, r.anchor),
        )
        k = 3
        got = top_k_matchsets(query, lists, scoring, k)
        assert [(r.anchor, r.score) for r in got] == [
            (r.anchor, r.score) for r in everything[:k]
        ]
