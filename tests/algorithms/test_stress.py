"""Seeded stress tests at larger query sizes.

Hypothesis keeps the per-example instances small; these deterministic
sweeps push every fast join against the naive oracle on bigger queries
(|Q| = 5–6) and longer lists, where the subset DP, the median-rank
bookkeeping and the envelope machinery have the most room to go wrong.
"""

import random

import pytest

from repro.core.algorithms.dedup import dedup_join
from repro.core.algorithms.max_join import general_max_join, max_join
from repro.core.algorithms.med_join import med_join
from repro.core.algorithms.naive import naive_join, naive_join_valid
from repro.core.algorithms.win_join import win_join
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.presets import trec_max, trec_med, trec_win


def instance(rng: random.Random, num_terms: int, max_len: int, max_location: int):
    query = Query.of(*(f"t{i}" for i in range(num_terms)))
    lists = [
        MatchList.from_pairs(
            [
                (rng.randint(0, max_location), rng.uniform(0.05, 1.0))
                for _ in range(rng.randint(1, max_len))
            ]
        )
        for _ in range(num_terms)
    ]
    return query, lists


CASES = [
    # (num_terms, max_len, max_location, trials) — products stay < ~3000
    (5, 4, 60, 12),
    (5, 4, 10, 12),  # heavy location ties
    (6, 3, 80, 10),
    (6, 3, 12, 10),
]


@pytest.mark.parametrize("num_terms,max_len,max_location,trials", CASES)
class TestLargeQueryAgreement:
    def test_win(self, num_terms, max_len, max_location, trials):
        rng = random.Random(f"win-{num_terms}-{max_location}")
        scoring = trec_win()
        for _ in range(trials):
            query, lists = instance(rng, num_terms, max_len, max_location)
            assert win_join(query, lists, scoring).score == pytest.approx(
                naive_join(query, lists, scoring).score
            )

    def test_med(self, num_terms, max_len, max_location, trials):
        rng = random.Random(f"med-{num_terms}-{max_location}")
        scoring = trec_med()
        for _ in range(trials):
            query, lists = instance(rng, num_terms, max_len, max_location)
            assert med_join(query, lists, scoring).score == pytest.approx(
                naive_join(query, lists, scoring).score
            )

    def test_max(self, num_terms, max_len, max_location, trials):
        rng = random.Random(f"max-{num_terms}-{max_location}")
        scoring = trec_max()
        for _ in range(trials):
            query, lists = instance(rng, num_terms, max_len, max_location)
            fast = max_join(query, lists, scoring).score
            oracle = naive_join(query, lists, scoring).score
            assert fast == pytest.approx(oracle)
            assert general_max_join(query, lists, scoring).score == pytest.approx(oracle)

    def test_dedup(self, num_terms, max_len, max_location, trials):
        rng = random.Random(f"dedup-{num_terms}-{max_location}")
        scoring = trec_med()
        for _ in range(trials):
            query, lists = instance(rng, num_terms, max_len, max_location)
            oracle = naive_join_valid(query, lists, scoring)
            got = dedup_join(query, lists, scoring, med_join)
            assert bool(oracle) == bool(got)
            if oracle:
                assert got.score == pytest.approx(oracle.score)
