"""The public façade: best_matchset / by-location / extract_matchsets."""

import pytest
from hypothesis import given, settings

from repro.core.algorithms.naive import naive_join, naive_join_valid
from repro.core.api import best_matchset, best_matchsets_by_location, extract_matchsets
from repro.core.errors import ScoringContractError
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.base import ScoringFunction
from repro.core.scoring.presets import trec_max, trec_med, trec_win

from tests.conftest import join_instances


class TestBestMatchset:
    @settings(max_examples=60, deadline=None)
    @given(join_instances(max_terms=3, max_len=4, max_location=12))
    def test_with_duplicate_avoidance(self, instance):
        query, lists = instance
        for scoring in (trec_win(), trec_med(), trec_max()):
            oracle = naive_join_valid(query, lists, scoring)
            got = best_matchset(query, lists, scoring)
            assert bool(oracle) == bool(got)
            if oracle:
                assert got.score == pytest.approx(oracle.score)

    @settings(max_examples=60, deadline=None)
    @given(join_instances(max_terms=3, max_len=4))
    def test_without_duplicate_avoidance(self, instance):
        query, lists = instance
        for scoring in (trec_win(), trec_med(), trec_max()):
            oracle = naive_join(query, lists, scoring)
            got = best_matchset(query, lists, scoring, avoid_duplicates=False)
            assert got.score == pytest.approx(oracle.score)

    def test_empty_lists(self):
        q = Query.of("a", "b")
        assert not best_matchset(q, [MatchList(), MatchList()], trec_win())


class TestBestMatchsetsByLocation:
    def test_dispatches_all_families(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(1, 0.5), (9, 0.8)]),
            MatchList.from_pairs([(2, 0.7)]),
        ]
        for scoring in (trec_win(), trec_med(), trec_max()):
            results = list(best_matchsets_by_location(q, lists, scoring))
            assert results, scoring
            anchors = [r.anchor for r in results]
            assert anchors == sorted(anchors)

    def test_unknown_family_rejected(self):
        class Weird(ScoringFunction):
            def score(self, matchset):
                return 0.0

        q = Query.of("a")
        with pytest.raises(ScoringContractError):
            best_matchsets_by_location(q, [MatchList.from_pairs([(1, 0.5)])], Weird())


class TestExtractMatchsets:
    @pytest.fixture
    def instance(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(1, 0.9), (20, 0.9), (40, 0.9)]),
            MatchList.from_pairs([(2, 0.9), (21, 0.9), (41, 0.3)]),
        ]
        return q, lists

    def test_sorted_by_descending_score(self, instance):
        q, lists = instance
        results = extract_matchsets(q, lists, trec_win())
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_min_score_filters(self, instance):
        q, lists = instance
        all_results = extract_matchsets(q, lists, trec_win())
        threshold = all_results[0].score
        top_only = extract_matchsets(q, lists, trec_win(), min_score=threshold)
        assert all(r.score >= threshold for r in top_only)
        assert len(top_only) <= len(all_results)

    def test_min_anchor_gap_suppresses_near_anchors(self, instance):
        q, lists = instance
        spread = extract_matchsets(q, lists, trec_win(), min_anchor_gap=10)
        anchors = [r.anchor for r in spread]
        for i, a in enumerate(anchors):
            for b in anchors[i + 1 :]:
                assert abs(a - b) >= 10

    def test_require_valid_drops_duplicates(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(5, 1.0), (9, 0.5)]),
            MatchList.from_pairs([(5, 0.9), (10, 0.5)]),
        ]
        results = extract_matchsets(q, lists, trec_win(), require_valid=True)
        assert all(r.matchset.is_valid() for r in results)
        relaxed = extract_matchsets(q, lists, trec_win(), require_valid=False)
        assert len(relaxed) >= len(results)
