"""k-best WIN enumeration and lazy valid search."""

import pytest
from hypothesis import given, settings

from repro.core.algorithms.naive import iterate_matchsets, naive_join_valid
from repro.core.algorithms.win_join import win_join
from repro.core.algorithms.win_kbest import win_join_kbest, win_join_valid_lazy
from repro.core.errors import ScoringContractError
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.presets import eq1, trec_med, trec_win

from tests.conftest import join_instances


class TestKBestBasics:
    def test_rejects_non_win_scoring(self):
        q = Query.of("a")
        with pytest.raises(ScoringContractError):
            win_join_kbest(q, [MatchList.from_pairs([(1, 0.5)])], trec_med(), 2)

    def test_rejects_nonpositive_k(self):
        q = Query.of("a")
        with pytest.raises(ValueError):
            win_join_kbest(q, [MatchList.from_pairs([(1, 0.5)])], trec_win(), 0)

    def test_empty_list_gives_no_results(self):
        q = Query.of("a", "b")
        assert win_join_kbest(q, [MatchList.from_pairs([(1, 0.5)]), MatchList()], trec_win(), 3) == []

    def test_k1_matches_win_join(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(1, 0.9), (8, 0.4)]),
            MatchList.from_pairs([(2, 0.7), (9, 0.6)]),
        ]
        top = win_join_kbest(q, lists, trec_win(), 1)
        assert len(top) == 1
        assert top[0].score == pytest.approx(win_join(q, lists, trec_win()).score)

    def test_fewer_results_than_k_when_cross_product_small(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(1, 0.9)]),
            MatchList.from_pairs([(2, 0.7), (9, 0.6)]),
        ]
        assert len(win_join_kbest(q, lists, trec_win(), 10)) == 2

    def test_results_distinct_and_sorted(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(1, 0.9), (8, 0.4), (15, 0.2)]),
            MatchList.from_pairs([(2, 0.7), (9, 0.6)]),
        ]
        results = win_join_kbest(q, lists, trec_win(), 6)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)
        assert len({tuple(sorted(r.matchset.locations)) for r in results}) == len(results)


class TestKBestVsOracle:
    @settings(max_examples=120, deadline=None)
    @given(join_instances(max_terms=3, max_len=4))
    def test_scores_match_naive_topk(self, instance):
        query, lists = instance
        scoring = trec_win()
        k = 5
        got = [r.score for r in win_join_kbest(query, lists, scoring, k)]
        want = sorted(
            (scoring.score(ms) for ms in iterate_matchsets(query, lists)),
            reverse=True,
        )[:k]
        assert got == pytest.approx(want)

    @settings(max_examples=60, deadline=None)
    @given(join_instances(max_terms=3, max_len=4, max_location=8))
    def test_scores_match_naive_topk_with_ties(self, instance):
        query, lists = instance
        scoring = eq1(0.2)
        k = 4
        got = [r.score for r in win_join_kbest(query, lists, scoring, k)]
        want = sorted(
            (scoring.score(ms) for ms in iterate_matchsets(query, lists)),
            reverse=True,
        )[:k]
        assert got == pytest.approx(want)

    @settings(max_examples=60, deadline=None)
    @given(join_instances(max_terms=3, max_len=4))
    def test_reported_scores_are_achieved(self, instance):
        query, lists = instance
        scoring = trec_win()
        for result in win_join_kbest(query, lists, scoring, 4):
            assert scoring.score(result.matchset) == pytest.approx(result.score)


class TestValidLazy:
    @settings(max_examples=100, deadline=None)
    @given(join_instances(max_terms=3, max_len=4, max_location=10))
    def test_matches_exhaustive_valid_oracle(self, instance):
        query, lists = instance
        scoring = trec_win()
        oracle = naive_join_valid(query, lists, scoring)
        got = win_join_valid_lazy(query, lists, scoring)
        assert bool(oracle) == bool(got)
        if oracle:
            assert got.score == pytest.approx(oracle.score)
            assert got.matchset.is_valid()

    def test_single_pass_when_best_is_valid(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(1, 0.9)]),
            MatchList.from_pairs([(2, 0.9)]),
        ]
        result = win_join_valid_lazy(q, lists, trec_win())
        assert result.invocations == 1

    def test_empty_when_no_valid_matchset(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(5, 1.0)]),
            MatchList.from_pairs([(5, 0.9)]),
        ]
        assert not win_join_valid_lazy(q, lists, trec_win())

    def test_max_k_caps_the_search(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(i, 0.9) for i in range(10)]),
            MatchList.from_pairs([(i, 0.8) for i in range(10)]),
        ]
        result = win_join_valid_lazy(q, lists, trec_win(), initial_k=1, max_k=2)
        # With every pair co-located the valid optimum may be beyond the
        # cap; either way the cap bounds the enumeration.
        assert result.invocations <= 2
