"""Algorithm selection and the skew fix."""

import pytest

from repro.core.algorithms.auto import (
    dispatch_join,
    family_algorithm,
    is_extremely_skewed,
    select_algorithm,
)
from repro.core.algorithms.max_join import general_max_join, max_join
from repro.core.algorithms.med_join import med_join
from repro.core.algorithms.naive import naive_join
from repro.core.algorithms.win_join import win_join
from repro.core.errors import ScoringContractError
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.base import ScoringFunction
from repro.core.scoring.maxloc import CustomMax
from repro.core.scoring.presets import trec_max, trec_med, trec_win


class TestFamilyAlgorithm:
    def test_dispatch_by_family(self):
        assert family_algorithm(trec_win()) is win_join
        assert family_algorithm(trec_med()) is med_join
        assert family_algorithm(trec_max()) is max_join

    def test_general_max_without_properties(self):
        scoring = CustomMax(
            g=lambda x, y: x - y, f=lambda x: x,
            anchor_candidates=lambda m: m.locations,
        )
        assert family_algorithm(scoring) is general_max_join

    def test_type_anchored_routes_to_its_own_join(self):
        """The free-anchor MAX joins compute a different maximum, so the
        dispatcher must never hand them a TypeAnchoredMax."""
        from repro.core.algorithms.type_anchored import type_anchored_join
        from repro.core.scoring.type_anchored import TypeAnchoredMax

        assert family_algorithm(TypeAnchoredMax(0)) is type_anchored_join

    def test_unknown_family_rejected(self):
        class Weird(ScoringFunction):
            def score(self, matchset):
                return 0.0

        with pytest.raises(ScoringContractError):
            family_algorithm(Weird())


class TestSkewFix:
    def test_detects_extreme_skew(self):
        lists = [
            MatchList.from_pairs([(i, 0.5) for i in range(10)]),
            MatchList.from_pairs([(3, 0.5)]),
            MatchList.from_pairs([(7, 0.5)]),
        ]
        assert is_extremely_skewed(lists)

    def test_not_skewed_with_two_long_lists(self):
        lists = [
            MatchList.from_pairs([(1, 0.5), (2, 0.5)]),
            MatchList.from_pairs([(3, 0.5), (4, 0.5)]),
        ]
        assert not is_extremely_skewed(lists)

    def test_select_prefers_naive_on_skew(self):
        lists = [
            MatchList.from_pairs([(i, 0.5) for i in range(10)]),
            MatchList.from_pairs([(3, 0.5)]),
        ]
        assert select_algorithm(trec_med(), lists) is naive_join
        assert select_algorithm(trec_med(), lists, skew_fix=False) is med_join

    def test_dispatch_results_agree_with_and_without_fix(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(i, 0.1 * (i % 9) + 0.1) for i in range(10)]),
            MatchList.from_pairs([(3, 0.5)]),
        ]
        with_fix = dispatch_join(q, lists, trec_med(), skew_fix=True)
        without = dispatch_join(q, lists, trec_med(), skew_fix=False)
        assert with_fix.score == pytest.approx(without.score)
