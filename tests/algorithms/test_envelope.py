"""Dominance stacks, scanners and upper envelopes (Definition 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms.envelope import (
    DominatingScanner,
    UpperEnvelope,
    dominance_stack,
)
from repro.core.match import Match, MatchList
from repro.core.scoring.presets import trec_max, trec_med


def med_contribution(m: Match, l: int) -> float:
    """AdditiveMed contribution for term 0 with scale 0.3."""
    return m.score / 0.3 - abs(m.location - l)


def max_contribution(m: Match, l: int) -> float:
    """Eq. (5) contribution for term 0 with alpha 0.1."""
    return trec_max().contribution(0, m, l)


def brute_force_max(matches, contribution, l):
    return max(contribution(m, l) for m in matches)


_match_lists = st.lists(
    st.tuples(st.integers(0, 40), st.floats(0.05, 1.0)), min_size=1, max_size=10
).map(lambda pairs: MatchList.from_pairs(pairs))


class TestDominanceStack:
    def test_single_match(self):
        m = Match(5, 0.5)
        assert dominance_stack([m], med_contribution) == [m]

    def test_dominated_match_dropped(self):
        # A weak match right next to a strong one never dominates anywhere.
        strong = Match(5, 1.0)
        weak = Match(6, 0.05)
        stack = dominance_stack(MatchList([strong, weak]), med_contribution)
        assert stack == [strong]

    def test_stack_ordered_by_location(self):
        lst = MatchList.from_pairs([(0, 0.9), (10, 0.9), (20, 0.9), (30, 0.9)])
        stack = dominance_stack(lst, med_contribution)
        assert [m.location for m in stack] == [0, 10, 20, 30]

    def test_tie_keeps_later_match(self):
        """Footnote 4: ties break toward the match that comes last."""
        a, b = Match(5, 0.5), Match(5, 0.5)
        stack = dominance_stack([a, b], med_contribution)
        assert stack == [b]

    @settings(max_examples=120)
    @given(_match_lists, st.sampled_from(["med", "max"]))
    def test_stack_achieves_envelope_everywhere(self, lst, kind):
        contribution = med_contribution if kind == "med" else max_contribution
        stack = dominance_stack(lst, contribution)
        for l in range(-3, 44):
            want = brute_force_max(lst, contribution, l)
            got = brute_force_max(stack, contribution, l)
            assert got == pytest.approx(want)


class TestDominatingScanner:
    @settings(max_examples=100)
    @given(_match_lists, st.sampled_from(["med", "max"]))
    def test_scanner_returns_dominating_match(self, lst, kind):
        contribution = med_contribution if kind == "med" else max_contribution
        scanner = DominatingScanner.for_list(lst, contribution)
        for l in range(0, 41):  # non-decreasing query order
            match, succeeds = scanner.dominating_at(l)
            assert match is not None
            assert contribution(match, l) == pytest.approx(
                brute_force_max(lst, contribution, l)
            )
            assert succeeds == (match.location > l)

    def test_empty_list(self):
        scanner = DominatingScanner.for_list([], med_contribution)
        assert scanner.dominating_at(5) == (None, False)
        assert scanner.value_at(7) == float("-inf")

    def test_tie_prefers_successor(self):
        # Two equal matches equidistant from the query location.
        lst = MatchList.from_pairs([(0, 0.5), (10, 0.5)])
        scanner = DominatingScanner.for_list(lst, med_contribution)
        match, succeeds = scanner.dominating_at(5)
        assert match.location == 10
        assert succeeds


class TestUpperEnvelope:
    @settings(max_examples=100)
    @given(_match_lists, st.sampled_from(["med", "max"]))
    def test_envelope_value_matches_brute_force(self, lst, kind):
        contribution = med_contribution if kind == "med" else max_contribution
        env = UpperEnvelope(lst, contribution)
        for l in range(-3, 44):
            assert env.value_at(l) == pytest.approx(
                brute_force_max(lst, contribution, l)
            )

    def test_segment_count_bounded_by_list_size(self):
        lst = MatchList.from_pairs([(i * 3, 0.5 + 0.04 * i) for i in range(10)])
        env = UpperEnvelope(lst, med_contribution)
        assert 1 <= len(env) <= len(lst)

    def test_segments_partition_the_line(self):
        lst = MatchList.from_pairs([(0, 0.9), (20, 0.9), (40, 0.9)])
        env = UpperEnvelope(lst, med_contribution)
        segments = env.segments
        assert segments[-1].end is None
        for a, b in zip(segments, segments[1:]):
            assert a.end is not None and b.start == a.end + 1

    def test_empty_envelope(self):
        env = UpperEnvelope([], med_contribution)
        assert len(env) == 0
        assert env.dominating_at(3) is None
        assert env.value_at(3) == float("-inf")

    def test_breakpoints_include_match_locations(self):
        lst = MatchList.from_pairs([(0, 0.9), (20, 0.9)])
        env = UpperEnvelope(lst, med_contribution)
        points = env.breakpoints()
        assert 0 in points and 20 in points
