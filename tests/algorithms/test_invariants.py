"""Deeper algorithmic invariants.

Properties that hold across the whole algorithm family and catch subtle
implementation drift:

* translation invariance — every scoring family depends only on
  *relative* locations, so shifting a whole document never changes any
  join score (and shifts anchors by exactly the offset);
* input-order invariance — per-term lists are unordered inputs, so
  permuting them (with the query) never changes the best score;
* valid-candidate soundness — the lower-bound candidates the joins
  report for the dedup search are genuinely valid and never beat the
  unconstrained optimum.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms.by_location import med_by_location, win_by_location
from repro.core.algorithms.max_join import max_join
from repro.core.algorithms.med_join import med_join
from repro.core.algorithms.win_join import win_join
from repro.core.match import Match, MatchList
from repro.core.query import Query
from repro.core.scoring.presets import trec_max, trec_med, trec_win

from tests.conftest import join_instances


def shift_lists(lists, offset):
    return [
        MatchList(
            [Match(m.location + offset, m.score, token=m.token) for m in lst],
            term=lst.term,
        )
        for lst in lists
    ]


class TestTranslationInvariance:
    @settings(max_examples=60, deadline=None)
    @given(join_instances(max_terms=4, max_len=5), st.integers(1, 500))
    def test_join_scores_are_translation_invariant(self, instance, offset):
        query, lists = instance
        shifted = shift_lists(lists, offset)
        for scoring, join in (
            (trec_win(), win_join),
            (trec_med(), med_join),
            (trec_max(), max_join),
        ):
            original = join(query, lists, scoring).score
            moved = join(query, shifted, scoring).score
            assert moved == pytest.approx(original), type(scoring).__name__

    @settings(max_examples=40, deadline=None)
    @given(join_instances(max_terms=3, max_len=4), st.integers(1, 200))
    def test_by_location_anchors_shift_with_the_document(self, instance, offset):
        query, lists = instance
        shifted = shift_lists(lists, offset)
        for scoring, by_loc in (
            (trec_win(), win_by_location),
            (trec_med(), med_by_location),
        ):
            original = {r.anchor: r.score for r in by_loc(query, lists, scoring)}
            moved = {r.anchor: r.score for r in by_loc(query, shifted, scoring)}
            assert set(moved) == {a + offset for a in original}
            for anchor, score in original.items():
                assert moved[anchor + offset] == pytest.approx(score)


class TestInputOrderInvariance:
    @settings(max_examples=60, deadline=None)
    @given(join_instances(min_terms=2, max_terms=4, max_len=5))
    def test_best_score_invariant_under_term_permutation(self, instance):
        query, lists = instance
        reversed_query = Query(list(reversed(query.terms)))
        reversed_lists = list(reversed(lists))
        for scoring, join in (
            (trec_win(), win_join),
            (trec_med(), med_join),
            (trec_max(), max_join),
        ):
            a = join(query, lists, scoring).score
            b = join(reversed_query, reversed_lists, scoring).score
            assert a == pytest.approx(b), type(scoring).__name__


class TestValidCandidateSoundness:
    @settings(max_examples=80, deadline=None)
    @given(join_instances(max_terms=4, max_len=5, max_location=12))
    def test_reported_valid_candidates(self, instance):
        query, lists = instance
        for scoring, join in (
            (trec_win(), win_join),
            (trec_med(), med_join),
            (trec_max(), max_join),
        ):
            result = join(query, lists, scoring)
            if result.valid_matchset is None:
                continue
            assert result.valid_matchset.is_valid()
            # A valid candidate can never outscore the unconstrained best.
            assert scoring.score(result.valid_matchset) <= result.score + 1e-9
