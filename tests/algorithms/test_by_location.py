"""Best-matchset-by-location (Section VII) against brute-force oracles."""

import itertools

import pytest
from hypothesis import given, settings

from repro.core.algorithms.by_location import (
    max_by_location,
    med_by_location,
    win_by_location,
)
from repro.core.algorithms.max_join import max_join
from repro.core.algorithms.med_join import med_join
from repro.core.algorithms.naive import iterate_matchsets
from repro.core.algorithms.win_join import win_join
from repro.core.errors import ScoringContractError
from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.presets import trec_max, trec_med, trec_win

from tests.conftest import join_instances


def oracle_by_anchor(query, lists, scoring, anchor_of):
    best: dict[int, float] = {}
    for ms in iterate_matchsets(query, lists):
        anchor = anchor_of(ms)
        s = scoring.score(ms)
        if anchor not in best or s > best[anchor]:
            best[anchor] = s
    return best


class TestWinByLocation:
    def test_rejects_wrong_scoring(self):
        with pytest.raises(ScoringContractError):
            list(win_by_location(Query.of("a"), [MatchList()], trec_med()))

    def test_empty_list_yields_nothing(self):
        q = Query.of("a", "b")
        out = list(win_by_location(q, [MatchList.from_pairs([(1, 0.5)]), MatchList()], trec_win()))
        assert out == []

    def test_anchors_increase(self):
        q = Query.of("a", "b")
        lists = [
            MatchList.from_pairs([(1, 0.5), (5, 0.5), (9, 0.5)]),
            MatchList.from_pairs([(2, 0.5), (6, 0.5)]),
        ]
        anchors = [r.anchor for r in win_by_location(q, lists, trec_win())]
        assert anchors == sorted(anchors)

    def test_is_streaming_generator(self):
        """Results are produced lazily, one anchor at a time."""
        q = Query.of("a")
        lists = [MatchList.from_pairs([(i, 0.5) for i in range(10)])]
        gen = win_by_location(q, lists, trec_win())
        first = next(gen)
        assert first.anchor == 0  # emitted before the input is exhausted

    @settings(max_examples=80, deadline=None)
    @given(join_instances(max_terms=3, max_len=4, max_location=15))
    def test_matches_oracle(self, instance):
        query, lists = instance
        scoring = trec_win()
        oracle = oracle_by_anchor(query, lists, scoring, lambda m: m.max_location)
        got = {r.anchor: r.score for r in win_by_location(query, lists, scoring)}
        assert set(got) == set(oracle)
        for anchor, score in oracle.items():
            assert got[anchor] == pytest.approx(score)

    @settings(max_examples=40, deadline=None)
    @given(join_instances(max_terms=3, max_len=4))
    def test_best_by_location_max_equals_overall_best(self, instance):
        query, lists = instance
        scoring = trec_win()
        overall = win_join(query, lists, scoring)
        per_anchor = list(win_by_location(query, lists, scoring))
        assert max(r.score for r in per_anchor) == pytest.approx(overall.score)


class TestMedByLocation:
    def test_rejects_wrong_scoring(self):
        with pytest.raises(ScoringContractError):
            list(med_by_location(Query.of("a"), [MatchList()], trec_win()))

    @settings(max_examples=80, deadline=None)
    @given(join_instances(max_terms=4, max_len=4, max_location=15))
    def test_matches_oracle(self, instance):
        query, lists = instance
        scoring = trec_med()
        oracle = oracle_by_anchor(query, lists, scoring, lambda m: m.median_location)
        got = {r.anchor: r.score for r in med_by_location(query, lists, scoring)}
        # Every anchor with a matchset must be reported at the exact score.
        for anchor, score in oracle.items():
            assert got[anchor] == pytest.approx(score), f"anchor {anchor}"
        # And no reported anchor may exceed what's achievable there.
        for anchor, score in got.items():
            if anchor in oracle:
                assert score <= oracle[anchor] + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(join_instances(max_terms=4, max_len=4))
    def test_best_by_location_max_equals_overall_best(self, instance):
        query, lists = instance
        scoring = trec_med()
        overall = med_join(query, lists, scoring)
        per_anchor = list(med_by_location(query, lists, scoring))
        assert max(r.score for r in per_anchor) == pytest.approx(overall.score)

    def test_matchsets_have_their_anchor_as_median(self):
        q = Query.of("a", "b", "c")
        lists = [
            MatchList.from_pairs([(1, 0.5), (8, 0.9)]),
            MatchList.from_pairs([(4, 0.7), (12, 0.2)]),
            MatchList.from_pairs([(6, 0.6)]),
        ]
        for r in med_by_location(q, lists, trec_med()):
            assert r.matchset.median_location == r.anchor


class TestMaxByLocation:
    def test_rejects_wrong_scoring(self):
        with pytest.raises(ScoringContractError):
            list(max_by_location(Query.of("a"), [MatchList()], trec_win()))

    @settings(max_examples=80, deadline=None)
    @given(join_instances(max_terms=3, max_len=4, max_location=15))
    def test_value_is_envelope_sum(self, instance):
        """At every match location l the reported score is f(Σ_j S_j(l))."""
        query, lists = instance
        scoring = trec_max()
        got = {r.anchor: r.score for r in max_by_location(query, lists, scoring)}
        locations = sorted({loc for lst in lists for loc in lst.locations})
        assert sorted(got) == locations
        for l in locations:
            want = scoring.f(
                sum(
                    max(scoring.contribution(j, m, l) for m in lists[j])
                    for j in range(len(lists))
                )
            )
            assert got[l] == pytest.approx(want)

    @settings(max_examples=40, deadline=None)
    @given(join_instances(max_terms=3, max_len=4))
    def test_best_by_location_max_equals_overall_best(self, instance):
        query, lists = instance
        scoring = trec_max()
        overall = max_join(query, lists, scoring)
        per_anchor = list(max_by_location(query, lists, scoring))
        assert max(r.score for r in per_anchor) == pytest.approx(overall.score)
