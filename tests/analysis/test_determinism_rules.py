"""Fixture tests for the determinism rule."""


class TestCoreDeterminism:
    def test_wall_clock_and_global_rng_fire(self, run_analysis):
        result = run_analysis(
            {
                "core/algorithms/join.py": """
                import random
                import time

                def join(lists):
                    start = time.time()
                    random.shuffle(lists)
                    return lists
                """
            },
            rules=["core-determinism"],
        )
        messages = sorted(f.message for f in result.active)
        assert len(messages) == 2
        assert any("time.time" in m for m in messages)
        assert any("random.shuffle" in m for m in messages)
        assert all(f.symbol == "join" for f in result.active)

    def test_seeded_random_instance_allowed(self, run_analysis):
        result = run_analysis(
            {
                "core/algorithms/contracts.py": """
                import random

                def probe(seed):
                    rng = random.Random(seed)
                    return rng.random()
                """
            },
            rules=["core-determinism"],
        )
        assert result.active == []

    def test_unseeded_random_instance_fires(self, run_analysis):
        result = run_analysis(
            {
                "core/algorithms/bad.py": """
                import random

                def probe():
                    return random.Random().random()
                """
            },
            rules=["core-determinism"],
        )
        assert len(result.active) == 1
        assert "without a seed" in result.active[0].message

    def test_outside_scope_not_checked(self, run_analysis):
        result = run_analysis(
            {
                "svc/timing.py": """
                import time

                def now():
                    return time.time()
                """
            },
            rules=["core-determinism"],
        )
        assert result.active == []

    def test_datetime_now_fires(self, run_analysis):
        result = run_analysis(
            {
                "core/algorithms/stamp.py": """
                import datetime

                def stamp():
                    return datetime.datetime.now()
                """
            },
            rules=["core-determinism"],
        )
        assert len(result.active) == 1
