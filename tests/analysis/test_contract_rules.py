"""Fixture tests for ``wire-contract-drift`` and the contracts registry."""

import json
from dataclasses import replace

import pytest

from repro.analysis.config import WireSurface
from tests.analysis.conftest import FIXTURE_CONFIG

WIRE_MODULE = """
WIRE_VERSION = 3

class Packet:
    def __init__(self, kind, body):
        self.kind = kind
        self.body = body

    def to_wire(self):
        return {
            "version": WIRE_VERSION,
            "kind": self.kind,
            "body": self.body,
        }
"""

SURFACES = (
    WireSurface(
        name="pkt.version",
        kind="version",
        module="svc/wire.py",
        symbol="WIRE_VERSION",
    ),
    WireSurface(
        name="pkt.envelope",
        kind="return-keys",
        module="svc/wire.py",
        symbol="Packet.to_wire",
    ),
)


@pytest.fixture
def contracts_config(tmp_path):
    return replace(
        FIXTURE_CONFIG,
        contracts_file=str(tmp_path / "contracts.json"),
        wire_surfaces=SURFACES,
    )


def _write_pin(tmp_path, surfaces):
    (tmp_path / "contracts.json").write_text(
        json.dumps({"version": 1, "surfaces": surfaces}) + "\n"
    )


def _messages(result):
    return [f.message for f in result.active]


MATCHING_PIN = {
    "pkt.version": {"value": 3},
    "pkt.envelope": {"fields": ["body", "kind", "version"]},
}


class TestContractDrift:
    def test_matching_pin_is_clean(
        self, run_analysis, tmp_path, contracts_config
    ):
        _write_pin(tmp_path, MATCHING_PIN)
        result = run_analysis(
            {"svc/wire.py": WIRE_MODULE},
            rules=["wire-contract-drift"],
            config=contracts_config,
        )
        assert result.active == []

    def test_missing_registry_reports_unpinned_surfaces(
        self, run_analysis, contracts_config
    ):
        result = run_analysis(
            {"svc/wire.py": WIRE_MODULE},
            rules=["wire-contract-drift"],
            config=contracts_config,
        )
        assert len(result.active) == 1
        assert "is missing" in result.active[0].message
        assert "--update-contracts" in result.active[0].message

    def test_version_drift_names_the_surface(
        self, run_analysis, tmp_path, contracts_config
    ):
        _write_pin(tmp_path, {**MATCHING_PIN, "pkt.version": {"value": 2}})
        result = run_analysis(
            {"svc/wire.py": WIRE_MODULE},
            rules=["wire-contract-drift"],
            config=contracts_config,
        )
        (message,) = _messages(result)
        assert "'pkt.version'" in message
        assert "2 -> 3" in message
        assert "reader-compat" in message

    def test_removed_field_names_the_surface(
        self, run_analysis, tmp_path, contracts_config
    ):
        pin = {
            **MATCHING_PIN,
            "pkt.envelope": {"fields": ["body", "checksum", "kind", "version"]},
        }
        _write_pin(tmp_path, pin)
        result = run_analysis(
            {"svc/wire.py": WIRE_MODULE},
            rules=["wire-contract-drift"],
            config=contracts_config,
        )
        (message,) = _messages(result)
        assert "'pkt.envelope'" in message
        assert "checksum" in message
        assert "removed" in message

    def test_added_field_names_the_surface(
        self, run_analysis, tmp_path, contracts_config
    ):
        pin = {**MATCHING_PIN, "pkt.envelope": {"fields": ["kind", "version"]}}
        _write_pin(tmp_path, pin)
        result = run_analysis(
            {"svc/wire.py": WIRE_MODULE},
            rules=["wire-contract-drift"],
            config=contracts_config,
        )
        (message,) = _messages(result)
        assert "'pkt.envelope'" in message
        assert "body" in message
        assert "added" in message

    def test_vanished_anchor_names_the_surface(
        self, run_analysis, tmp_path, contracts_config
    ):
        _write_pin(tmp_path, {**MATCHING_PIN, "pkt.gone": {"value": 1}})
        result = run_analysis(
            {"svc/wire.py": WIRE_MODULE},
            rules=["wire-contract-drift"],
            config=contracts_config,
        )
        (message,) = _messages(result)
        assert "'pkt.gone'" in message
        assert "no longer extracts" in message

    def test_unpinned_surface_fires(
        self, run_analysis, tmp_path, contracts_config
    ):
        _write_pin(tmp_path, {"pkt.version": {"value": 3}})
        result = run_analysis(
            {"svc/wire.py": WIRE_MODULE},
            rules=["wire-contract-drift"],
            config=contracts_config,
        )
        (message,) = _messages(result)
        assert "'pkt.envelope'" in message
        assert "not pinned" in message

    def test_malformed_registry_fires(
        self, run_analysis, tmp_path, contracts_config
    ):
        (tmp_path / "contracts.json").write_text("{not json")
        result = run_analysis(
            {"svc/wire.py": WIRE_MODULE},
            rules=["wire-contract-drift"],
            config=contracts_config,
        )
        (message,) = _messages(result)
        assert "malformed" in message


class TestExtraction:
    def test_wal_and_dispatch_and_error_codes_extract(
        self, run_analysis, tmp_path
    ):
        from repro.analysis.callgraph import ProjectIndex
        from repro.analysis.contracts import extract_surfaces

        source = {
            "svc/store.py": """
            class Store:
                def __init__(self):
                    self._wal = []

                def add(self, doc):
                    self._wal.append({"op": "add", "doc": doc})

                def remove(self, doc_id):
                    self._wal.append({"op": "remove", "doc_id": doc_id})
            """,
            "svc/worker.py": """
            def dispatch(self, message):
                op = message.get("op")
                if op == "query":
                    return 1
                if op == "shutdown":
                    return 2
                self._send_error_json(400, "bad_op", "unknown op")
                self._send_error_json(500, "internal", "boom")
            """,
        }
        import textwrap

        for rel, text in source.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text))
        config = replace(
            FIXTURE_CONFIG,
            wire_surfaces=(
                WireSurface(name="wal", kind="wal-records", module="svc/store.py"),
                WireSurface(
                    name="ops", kind="op-dispatch", module="svc/worker.py"
                ),
                WireSurface(
                    name="codes",
                    kind="error-codes",
                    module="svc/worker.py",
                    detail="_send_error_json",
                ),
            ),
        )
        index = ProjectIndex.from_root(tmp_path, config, display_prefix="")
        extracted = extract_surfaces(index, config)
        assert extracted["wal.add"].fields == ("doc", "op")
        assert extracted["wal.remove"].fields == ("doc_id", "op")
        assert extracted["ops"].fields == ("query", "shutdown")
        assert extracted["codes"].fields == ("bad_op", "internal")
