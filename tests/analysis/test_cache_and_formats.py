"""The result cache, report formats, and ``--update-contracts``."""

import json
import pathlib
import textwrap

from repro.analysis.cli import main as analyze_main

_VIOLATING = """
import threading, time

class Worker:
    def __init__(self):
        self._lock = threading.Lock()

    def bad(self):
        with self._lock:
            time.sleep(0.1)
"""


def _write_fixture(tmp_path):
    pkg = tmp_path / "pkg" / "service"
    pkg.mkdir(parents=True)
    (pkg / "w.py").write_text(textwrap.dedent(_VIOLATING))
    return tmp_path / "pkg"


class TestResultCache:
    def test_warm_run_replays_cached_result(
        self, tmp_path, monkeypatch, capsys
    ):
        root = _write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert analyze_main([str(root), "--no-baseline"]) == 1
        cold = capsys.readouterr().out
        cache_file = tmp_path / ".analysis-cache.json"
        assert cache_file.exists()
        # Tamper with the stored result; an identical second run must
        # come from the cache, so the tampered message shows through.
        payload = json.loads(cache_file.read_text())
        payload["result"]["active"][0]["message"] = "CACHED-SENTINEL"
        cache_file.write_text(json.dumps(payload))
        assert analyze_main([str(root), "--no-baseline"]) == 1
        warm = capsys.readouterr().out
        assert "CACHED-SENTINEL" in warm
        assert cold != warm

    def test_source_change_invalidates(self, tmp_path, monkeypatch, capsys):
        root = _write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        args = [str(root), "--no-baseline", "--rule", "lock-blocking-call"]
        assert analyze_main(args) == 1
        capsys.readouterr()
        # Fix the violation; the re-hash must miss and re-analyze.
        (root / "service" / "w.py").write_text("X = 1\n")
        assert analyze_main(args) == 0
        assert "OK:" in capsys.readouterr().out

    def test_rule_selection_changes_the_key(
        self, tmp_path, monkeypatch, capsys
    ):
        root = _write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert analyze_main([str(root), "--no-baseline"]) == 1
        capsys.readouterr()
        assert (
            analyze_main(
                [str(root), "--no-baseline", "--rule", "core-determinism"]
            )
            == 0
        )
        assert "OK:" in capsys.readouterr().out

    def test_no_cache_skips_read_and_write(
        self, tmp_path, monkeypatch, capsys
    ):
        root = _write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert analyze_main([str(root), "--no-baseline", "--no-cache"]) == 1
        capsys.readouterr()
        assert not (tmp_path / ".analysis-cache.json").exists()

    def test_corrupt_cache_is_a_miss_not_an_error(
        self, tmp_path, monkeypatch, capsys
    ):
        root = _write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        (tmp_path / ".analysis-cache.json").write_text("{broken")
        assert analyze_main([str(root), "--no-baseline"]) == 1
        assert "lock-blocking-call" in capsys.readouterr().out


class TestSarifFormat:
    def test_sarif_document_shape(self, tmp_path, monkeypatch, capsys):
        root = _write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = analyze_main(
            [str(root), "--no-baseline", "--format", "sarif"]
        )
        log = json.loads(capsys.readouterr().out)
        assert code == 1
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "lock-blocking-call" in rule_ids
        assert "wire-contract-drift" in rule_ids
        hit = next(
            r for r in run["results"] if r["ruleId"] == "lock-blocking-call"
        )
        assert hit["level"] == "error"
        location = hit["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("service/w.py")
        assert location["region"]["startLine"] > 0

    def test_results_are_path_line_rule_sorted(
        self, tmp_path, monkeypatch, capsys
    ):
        root = _write_fixture(tmp_path)
        (root / "service" / "a.py").write_text(
            textwrap.dedent(_VIOLATING)
        )
        monkeypatch.chdir(tmp_path)
        analyze_main([str(root), "--no-baseline", "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        keys = [
            (
                r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
                r["locations"][0]["physicalLocation"]["region"]["startLine"],
                r["ruleId"],
            )
            for r in log["runs"][0]["results"]
        ]
        assert keys == sorted(keys)

    def test_format_json_matches_json_flag(
        self, tmp_path, monkeypatch, capsys
    ):
        root = _write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        analyze_main([str(root), "--no-baseline", "--no-cache", "--json"])
        via_flag = capsys.readouterr().out
        analyze_main(
            [str(root), "--no-baseline", "--no-cache", "--format", "json"]
        )
        via_format = capsys.readouterr().out
        assert via_flag == via_format


class TestUpdateContracts:
    def test_writes_registry_and_reports_count(
        self, tmp_path, monkeypatch, capsys
    ):
        root = _write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert analyze_main([str(root), "--update-contracts"]) == 0
        out = capsys.readouterr().out
        assert "pinned" in out
        registry = json.loads(pathlib.Path("contracts.json").read_text())
        assert registry["version"] == 1
        # The fixture tree anchors none of the configured surfaces
        # except the live Prometheus registry, which always extracts.
        assert "metrics.prometheus" in registry["surfaces"]
