"""Fixture tests for the durability rule family."""

from dataclasses import replace

from tests.analysis.conftest import FIXTURE_CONFIG

DURABLE_CONFIG = replace(
    FIXTURE_CONFIG,
    durability_packages=("store",),
    durability_allowed_writers=frozenset({"Wal", "Store._quarantine"}),
)


def _rules_of(result):
    return [(f.rule, f.symbol) for f in result.active]


class TestDurabilityRawWrite:
    def test_raw_write_open_fires(self, run_analysis):
        result = run_analysis(
            {
                "store/seg.py": """
                class Store:
                    def save(self, path, data):
                        with open(path, "w") as handle:
                            handle.write(data)
                """
            },
            rules=["durability-raw-write"],
            config=DURABLE_CONFIG,
        )
        assert _rules_of(result) == [("durability-raw-write", "Store.save")]
        assert "write_snapshot" in result.active[0].message

    def test_read_open_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "store/seg.py": """
                class Store:
                    def load(self, path):
                        with open(path, "r") as handle:
                            return handle.read()

                    def load_default_mode(self, path):
                        with open(path) as handle:
                            return handle.read()
                """
            },
            rules=["durability-raw-write"],
            config=DURABLE_CONFIG,
        )
        assert result.active == []

    def test_dynamic_mode_assumes_the_worst(self, run_analysis):
        result = run_analysis(
            {
                "store/seg.py": """
                class Store:
                    def save(self, path, mode):
                        with open(path, mode) as handle:
                            handle.write("x")
                """
            },
            rules=["durability-raw-write"],
            config=DURABLE_CONFIG,
        )
        assert _rules_of(result) == [("durability-raw-write", "Store.save")]

    def test_os_replace_fires(self, run_analysis):
        result = run_analysis(
            {
                "store/seg.py": """
                import os

                def swap(src, dst):
                    os.replace(src, dst)
                """
            },
            rules=["durability-raw-write"],
            config=DURABLE_CONFIG,
        )
        assert _rules_of(result) == [("durability-raw-write", "swap")]
        assert "os.replace" in result.active[0].message

    def test_write_text_method_fires(self, run_analysis):
        result = run_analysis(
            {
                "store/seg.py": """
                def stamp(path):
                    path.write_text("done")
                """
            },
            rules=["durability-raw-write"],
            config=DURABLE_CONFIG,
        )
        assert _rules_of(result) == [("durability-raw-write", "stamp")]

    def test_allowed_writers_are_exempt(self, run_analysis):
        result = run_analysis(
            {
                "store/seg.py": """
                import os

                class Wal:
                    def append(self, path, line):
                        with open(path, "ab") as handle:
                            handle.write(line)

                    def reset(self, handle):
                        handle.truncate(0)

                class Store:
                    def _quarantine(self, path):
                        os.replace(path, str(path) + ".quarantined")
                """
            },
            rules=["durability-raw-write"],
            config=DURABLE_CONFIG,
        )
        assert result.active == []

    def test_allowed_prefix_does_not_leak_to_similar_names(self, run_analysis):
        # "Walrus" must not inherit "Wal"'s exemption.
        result = run_analysis(
            {
                "store/seg.py": """
                class Walrus:
                    def save(self, path):
                        with open(path, "w") as handle:
                            handle.write("x")
                """
            },
            rules=["durability-raw-write"],
            config=DURABLE_CONFIG,
        )
        assert _rules_of(result) == [("durability-raw-write", "Walrus.save")]

    def test_out_of_scope_packages_ignored(self, run_analysis):
        result = run_analysis(
            {
                "svc/io.py": """
                def save(path):
                    with open(path, "w") as handle:
                        handle.write("x")
                """
            },
            rules=["durability-raw-write"],
            config=DURABLE_CONFIG,
        )
        assert result.active == []

    def test_envelope_helper_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "store/seg.py": """
                from repro.reliability.snapshot import write_snapshot

                class Store:
                    def seal(self, path, payload):
                        write_snapshot(path, kind="segment", version=1,
                                       payload=payload)
                """
            },
            rules=["durability-raw-write"],
            config=DURABLE_CONFIG,
        )
        assert result.active == []
