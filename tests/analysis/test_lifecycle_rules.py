"""Fixture tests for ``resource-lifecycle`` and ``thread-lifecycle``."""


def _hits(result):
    return [(f.rule, f.symbol) for f in result.active]


class TestResourceLifecycleFires:
    def test_never_closed_handle_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/files.py": """
                def leak(path):
                    handle = open(path)
                    return handle.read()
                """
            },
            rules=["resource-lifecycle"],
        )
        assert _hits(result) == [("resource-lifecycle", "leak")]
        assert "never released" in result.active[0].message

    def test_happy_path_only_close_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/files.py": """
                def fetch(path):
                    handle = open(path)
                    data = handle.read()
                    handle.close()
                    return data
                """
            },
            rules=["resource-lifecycle"],
        )
        assert _hits(result) == [("resource-lifecycle", "fetch")]
        assert "happy path" in result.active[0].message

    def test_socket_factory_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/net.py": """
                import socket

                def probe(host):
                    sock = socket.create_connection((host, 80))
                    sock.sendall(b"ping")
                """
            },
            rules=["resource-lifecycle"],
        )
        assert _hits(result) == [("resource-lifecycle", "probe")]


class TestResourceLifecycleClean:
    def test_with_statement_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/files.py": """
                def fetch(path):
                    with open(path) as handle:
                        return handle.read()
                """
            },
            rules=["resource-lifecycle"],
        )
        assert result.active == []

    def test_try_finally_close_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/files.py": """
                def fetch(path):
                    handle = open(path)
                    try:
                        return handle.read()
                    finally:
                        handle.close()
                """
            },
            rules=["resource-lifecycle"],
        )
        assert result.active == []

    def test_returned_handle_is_the_callers_problem(self, run_analysis):
        result = run_analysis(
            {
                "svc/files.py": """
                def acquire(path):
                    handle = open(path)
                    return handle
                """
            },
            rules=["resource-lifecycle"],
        )
        assert result.active == []

    def test_handle_stored_on_self_is_clean(self, run_analysis):
        # Ownership moved to the instance; a later close() elsewhere is
        # that object's lifecycle, not this function's.
        result = run_analysis(
            {
                "svc/files.py": """
                class Tail:
                    def start(self, path):
                        handle = open(path)
                        self._handle = handle
                """
            },
            rules=["resource-lifecycle"],
        )
        assert result.active == []


class TestThreadLifecycle:
    def test_local_unjoined_thread_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/bg.py": """
                import threading

                def run_once(work):
                    t = threading.Thread(target=work)
                    t.start()
                """
            },
            rules=["thread-lifecycle"],
        )
        assert _hits(result) == [("thread-lifecycle", "run_once")]
        assert "never joined" in result.active[0].message

    def test_attr_thread_with_no_join_anywhere_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/bg.py": """
                import threading

                class Pump:
                    def __init__(self):
                        self._worker = threading.Thread(target=self._loop)
                        self._worker.start()

                    def _loop(self):
                        pass
                """
            },
            rules=["thread-lifecycle"],
        )
        assert _hits(result) == [("thread-lifecycle", "Pump.__init__")]
        assert "shutdown path" in result.active[0].message

    def test_daemon_thread_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/bg.py": """
                import threading

                def run_once(work):
                    t = threading.Thread(target=work, daemon=True)
                    t.start()
                """
            },
            rules=["thread-lifecycle"],
        )
        assert result.active == []

    def test_joined_thread_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/bg.py": """
                import threading

                def run_once(work):
                    t = threading.Thread(target=work)
                    t.start()
                    t.join()
                """
            },
            rules=["thread-lifecycle"],
        )
        assert result.active == []

    def test_attr_thread_with_shutdown_join_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/bg.py": """
                import threading

                class Pump:
                    def __init__(self):
                        self._worker = threading.Thread(target=self._loop)
                        self._worker.start()

                    def _loop(self):
                        pass

                    def close(self):
                        self._worker.join()
                """
            },
            rules=["thread-lifecycle"],
        )
        assert result.active == []

    def test_returned_thread_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/bg.py": """
                import threading

                def spawn(work):
                    t = threading.Thread(target=work)
                    t.start()
                    return t
                """
            },
            rules=["thread-lifecycle"],
        )
        assert result.active == []
