"""Engine exit codes, the CLI surface, and the live-tree meta-test."""

import json
import pathlib
import textwrap

import pytest

from repro.analysis.cli import main as analyze_main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_VIOLATING = """
import threading, time

class Worker:
    def __init__(self):
        self._lock = threading.Lock()

    def bad(self):
        with self._lock:
            time.sleep(0.1)
"""


def _write_fixture(tmp_path):
    pkg = tmp_path / "pkg" / "service"
    pkg.mkdir(parents=True)
    (pkg / "w.py").write_text(textwrap.dedent(_VIOLATING))
    return tmp_path / "pkg"


class TestExitCodes:
    def test_findings_exit_1(self, tmp_path, monkeypatch, capsys):
        root = _write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = analyze_main([str(root), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "lock-blocking-call" in out
        assert "FAIL:" in out

    def test_malformed_baseline_exit_2(self, tmp_path, monkeypatch, capsys):
        root = _write_fixture(tmp_path)
        bad = tmp_path / "baseline.json"
        bad.write_text("{broken")
        monkeypatch.chdir(tmp_path)
        code = analyze_main([str(root), "--baseline", str(bad)])
        assert code == 2
        assert "analyze:" in capsys.readouterr().err

    def test_unknown_rule_exit_2(self, tmp_path, monkeypatch, capsys):
        root = _write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = analyze_main([str(root), "--rule", "no-such-rule"])
        assert code == 2


class TestReportModes:
    def test_json_report_shape(self, tmp_path, monkeypatch, capsys):
        root = _write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = analyze_main([str(root), "--no-baseline", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        assert payload["files_analyzed"] >= 1
        [finding] = [
            f
            for f in payload["active"]
            if f["rule"] == "lock-blocking-call"
        ]
        assert finding["symbol"] == "Worker.bad"
        assert finding["line"] > 0

    def test_list_rules(self, capsys):
        assert analyze_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for family in (
            "lock-blocking-call",
            "core-determinism",
            "taxonomy-span",
            "except-swallowed",
        ):
            assert family in out

    def test_update_baseline_roundtrip(self, tmp_path, monkeypatch, capsys):
        root = _write_fixture(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        monkeypatch.chdir(tmp_path)
        assert (
            analyze_main(
                [str(root), "--baseline", str(baseline_path), "--update-baseline"]
            )
            == 0
        )
        payload = json.loads(baseline_path.read_text())
        assert payload["version"] == 1
        reasons = [e["reason"] for e in payload["entries"]]
        assert reasons and all(r.startswith("TODO") for r in reasons)
        # A TODO reason keeps the gate failing until a human justifies it.
        capsys.readouterr()
        assert analyze_main([str(root), "--baseline", str(baseline_path)]) == 1
        assert "baseline-todo" in capsys.readouterr().out
        # With a real justification the gate passes.
        for entry in payload["entries"]:
            entry["reason"] = "fixture: accepted"
        baseline_path.write_text(json.dumps(payload))
        assert analyze_main([str(root), "--baseline", str(baseline_path)]) == 0


class TestLiveTree:
    def test_repository_is_analyze_clean(self, monkeypatch, capsys):
        """Meta-test: the committed tree passes its own gate.

        Uses the committed baseline; any new finding, stale entry, or
        unjustified TODO reason fails this test the same way it fails
        ``make analyze``.
        """
        monkeypatch.chdir(REPO_ROOT)
        code = analyze_main([])
        out = capsys.readouterr().out
        assert code == 0, f"live tree has analysis findings:\n{out}"
        assert out.startswith("OK:")

    def test_repro_search_analyze_subcommand_wired(self, monkeypatch, capsys):
        from repro.cli import main as repro_main

        monkeypatch.chdir(REPO_ROOT)
        assert repro_main(["analyze", "--list-rules"]) == 0
        assert "lock-order" in capsys.readouterr().out
