"""Fixture tests for ``lock-escaping-state`` (escape analysis)."""


def _hits(result):
    return [(f.rule, f.symbol) for f in result.active]


class TestGuardedEscapeFires:
    def test_pr8_zero_copy_postings_regression(self, run_analysis):
        # The PR-8 review bug, reduced: the memtable hands its live
        # posting structure out of the lock zero-copy while ingest
        # mutates it under the same lock.
        result = run_analysis(
            {
                "svc/memtable.py": """
                import threading

                class Memtable:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._postings = {}

                    def add(self, token, doc_id):
                        with self._lock:
                            self._postings.setdefault(token, []).append(doc_id)

                    def postings(self, token):
                        with self._lock:
                            return self._postings[token]
                """
            },
            rules=["lock-escaping-state"],
        )
        assert _hits(result) == [("lock-escaping-state", "Memtable.postings")]
        assert "self._postings" in result.active[0].message
        assert "copy" in result.active[0].message

    def test_bare_return_of_guarded_dict_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/state.py": """
                import threading

                class State:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}

                    def put(self, key, value):
                        with self._lock:
                            self._items[key] = value

                    def all_items(self):
                        with self._lock:
                            return self._items
                """
            },
            rules=["lock-escaping-state"],
        )
        assert _hits(result) == [("lock-escaping-state", "State.all_items")]

    def test_alias_bound_under_lock_returned_after_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/state.py": """
                import threading

                class State:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}

                    def put(self, key, value):
                        with self._lock:
                            self._items[key] = value

                    def drain(self):
                        with self._lock:
                            snap = self._items
                        return snap
                """
            },
            rules=["lock-escaping-state"],
        )
        assert _hits(result) == [("lock-escaping-state", "State.drain")]
        assert "aliased" in result.active[0].message

    def test_yield_under_lock_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/state.py": """
                import threading

                class State:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._rows = []

                    def put(self, row):
                        with self._lock:
                            self._rows.append(row)

                    def stream(self):
                        with self._lock:
                            yield self._rows
                """
            },
            rules=["lock-escaping-state"],
        )
        assert _hits(result) == [("lock-escaping-state", "State.stream")]

    def test_store_into_caller_container_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/state.py": """
                import threading

                class State:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}

                    def put(self, key, value):
                        with self._lock:
                            self._items[key] = value

                    def export_into(self, out):
                        with self._lock:
                            out["items"] = self._items
                """
            },
            rules=["lock-escaping-state"],
        )
        assert _hits(result) == [("lock-escaping-state", "State.export_into")]

    def test_callback_argument_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/state.py": """
                import threading

                class State:
                    def __init__(self, listener):
                        self._lock = threading.Lock()
                        self._items = {}
                        self._listener = listener

                    def put(self, key, value):
                        with self._lock:
                            self._items[key] = value
                            self._listener(self._items)
                """
            },
            rules=["lock-escaping-state"],
        )
        assert _hits(result) == [("lock-escaping-state", "State.put")]
        assert "callback" in result.active[0].message


class TestGuardedEscapeClean:
    def test_copy_wrapper_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/state.py": """
                import threading

                class State:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}

                    def put(self, key, value):
                        with self._lock:
                            self._items[key] = value

                    def all_items(self):
                        with self._lock:
                            return dict(self._items)
                """
            },
            rules=["lock-escaping-state"],
        )
        assert result.active == []

    def test_copy_method_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/state.py": """
                import threading

                class State:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}

                    def put(self, key, value):
                        with self._lock:
                            self._items[key] = value

                    def all_items(self):
                        with self._lock:
                            return self._items.copy()
                """
            },
            rules=["lock-escaping-state"],
        )
        assert result.active == []

    def test_scalar_counter_is_clean(self, run_analysis):
        # A generation counter is guarded but immutable: returning the
        # int copies the value, there is nothing to race on.
        result = run_analysis(
            {
                "svc/state.py": """
                import threading

                class State:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._seq = 0

                    def bump(self):
                        with self._lock:
                            self._seq += 1

                    def generation(self):
                        with self._lock:
                            return self._seq
                """
            },
            rules=["lock-escaping-state"],
        )
        assert result.active == []

    def test_unguarded_attribute_is_clean(self, run_analysis):
        # Mutated, but never under the lock: a single-threaded helper
        # structure is not this rule's business.
        result = run_analysis(
            {
                "svc/state.py": """
                import threading

                class State:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._scratch = {}

                    def put(self, key, value):
                        self._scratch[key] = value

                    def all_items(self):
                        return self._scratch
                """
            },
            rules=["lock-escaping-state"],
        )
        assert result.active == []

    def test_alias_rebound_outside_lock_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/state.py": """
                import threading

                class State:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}

                    def put(self, key, value):
                        with self._lock:
                            self._items[key] = value

                    def drain(self):
                        with self._lock:
                            snap = self._items
                        snap = dict(snap)
                        return snap
                """
            },
            rules=["lock-escaping-state"],
        )
        assert result.active == []
