"""Fixture tests for the exception-hygiene rule family."""

_ERRORS_MODULE = """
class MyError(Exception):
    pass


class MyValueError(MyError, ValueError):
    pass
"""


class TestCoreRaise:
    def test_foreign_raise_fires_hierarchy_clean(self, run_analysis):
        result = run_analysis(
            {
                "core/errors.py": _ERRORS_MODULE,
                "core/algo.py": """
                from core.errors import MyError


                def good(x):
                    if x < 0:
                        raise MyError("bad input")
                    return x


                def bad(x):
                    if x < 0:
                        raise ValueError("bad input")
                    return x
                """,
            },
            rules=["core-raise"],
        )
        assert [(f.rule, f.symbol) for f in result.active] == [
            ("core-raise", "bad")
        ]
        assert "ValueError" in result.active[0].message

    def test_bare_reraise_and_allowed_idioms_clean(self, run_analysis):
        result = run_analysis(
            {
                "core/errors.py": _ERRORS_MODULE,
                "core/algo.py": """
                def passthrough():
                    try:
                        risky()
                    except Exception:
                        raise


                def todo():
                    raise NotImplementedError
                """,
            },
            rules=["core-raise"],
        )
        assert result.active == []

    def test_outside_core_not_checked(self, run_analysis):
        result = run_analysis(
            {
                "core/errors.py": _ERRORS_MODULE,
                "svc/app.py": """
                def handler():
                    raise RuntimeError("services may use stdlib errors")
                """,
            },
            rules=["core-raise"],
        )
        assert result.active == []


class TestExceptHygiene:
    def test_bare_except_fires_anywhere(self, run_analysis):
        result = run_analysis(
            {
                "util/misc.py": """
                def f():
                    try:
                        g()
                    except:
                        return None
                """
            },
            rules=["except-bare"],
        )
        assert [f.rule for f in result.active] == ["except-bare"]

    def test_swallow_on_serving_path_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/server.py": """
                def serve():
                    try:
                        handle()
                    except Exception:
                        pass
                """
            },
            rules=["except-swallowed"],
        )
        assert [f.symbol for f in result.active] == ["serve"]

    def test_handled_exception_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/server.py": """
                def serve(logger):
                    try:
                        handle()
                    except Exception as exc:
                        logger.error("request", error=str(exc))
                """
            },
            rules=["except-swallowed"],
        )
        assert result.active == []

    def test_swallow_outside_serving_path_not_checked(self, run_analysis):
        result = run_analysis(
            {
                "tools/script.py": """
                def best_effort():
                    try:
                        cleanup()
                    except Exception:
                        pass
                """
            },
            rules=["except-swallowed"],
        )
        assert result.active == []
