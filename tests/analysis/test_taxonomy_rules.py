"""Fixture tests for the taxonomy rule family."""

import dataclasses

from tests.analysis.conftest import FIXTURE_CONFIG


class TestSpanAndEventNames:
    def test_unknown_span_fires_known_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/app.py": """
                def handle(tracer):
                    with tracer.trace("request"):
                        pass
                    with tracer.trace("bogus.span"):
                        pass
                """
            },
            rules=["taxonomy-span"],
        )
        assert [f.symbol for f in result.active] == ["bogus.span"]

    def test_ambient_span_helper_checked(self, run_analysis):
        result = run_analysis(
            {
                "svc/deep.py": """
                from repro.obs.trace import span

                def work():
                    with span("join"):
                        pass
                    with span("mystery"):
                        pass
                """
            },
            rules=["taxonomy-span"],
        )
        assert [f.symbol for f in result.active] == ["mystery"]

    def test_unknown_log_event_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/app.py": """
                def handle(logger):
                    logger.info("request", latency_ms=1.0)
                    logger.warning("made_up_event", x=1)
                """
            },
            rules=["taxonomy-event"],
        )
        assert [f.symbol for f in result.active] == ["made_up_event"]

    def test_known_log_event_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/app.py": """
                def handle(logger):
                    logger.info("request", latency_ms=1.0)
                """
            },
            rules=["taxonomy-event"],
        )
        assert result.active == []

    def test_dynamic_names_skipped(self, run_analysis):
        result = run_analysis(
            {
                "svc/app.py": """
                def handle(tracer, name):
                    with tracer.trace(name):
                        pass
                """
            },
            rules=["taxonomy-span"],
        )
        assert result.active == []


class TestMetricNames:
    def test_unknown_counter_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/app.py": """
                def handle(metrics):
                    metrics.increment("requests_total")
                    metrics.increment("surprise_counter")
                """
            },
            rules=["taxonomy-metric"],
        )
        assert [f.symbol for f in result.active] == ["surprise_counter"]

    def test_unknown_export_name_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/app.py": """
                def export(registry):
                    registry.counter("repro_requests_total", "help")
                    registry.gauge("repro_off_registry", "help")
                """
            },
            rules=["taxonomy-metric"],
        )
        assert [f.symbol for f in result.active] == ["repro_off_registry"]

    def test_illegal_prometheus_name_in_registry_fires(self, run_analysis):
        config = dataclasses.replace(
            FIXTURE_CONFIG,
            taxonomy_prometheus=frozenset(
                {"repro_ok_total", "repro-bad-dashes"}
            ),
        )
        result = run_analysis(
            {"svc/app.py": "x = 1\n"},
            rules=["taxonomy-prometheus"],
            config=config,
        )
        assert [f.symbol for f in result.active] == ["repro-bad-dashes"]

    def test_legal_prometheus_registry_is_clean(self, run_analysis):
        result = run_analysis(
            {"svc/app.py": "x = 1\n"},
            rules=["taxonomy-prometheus"],
        )
        assert result.active == []


class TestDocCoverage:
    def test_missing_doc_name_fires(self, run_analysis, tmp_path, monkeypatch):
        doc = tmp_path / "OBS.md"
        doc.write_text("Only `request` and `join` and `requests_total` and repro_requests_total are documented, minus one.\n")
        monkeypatch.chdir(tmp_path)
        config = dataclasses.replace(
            FIXTURE_CONFIG,
            taxonomy_doc="OBS.md",
            taxonomy_events=frozenset({"request", "undocumented_event"}),
        )
        result = run_analysis(
            {"svc/app.py": "x = 1\n"},
            rules=["taxonomy-docs"],
            config=config,
        )
        assert [f.symbol for f in result.active] == ["undocumented_event"]
        assert result.active[0].path == "OBS.md"

    def test_fully_documented_is_clean(self, run_analysis, tmp_path, monkeypatch):
        doc = tmp_path / "OBS.md"
        doc.write_text("`request` `join` `requests_total` `repro_requests_total`\n")
        monkeypatch.chdir(tmp_path)
        config = dataclasses.replace(FIXTURE_CONFIG, taxonomy_doc="OBS.md")
        result = run_analysis(
            {"svc/app.py": "x = 1\n"},
            rules=["taxonomy-docs"],
            config=config,
        )
        assert result.active == []
