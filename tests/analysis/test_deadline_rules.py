"""Fixture tests for ``deadline-discipline`` (serving-path timeouts)."""

from dataclasses import replace

from tests.analysis.conftest import FIXTURE_CONFIG

DEADLINE_CONFIG = replace(
    FIXTURE_CONFIG,
    deadline_entrypoints=("Server.submit",),
)


def _hits(result):
    return [(f.rule, f.symbol) for f in result.active]


class TestDeadlineFires:
    def test_bare_wait_in_entry_point_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/serve.py": """
                import queue

                class Server:
                    def __init__(self):
                        self._reply_queue = queue.Queue()

                    def submit(self, item):
                        return self._reply_queue.get()
                """
            },
            rules=["deadline-discipline"],
            config=DEADLINE_CONFIG,
        )
        assert _hits(result) == [("deadline-discipline", "Server.submit")]
        assert "Server.submit()" in result.active[0].message

    def test_transitively_reachable_wait_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/serve.py": """
                import queue

                class Server:
                    def __init__(self):
                        self._reply_queue = queue.Queue()

                    def submit(self, item):
                        return self._drain()

                    def _drain(self):
                        return self._reply_queue.get()
                """
            },
            rules=["deadline-discipline"],
            config=DEADLINE_CONFIG,
        )
        assert _hits(result) == [("deadline-discipline", "Server._drain")]
        assert "reachable from serving entry point Server.submit()" in (
            result.active[0].message
        )


class TestDeadlineClean:
    def test_timeout_keyword_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/serve.py": """
                import queue

                class Server:
                    def __init__(self):
                        self._reply_queue = queue.Queue()

                    def submit(self, item):
                        return self._reply_queue.get(timeout=2.0)
                """
            },
            rules=["deadline-discipline"],
            config=DEADLINE_CONFIG,
        )
        assert result.active == []

    def test_positional_numeric_timeout_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/serve.py": """
                import threading

                class Server:
                    def __init__(self):
                        self._worker_thread = threading.Thread(target=None)

                    def submit(self, item):
                        self._worker_thread.join(2.0)
                """
            },
            rules=["deadline-discipline"],
            config=DEADLINE_CONFIG,
        )
        assert result.active == []

    def test_deadline_expression_argument_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/serve.py": """
                import queue

                class Server:
                    def __init__(self):
                        self._reply_queue = queue.Queue()

                    def submit(self, item, deadline):
                        return self._reply_queue.get(True, deadline - 1)
                """
            },
            rules=["deadline-discipline"],
            config=DEADLINE_CONFIG,
        )
        assert result.active == []

    def test_unreachable_helper_is_clean(self, run_analysis):
        # Same bare wait, but nothing on the serving path calls it.
        result = run_analysis(
            {
                "svc/serve.py": """
                import queue

                class Server:
                    def __init__(self):
                        self._reply_queue = queue.Queue()

                    def submit(self, item):
                        return item

                    def offline_sweep(self):
                        return self._reply_queue.get()
                """
            },
            rules=["deadline-discipline"],
            config=DEADLINE_CONFIG,
        )
        assert result.active == []

    def test_non_waitable_receiver_is_clean(self, run_analysis):
        # A dict's .get(key) and a string .join() share method names
        # with waits but cannot block; receiver hints gate them out.
        result = run_analysis(
            {
                "svc/serve.py": """
                class Server:
                    def __init__(self):
                        self._settings = {}

                    def submit(self, item):
                        mode = self._settings.get("mode")
                        return ", ".join([str(item), str(mode)])
                """
            },
            rules=["deadline-discipline"],
            config=DEADLINE_CONFIG,
        )
        assert result.active == []

    def test_kwargs_forwarding_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/serve.py": """
                import queue

                class Server:
                    def __init__(self):
                        self._reply_queue = queue.Queue()

                    def submit(self, item, **kwargs):
                        return self._reply_queue.get(**kwargs)
                """
            },
            rules=["deadline-discipline"],
            config=DEADLINE_CONFIG,
        )
        assert result.active == []
