"""Baseline load/match/stale/update semantics."""

import json

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineError
from repro.analysis.findings import Finding

_FINDING = Finding(
    rule="lock-blocking-call",
    path="svc/w.py",
    line=9,
    symbol="Worker.bad",
    message="blocking call time.sleep while holding self._lock",
)


def _baseline_payload(reason="it is fine"):
    return {
        "version": 1,
        "entries": [
            {
                "rule": _FINDING.rule,
                "path": _FINDING.path,
                "symbol": _FINDING.symbol,
                "message": _FINDING.message,
                "reason": reason,
            }
        ],
    }


class TestLoad:
    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(_baseline_payload()))
        baseline = Baseline.load(path)
        assert len(baseline) == 1
        assert baseline.matches(_FINDING)

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_missing_reason_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps(_baseline_payload(reason="  ")))
        with pytest.raises(BaselineError, match="justified"):
            Baseline.load(path)


class TestMatching:
    def test_line_number_changes_still_match(self):
        baseline = Baseline(
            [
                BaselineEntry(
                    rule=_FINDING.rule,
                    path=_FINDING.path,
                    symbol=_FINDING.symbol,
                    message=_FINDING.message,
                    reason="ok",
                )
            ]
        )
        moved = Finding(
            rule=_FINDING.rule,
            path=_FINDING.path,
            line=123,  # unrelated edits shifted the file
            symbol=_FINDING.symbol,
            message=_FINDING.message,
        )
        assert baseline.matches(moved)
        assert baseline.stale_entries() == []

    def test_unmatched_entry_is_stale(self):
        entry = BaselineEntry(
            rule="gone-rule",
            path="svc/old.py",
            symbol="Old.fn",
            message="was fixed",
            reason="ok",
        )
        baseline = Baseline([entry])
        assert baseline.stale_entries() == [entry]

    def test_todo_reason_flagged_as_placeholder(self):
        entry = BaselineEntry(
            rule="r", path="p", symbol="s", message="m", reason="TODO: justify"
        )
        assert Baseline([entry]).placeholder_entries() == [entry]


class TestUpdate:
    def test_update_preserves_existing_reasons(self, tmp_path):
        baseline = Baseline(
            [
                BaselineEntry(
                    rule=_FINDING.rule,
                    path=_FINDING.path,
                    symbol=_FINDING.symbol,
                    message=_FINDING.message,
                    reason="carefully justified",
                )
            ]
        )
        fresh = Finding(
            rule="lock-callback",
            path="svc/n.py",
            line=4,
            symbol="N.bad",
            message="user callback listener() invoked while holding self._lock",
        )
        updated = baseline.updated_with([_FINDING, fresh])
        by_rule = {e.rule: e for e in updated.entries}
        assert by_rule["lock-blocking-call"].reason == "carefully justified"
        assert by_rule["lock-callback"].reason.startswith("TODO")

        path = tmp_path / "b.json"
        updated.save(path)
        reloaded = Baseline.load(path)
        assert len(reloaded) == 2


class TestEngineBaseline:
    def test_baselined_finding_passes_and_stale_fails(self, run_analysis):
        files = {
            "svc/w.py": """
            import threading, time

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def tolerated(self):
                    with self._lock:
                        time.sleep(0.1)
            """
        }
        matching = BaselineEntry(
            rule="lock-blocking-call",
            path="svc/w.py",
            symbol="Worker.tolerated",
            message="blocking call time.sleep while holding self._lock",
            reason="fixture: accepted on purpose",
        )
        stale = BaselineEntry(
            rule="lock-blocking-call",
            path="svc/gone.py",
            symbol="Gone.fn",
            message="was fixed long ago",
            reason="obsolete",
        )
        result = run_analysis(
            files,
            rules=["lock-blocking-call"],
            baseline=Baseline([matching]),
        )
        assert result.active == []
        assert len(result.baselined) == 1
        assert result.ok

        result2 = run_analysis(
            files,
            rules=["lock-blocking-call"],
            baseline=Baseline([matching, stale]),
        )
        assert result2.stale_baseline == [stale]
        assert not result2.ok
        assert result2.exit_code == 1
