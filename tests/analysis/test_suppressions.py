"""Suppression-comment grammar and engine integration."""

from repro.analysis.suppressions import SuppressionIndex


class TestSuppressionIndex:
    def test_same_line_named_rule(self):
        index = SuppressionIndex("x = risky()  # repro: ignore[my-rule]\n")
        assert index.is_suppressed("my-rule", 1)
        assert not index.is_suppressed("other-rule", 1)

    def test_bare_ignore_matches_all_rules(self):
        index = SuppressionIndex("x = risky()  # repro: ignore\n")
        assert index.is_suppressed("anything", 1)

    def test_multiple_rules_comma_separated(self):
        index = SuppressionIndex("x = 1  # repro: ignore[rule-a, rule-b]\n")
        assert index.is_suppressed("rule-a", 1)
        assert index.is_suppressed("rule-b", 1)
        assert not index.is_suppressed("rule-c", 1)

    def test_preceding_comment_line_applies_to_next_code_line(self):
        source = (
            "# repro: ignore[my-rule] justification here\n"
            "x = risky()\n"
            "y = also_risky()\n"
        )
        index = SuppressionIndex(source)
        assert index.is_suppressed("my-rule", 2)
        assert not index.is_suppressed("my-rule", 3)

    def test_carries_past_further_comments_and_blank_lines(self):
        source = (
            "# repro: ignore[my-rule]\n"
            "# more prose\n"
            "\n"
            "x = risky()\n"
        )
        index = SuppressionIndex(source)
        assert index.is_suppressed("my-rule", 4)

    def test_unannotated_lines_not_suppressed(self):
        index = SuppressionIndex("x = 1\ny = 2\n")
        assert not index.is_suppressed("my-rule", 1)
        assert not index.is_suppressed("my-rule", 2)


class TestEngineSuppression:
    def test_suppressed_finding_classified_not_active(self, run_analysis):
        result = run_analysis(
            {
                "svc/w.py": """
                import threading, time

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def tolerated(self):
                        with self._lock:
                            time.sleep(0.1)  # repro: ignore[lock-blocking-call] why: test
                """
            },
            rules=["lock-blocking-call"],
        )
        assert result.active == []
        assert len(result.suppressed) == 1
        assert result.ok

    def test_suppression_for_other_rule_does_not_hide(self, run_analysis):
        result = run_analysis(
            {
                "svc/w.py": """
                import threading, time

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def still_bad(self):
                        with self._lock:
                            time.sleep(0.1)  # repro: ignore[some-other-rule]
                """
            },
            rules=["lock-blocking-call"],
        )
        assert len(result.active) == 1
