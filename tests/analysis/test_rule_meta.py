"""Meta-tests: every rule is documented, cataloged, and fixture-tested.

A rule that exists in code but not in ``docs/ANALYSIS.md`` is invisible
policy; one without fixture coverage can silently rot.  These tests
make adding a rule without its paperwork a test failure, not a review
nitpick.
"""

import pathlib
import re

import pytest

from repro.analysis.cli import main as analyze_main
from repro.analysis.rules import all_rules

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
TESTS_DIR = pathlib.Path(__file__).resolve().parent

RULE_NAMES = [rule.name for rule in all_rules()]


def _test_sources() -> str:
    return "\n".join(
        path.read_text()
        for path in sorted(TESTS_DIR.glob("test_*.py"))
        if path.name != "test_rule_meta.py"
    )


class TestRuleRegistry:
    def test_rule_names_are_unique(self):
        assert len(RULE_NAMES) == len(set(RULE_NAMES))

    def test_every_rule_in_list_rules_output(self, capsys):
        assert analyze_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULE_NAMES:
            assert name in out, f"--list-rules does not show {name}"

    @pytest.mark.parametrize("name", RULE_NAMES)
    def test_every_rule_has_a_docs_row(self, name):
        doc = (REPO_ROOT / "docs" / "ANALYSIS.md").read_text()
        assert f"`{name}`" in doc, (
            f"rule {name} has no row in docs/ANALYSIS.md; document what "
            "it flags before shipping it"
        )

    @pytest.mark.parametrize("name", RULE_NAMES)
    def test_every_rule_has_fixture_coverage(self, name):
        """Each rule is exercised by fixture tests on both sides.

        Proxy: the quoted rule name must appear in at least two test
        call sites under ``tests/analysis`` — in practice a
        true-positive ("fires") and a true-negative ("clean") fixture.
        """
        sources = _test_sources()
        occurrences = len(re.findall(rf'"{re.escape(name)}"', sources))
        assert occurrences >= 2, (
            f"rule {name} is referenced {occurrences} time(s) in "
            "tests/analysis; add fixture tests covering a violating and "
            "a clean tree"
        )
