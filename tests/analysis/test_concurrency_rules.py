"""Fixture tests for the concurrency rule family."""

from tests.analysis.conftest import FIXTURE_CONFIG


def _rules_of(result):
    return [(f.rule, f.symbol) for f in result.active]


class TestLockBlockingCall:
    def test_direct_sleep_under_lock_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/w.py": """
                import threading, time

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def bad(self):
                        with self._lock:
                            time.sleep(0.1)
                """
            },
            rules=["lock-blocking-call"],
        )
        assert _rules_of(result) == [("lock-blocking-call", "Worker.bad")]
        assert "time.sleep" in result.active[0].message

    def test_sleep_outside_lock_is_clean(self, run_analysis):
        result = run_analysis(
            {
                "svc/w.py": """
                import threading, time

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def good(self):
                        time.sleep(0.1)
                        with self._lock:
                            x = 1
                """
            },
            rules=["lock-blocking-call"],
        )
        assert result.active == []

    def test_transitive_blocking_via_helper(self, run_analysis):
        result = run_analysis(
            {
                "svc/w.py": """
                import threading, time

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def _helper(self):
                        time.sleep(0.5)

                    def bad_indirect(self):
                        with self._lock:
                            self._helper()
                """
            },
            rules=["lock-blocking-call"],
        )
        assert _rules_of(result) == [
            ("lock-blocking-call", "Worker.bad_indirect")
        ]
        assert "_helper" in result.active[0].message

    def test_queue_get_under_lock_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/w.py": """
                import queue, threading

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._queue = queue.Queue()

                    def bad(self):
                        with self._lock:
                            return self._queue.get()

                    def fine(self):
                        with self._lock:
                            return self._queue.get_nowait()
                """
            },
            rules=["lock-blocking-call"],
        )
        assert _rules_of(result) == [("lock-blocking-call", "Worker.bad")]

    def test_condition_wait_on_held_lock_exempt(self, run_analysis):
        result = run_analysis(
            {
                "svc/w.py": """
                import threading

                class Gate:
                    def __init__(self):
                        self._cond = threading.Condition()

                    def await_open(self):
                        with self._cond:
                            while not self.open:
                                self._cond.wait()
                """
            },
            rules=["lock-blocking-call"],
        )
        assert result.active == []

    def test_read_lock_sections_exempt(self, run_analysis):
        result = run_analysis(
            {
                "svc/w.py": """
                import threading, time

                class _ReadWriteLock:
                    pass

                class Exec:
                    def __init__(self):
                        self._rwlock = _ReadWriteLock()

                    def shared(self):
                        with self._rwlock.read():
                            time.sleep(0.1)

                    def exclusive(self):
                        with self._rwlock.write():
                            time.sleep(0.1)
                """
            },
            rules=["lock-blocking-call"],
        )
        assert _rules_of(result) == [("lock-blocking-call", "Exec.exclusive")]

    def test_closure_body_not_attributed_to_lock(self, run_analysis):
        # A nested def's body runs later, outside the critical section.
        result = run_analysis(
            {
                "svc/w.py": """
                import threading, time

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def register(self):
                        with self._lock:
                            def later():
                                time.sleep(1.0)
                            self._cb = later
                """
            },
            rules=["lock-blocking-call"],
        )
        assert result.active == []


class TestLockCallback:
    def test_listener_call_under_lock_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/w.py": """
                import threading

                class Notifier:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._listeners = []

                    def bad(self, event):
                        with self._lock:
                            for listener in self._listeners:
                                listener(event)

                    def good(self, event):
                        with self._lock:
                            listeners = list(self._listeners)
                        for listener in listeners:
                            listener(event)
                """
            },
            rules=["lock-callback"],
        )
        assert _rules_of(result) == [("lock-callback", "Notifier.bad")]


class TestLockOrder:
    def test_inner_before_outer_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/a.py": """
                import threading

                class A:
                    def __init__(self):
                        self._outer = threading.Lock()
                        self._inner = threading.Lock()

                    def ok(self):
                        with self._outer:
                            with self._inner:
                                pass

                    def bad(self):
                        with self._inner:
                            with self._outer:
                                pass
                """
            },
            rules=["lock-order"],
        )
        assert _rules_of(result) == [("lock-order", "A.bad")]
        assert "declared lock order" in result.active[0].message

    def test_reacquisition_of_plain_lock_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/a.py": """
                import threading

                class A:
                    def __init__(self):
                        self._outer = threading.Lock()

                    def deadlock(self):
                        with self._outer:
                            with self._outer:
                                pass
                """
            },
            rules=["lock-order"],
        )
        assert _rules_of(result) == [("lock-order", "A.deadlock")]
        assert "re-acquisition" in result.active[0].message

    def test_rlock_reentry_allowed(self, run_analysis):
        result = run_analysis(
            {
                "svc/a.py": """
                import threading

                class A:
                    def __init__(self):
                        self._outer = threading.RLock()

                    def reentrant(self):
                        with self._outer:
                            with self._outer:
                                pass
                """
            },
            rules=["lock-order"],
        )
        assert result.active == []

    def test_transitive_reacquisition_via_helper(self, run_analysis):
        result = run_analysis(
            {
                "svc/a.py": """
                import threading

                class A:
                    def __init__(self):
                        self._outer = threading.Lock()

                    def _locked_op(self):
                        with self._outer:
                            pass

                    def bad(self):
                        with self._outer:
                            self._locked_op()
                """
            },
            rules=["lock-order"],
        )
        assert _rules_of(result) == [("lock-order", "A.bad")]
        assert "via A._locked_op()" in result.active[0].message


class TestUnguardedMutation:
    def test_mutation_outside_lock_fires(self, run_analysis):
        result = run_analysis(
            {
                "svc/c.py": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._n = 0

                    def inc(self):
                        with self._lock:
                            self._n += 1

                    def reset(self):
                        self._n = 0
                """
            },
            rules=["lock-unguarded-mutation"],
        )
        assert _rules_of(result) == [
            ("lock-unguarded-mutation", "Counter.reset")
        ]

    def test_init_and_never_guarded_attrs_exempt(self, run_analysis):
        result = run_analysis(
            {
                "svc/c.py": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._n = 0          # __init__ is exempt
                        self._name = "x"

                    def rename(self, name):
                        self._name = name    # never lock-guarded: fine

                    def inc(self):
                        with self._lock:
                            self._n += 1
                """
            },
            rules=["lock-unguarded-mutation"],
        )
        assert result.active == []

    def test_fixture_config_matches_project_shape(self):
        # The fixture lock-order table mirrors the real config's shape.
        assert FIXTURE_CONFIG.lock_order[0] == ("A", "_outer")
