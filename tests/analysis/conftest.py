"""Shared fixtures: build a throwaway package tree and analyze it."""

import textwrap

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import analyze
from repro.analysis.rules import rules_named


@pytest.fixture
def run_analysis(tmp_path):
    """Write fixture files, run selected rules, return the result.

    ``files`` maps relative paths to (dedented) source snippets.
    """

    def _run(files, *, rules, config=None, baseline=None):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return analyze(
            tmp_path,
            config=config or FIXTURE_CONFIG,
            rules=rules_named(rules),
            baseline=baseline,
            display_prefix="",
        )

    return _run


#: A config scoped to the fixture layout used throughout these tests:
#: concurrency code under svc/, deterministic code under core/algorithms/,
#: taxonomy literals under svc/, core exceptions from core/errors.py.
FIXTURE_CONFIG = AnalysisConfig(
    concurrency_packages=("svc",),
    lock_order=[("A", "_outer"), ("A", "_inner")],
    determinism_packages=("core/algorithms",),
    core_package="core",
    core_errors_module="core/errors.py",
    serving_packages=("svc",),
    taxonomy_packages=("svc",),
    taxonomy_doc="",
    taxonomy_spans=frozenset({"request", "join"}),
    taxonomy_events=frozenset({"request"}),
    taxonomy_counters=frozenset({"requests_total"}),
    taxonomy_prometheus=frozenset({"repro_requests_total"}),
)
