"""Information extraction over by-location joins."""

import pytest

from repro.core.query import Query
from repro.core.scoring.presets import trec_med, trec_win
from repro.extraction.extractor import MatchsetExtractor
from repro.text.document import Document


@pytest.fixture
def cfp_document():
    return Document(
        "cfp",
        "CALL FOR PAPERS. The workshop will be held in Pisa, Italy on June "
        "24-26, 2008, at the local university. Later sections list the "
        "program committee and registration information in detail.",
    )


@pytest.fixture
def query():
    return Query.of("conference|workshop", "date", "place")


class TestMatchsetExtractor:
    def test_extract_best_finds_the_venue_sentence(self, cfp_document, query):
        extractor = MatchsetExtractor(query, trec_win())
        best = extractor.extract_best(cfp_document)
        assert best is not None
        record = best.as_dict()
        assert record["place"] in {"pisa", "italy"}
        assert record["date"] in {"june", "24-26", "2008"}

    def test_extract_returns_descending_scores(self, cfp_document, query):
        extractor = MatchsetExtractor(query, trec_win())
        results = extractor.extract(cfp_document)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_min_score_threshold(self, cfp_document, query):
        unfiltered = MatchsetExtractor(query, trec_win()).extract(cfp_document)
        cutoff = unfiltered[0].score
        filtered = MatchsetExtractor(query, trec_win(), min_score=cutoff).extract(
            cfp_document
        )
        assert all(r.score >= cutoff for r in filtered)

    def test_anchor_gap_suppression(self, cfp_document, query):
        extractor = MatchsetExtractor(query, trec_win(), min_anchor_gap=8)
        results = extractor.extract(cfp_document)
        anchors = [r.anchor for r in results]
        for i, a in enumerate(anchors):
            for b in anchors[i + 1 :]:
                assert abs(a - b) >= 8

    def test_multiple_good_matchsets_extracted(self, query):
        """The Section I motivation: a document with two associations
        yields two extractions."""
        doc = Document(
            "d",
            "The workshop takes place in Turin during June 2008. "
            + "Unrelated filler text goes on and on here. " * 5
            + "A second conference happens in Beijing in September 2008.",
        )
        extractor = MatchsetExtractor(query, trec_med(), min_anchor_gap=10)
        records = [e.as_dict() for e in extractor.extract(doc)]
        places = {r["place"] for r in records[:2]}
        assert {"turin", "beijing"} <= places

    def test_works_with_precomputed_lists(self, cfp_document, query):
        extractor = MatchsetExtractor(query, trec_win())
        lists = extractor.matcher.match_lists(cfp_document)
        results = extractor.extract_from_lists("cfp", lists, cfp_document)
        assert results
        assert results[0].doc_id == "cfp"
