"""Top-k document retrieval with upper-bound skipping."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.presets import trec_max, trec_med, trec_win
from repro.retrieval.ranking import rank_match_lists
from repro.retrieval.topk_retrieval import TopKResult, rank_top_k, score_upper_bound

from tests.conftest import join_instances


def corpus_of(num_docs: int, seed: int):
    rng = random.Random(seed)
    query = Query.of("a", "b")
    docs = []
    for i in range(num_docs):
        lists = [
            MatchList.from_pairs(
                [
                    (rng.randint(0, 60), rng.uniform(0.05, 1.0))
                    for _ in range(rng.randint(0, 4))
                ]
            )
            for _ in range(2)
        ]
        docs.append((f"doc-{i:03d}", lists))
    return query, docs


class TestScoreUpperBound:
    @settings(max_examples=80, deadline=None)
    @given(join_instances(max_terms=4, max_len=5))
    def test_bounds_every_matchset_score(self, instance):
        from repro.core.algorithms.naive import iterate_matchsets

        query, lists = instance
        for scoring in (trec_win(), trec_med(), trec_max()):
            bound = score_upper_bound(scoring, lists)
            for matchset in iterate_matchsets(query, lists):
                assert scoring.score(matchset) <= bound + 1e-9


class TestRankTopK:
    @pytest.mark.parametrize("scoring_factory", [trec_win, trec_med, trec_max])
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_equals_full_ranking_prefix(self, scoring_factory, k):
        query, docs = corpus_of(40, seed=9)
        scoring = scoring_factory()
        full = rank_match_lists(docs, query, scoring)
        result = rank_top_k(docs, query, scoring, k)
        assert [(r.doc_id, pytest.approx(r.score)) for r in result.ranked] == [
            (r.doc_id, pytest.approx(r.score)) for r in full[:k]
        ]

    def test_ties_resolved_like_full_ranking(self):
        query = Query.of("a", "b")
        lists = [MatchList.from_pairs([(0, 0.5)]), MatchList.from_pairs([(1, 0.5)])]
        docs = [("z", lists), ("a", lists), ("m", lists)]
        full = rank_match_lists(docs, query, trec_win())
        result = rank_top_k(docs, query, trec_win(), 2)
        assert [r.doc_id for r in result.ranked] == [r.doc_id for r in full[:2]]

    def test_skips_hopeless_documents(self):
        query = Query.of("a", "b")
        docs = [("strong", [
            MatchList.from_pairs([(0, 1.0)]),
            MatchList.from_pairs([(1, 1.0)]),
        ])]
        # Many weak, far-apart documents whose *bound* is already below
        # the strong document's actual score.
        for i in range(30):
            docs.append(
                (
                    f"weak-{i:02d}",
                    [
                        MatchList.from_pairs([(0, 0.05)]),
                        MatchList.from_pairs([(50, 0.05)]),
                    ],
                )
            )
        result = rank_top_k(docs, query, trec_win(), 1)
        assert result.ranked[0].doc_id == "strong"
        assert result.joins_skipped >= 25

    def test_statistics(self):
        query, docs = corpus_of(20, seed=4)
        result = rank_top_k(docs, query, trec_med(), 3)
        assert result.documents_seen == 20
        assert 0 <= result.joins_run <= 20
        assert result.joins_skipped == 20 - result.joins_run

    def test_k_validation(self):
        query, docs = corpus_of(3, seed=1)
        with pytest.raises(ValueError):
            rank_top_k(docs, query, trec_win(), 0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_randomized_equivalence(self, seed):
        query, docs = corpus_of(25, seed=seed)
        scoring = trec_med()
        full = rank_match_lists(docs, query, scoring)
        result = rank_top_k(docs, query, scoring, 5)
        assert [r.doc_id for r in result.ranked] == [r.doc_id for r in full[:5]]
