"""Related-work document-level proximity scorers."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.match import MatchList
from repro.retrieval.proximity_scoring import (
    InfluenceScorer,
    PairwiseProximityScorer,
    ShortestIntervalScorer,
    SpanScorer,
    minimal_cover_windows,
)


def lists_from(*location_lists):
    return [MatchList.from_pairs([(loc, 1.0) for loc in locs]) for locs in location_lists]


def brute_force_minimal_windows(location_lists):
    """All minimal covering windows by exhaustive enumeration."""
    covers = set()
    for combo in itertools.product(*location_lists):
        covers.add((min(combo), max(combo)))
    return sorted(
        w
        for w in covers
        if not any(
            o != w and o[0] >= w[0] and o[1] <= w[1] for o in covers
        )
    )


class TestMinimalCoverWindows:
    def test_single_term(self):
        assert minimal_cover_windows(lists_from([3, 9])) == [(3, 3), (9, 9)]

    def test_two_terms_basic(self):
        windows = minimal_cover_windows(lists_from([1, 10], [4]))
        assert windows == [(1, 4), (4, 10)]

    def test_empty_when_some_term_missing(self):
        assert minimal_cover_windows(lists_from([1, 2], [])) == []

    def test_no_nested_windows(self):
        windows = minimal_cover_windows(
            lists_from([1, 5, 20], [2, 6, 21], [3, 25])
        )
        for a in windows:
            for b in windows:
                if a != b:
                    assert not (b[0] >= a[0] and b[1] <= a[1])

    @settings(max_examples=120)
    @given(
        st.lists(
            st.lists(st.integers(0, 25), min_size=1, max_size=5),
            min_size=1,
            max_size=3,
        )
    )
    def test_matches_brute_force(self, location_lists):
        got = minimal_cover_windows(lists_from(*location_lists))
        want = brute_force_minimal_windows(
            [sorted(set(locs)) for locs in location_lists]
        )
        assert got == want


class TestShortestIntervalScorer:
    def test_tight_beats_loose(self):
        scorer = ShortestIntervalScorer(2)
        tight = scorer.score(lists_from([0], [1]))
        loose = scorer.score(lists_from([0], [30]))
        assert tight > loose

    def test_perfect_window_scores_one(self):
        scorer = ShortestIntervalScorer(2)
        assert scorer.score(lists_from([0], [1])) == pytest.approx(1.0)

    def test_more_windows_more_score(self):
        scorer = ShortestIntervalScorer(2)
        one = scorer.score(lists_from([0], [1]))
        two = scorer.score(lists_from([0, 50], [1, 51]))
        assert two > one

    def test_missing_term_scores_zero(self):
        assert ShortestIntervalScorer(2).score(lists_from([1], [])) == 0.0

    def test_rejects_bad_num_terms(self):
        with pytest.raises(ValueError):
            ShortestIntervalScorer(0)


class TestPairwiseProximityScorer:
    def test_inverse_square_accumulation(self):
        scorer = PairwiseProximityScorer(window=5)
        assert scorer.score(lists_from([0], [2])) == pytest.approx(1 / 4)
        assert scorer.score(lists_from([0], [1])) == pytest.approx(1.0)

    def test_pairs_beyond_window_ignored(self):
        scorer = PairwiseProximityScorer(window=5)
        assert scorer.score(lists_from([0], [9])) == 0.0

    def test_same_term_pairs_ignored(self):
        scorer = PairwiseProximityScorer(window=5)
        assert scorer.score(lists_from([0, 1])) == 0.0

    def test_co_located_pairs_ignored(self):
        scorer = PairwiseProximityScorer(window=5)
        assert scorer.score(lists_from([3], [3])) == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            PairwiseProximityScorer(window=0)


class TestInfluenceScorer:
    def test_overlapping_influence_scores(self):
        scorer = InfluenceScorer(reach=5)
        assert scorer.score(lists_from([10], [12])) > 0.0

    def test_disjoint_influence_scores_zero(self):
        scorer = InfluenceScorer(reach=3)
        assert scorer.score(lists_from([0], [100])) == 0.0

    def test_closer_scores_higher(self):
        scorer = InfluenceScorer(reach=8)
        near = scorer.score(lists_from([10], [11]))
        far = scorer.score(lists_from([10], [15]))
        assert near > far

    def test_missing_term_scores_zero(self):
        assert InfluenceScorer().score(lists_from([1], [])) == 0.0


class TestSpanScorer:
    def test_multi_term_span_scores(self):
        scorer = SpanScorer(max_gap=5)
        assert scorer.score(lists_from([0], [2])) == pytest.approx(4 / 3)

    def test_single_term_span_scores_zero(self):
        scorer = SpanScorer(max_gap=5)
        assert scorer.score(lists_from([0, 2])) == 0.0

    def test_gap_splits_spans(self):
        scorer = SpanScorer(max_gap=3)
        split = scorer.score(lists_from([0, 20], [1, 21]))
        assert split == pytest.approx(2 * (4 / 2))

    def test_denser_span_scores_higher(self):
        scorer = SpanScorer(max_gap=10)
        dense = scorer.score(lists_from([0], [1], [2]))
        sparse = scorer.score(lists_from([0], [4], [8]))
        assert dense > sparse
