"""Durable systems must rank byte-identically to in-memory systems.

The segmented index sits behind the same read API as the monolithic
:class:`InvertedIndex`, so for every scoring family, every k, with and
without the pair index, through every compaction state (memtable only,
sealed, merged) and across a close-and-reopen, a durable
:class:`SearchSystem` must return *exactly* what the in-memory system
returns — same document ids, same scores, same matchsets, same tie
order.  The corpus reuses the DAAT differential mix (adjacent terms,
exact duplicates, far-apart terms, synonym-only, partial matches) so
every pruning path crosses segment boundaries.
"""

import pytest

from repro.service.executor import SCORING_PRESETS
from repro.system import SearchSystem

FAMILIES = sorted(SCORING_PRESETS)  # max, med, win
KS = (1, 5, 20)

QUERIES = (
    "maker, partnership",
    "partnership, maker",
    "maker, partnership, sports",
)

PAIR_TERMS = ["maker", "partnership", "sports"]


def build_corpus():
    documents = []
    for i in range(8):
        filler = " ".join(f"w{j}" for j in range(i))
        documents.append(
            (
                f"a-{i:02d}",
                f"maker {filler} partnership sports maker {filler} partnership",
            )
        )
    for i in range(4):
        documents.append((f"t-{i}", "maker partnership sports maker partnership"))
    far = " ".join(f"y{j}" for j in range(40))
    for i in range(4):
        documents.append((f"y-{i:02d}", f"maker {far} partnership {far} sports"))
    for i in range(6):
        documents.append(
            (f"z-{i:02d}", f"vendor {'x ' * i}alliance sports story number {i}")
        )
    for i in range(4):
        documents.append((f"p-{i}", f"partnership only number {i}"))
    return documents


@pytest.fixture(scope="module")
def reference():
    system = SearchSystem()
    system.add_texts(build_corpus())
    return system


def assert_identical(got, expected):
    assert [d.doc_id for d in got] == [d.doc_id for d in expected]
    assert [d.score for d in got] == [d.score for d in expected]
    assert [d.matchset for d in got] == [d.matchset for d in expected]
    assert list(got) == list(expected)


def assert_systems_agree(durable, reference):
    for family in FAMILIES:
        scoring = SCORING_PRESETS[family]()
        for k in KS:
            for query in QUERIES:
                assert_identical(
                    durable.ask(query, top_k=k, scoring=scoring),
                    reference.ask(query, top_k=k, scoring=scoring),
                )


def test_memtable_only_matches_monolithic(tmp_path, reference):
    durable = SearchSystem.open(tmp_path / "data")
    durable.add_texts(build_corpus())
    try:
        assert durable.durable and durable.supports_concurrent_writes
        assert_systems_agree(durable, reference)
    finally:
        durable.close()


def test_sealed_and_merged_match_monolithic(tmp_path, reference):
    durable = SearchSystem.open(tmp_path / "data", merge_fanin=2)
    corpus = build_corpus()
    # Many tiny segments: every posting merge crosses boundaries.
    for chunk_start in range(0, len(corpus), 4):
        durable.add_texts(corpus[chunk_start : chunk_start + 4])
        durable.index.seal()
    try:
        assert durable.index.segments_live > 2
        generation = durable.index_generation
        assert_systems_agree(durable, reference)
        while durable.index.merge_once():
            pass
        # Compaction preserves content: same answers, same generation
        # (cached rankings stay valid across the merge).
        assert durable.index_generation == generation
        assert_systems_agree(durable, reference)
    finally:
        durable.close()


def test_reopened_system_matches_monolithic(tmp_path, reference):
    durable = SearchSystem.open(tmp_path / "data", seal_threshold=8)
    corpus = build_corpus()
    durable.add_texts(corpus[:12])
    durable.index.seal()
    durable.add_texts(corpus[12:])  # half sealed, half WAL-only
    generation = durable.index_generation
    durable.close()
    reopened = SearchSystem.open(tmp_path / "data", seal_threshold=8)
    try:
        assert reopened.index_generation == generation
        assert len(reopened) == len(corpus)
        assert_systems_agree(reopened, reference)
    finally:
        reopened.close()


def test_pair_index_on_durable_system(tmp_path, reference):
    durable = SearchSystem.open(tmp_path / "data")
    durable.add_texts(build_corpus())
    try:
        durable.build_pair_index(PAIR_TERMS, min_pair_df=1)
        reference.build_pair_index(PAIR_TERMS, min_pair_df=1)
        assert_systems_agree(durable, reference)
        durable.index.seal()
        # Seal does not advance the generation, so the pair index is
        # still live — and still exact.
        assert_systems_agree(durable, reference)
    finally:
        reference._pair_index = None  # shared module fixture: restore
        durable.close()


def test_mutations_track_monolithic(tmp_path):
    durable = SearchSystem.open(tmp_path / "data", seal_threshold=6)
    volatile = SearchSystem()
    corpus = build_corpus()
    durable.add_texts(corpus)
    volatile.add_texts(corpus)
    try:
        for doc_id in ("a-03", "t-1", "y-00"):
            durable.remove(doc_id)
            volatile.remove(doc_id)
        assert_systems_agree(durable, volatile)
        replacement = [("a-03", "maker partnership together again")]
        durable.add_texts(replacement)
        volatile.add_texts(replacement)
        durable.index.seal()
        assert_systems_agree(durable, volatile)
        assert len(durable) == len(volatile)
    finally:
        durable.close()


def test_portable_save_round_trips(tmp_path):
    durable = SearchSystem.open(tmp_path / "data")
    durable.add_texts(build_corpus())
    durable.remove("p-0")
    try:
        durable.save(tmp_path / "portable.json")
        loaded = SearchSystem.load(tmp_path / "portable.json")
        assert_systems_agree(durable, loaded)
        # In-place checkpoint (no path) truncates the WAL.
        durable.save()
        assert (durable.index.data_dir / "wal.log").stat().st_size == 0
    finally:
        durable.close()
