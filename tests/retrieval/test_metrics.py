"""Retrieval-effectiveness metrics."""

import pytest

from repro.core.match import Match
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.retrieval.metrics import (
    average_precision,
    mean_average_precision,
    mean_reciprocal_rank,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.retrieval.ranking import RankedDocument


def ranked(*doc_ids):
    q = Query.of("a")
    ms = MatchSet.from_sequence(q, [Match(0, 1.0)])
    return [RankedDocument(d, 1.0 / (i + 1), ms) for i, d in enumerate(doc_ids)]


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank(ranked("x", "y"), {"x"}) == pytest.approx(1.0)

    def test_third_position(self):
        assert reciprocal_rank(ranked("a", "b", "x"), {"x"}) == pytest.approx(1 / 3)

    def test_missing_relevant(self):
        assert reciprocal_rank(ranked("a", "b"), {"x"}) == 0.0

    def test_predicate_form(self):
        rr = reciprocal_rank(ranked("a", "b"), lambda r: r.doc_id == "b")
        assert rr == pytest.approx(0.5)

    def test_mrr(self):
        runs = [(ranked("x", "y"), {"x"}), (ranked("a", "x"), {"x"})]
        assert mean_reciprocal_rank(runs) == pytest.approx((1.0 + 0.5) / 2)

    def test_mrr_empty(self):
        assert mean_reciprocal_rank([]) == 0.0


class TestPrecisionRecall:
    def test_precision_at_k(self):
        r = ranked("x", "a", "y", "b")
        assert precision_at_k(r, {"x", "y"}, 2) == pytest.approx(0.5)
        assert precision_at_k(r, {"x", "y"}, 4) == pytest.approx(0.5)
        assert precision_at_k(r, {"x", "y"}, 1) == pytest.approx(1.0)

    def test_precision_counts_missing_slots(self):
        # Fewer results than k: denominator stays k (standard P@k).
        assert precision_at_k(ranked("x"), {"x"}, 5) == pytest.approx(0.2)

    def test_recall_at_k(self):
        r = ranked("x", "a", "y", "b")
        assert recall_at_k(r, {"x", "y"}, 1) == pytest.approx(0.5)
        assert recall_at_k(r, {"x", "y"}, 3) == pytest.approx(1.0)

    def test_recall_empty_relevant_set(self):
        assert recall_at_k(ranked("a"), set(), 3) == 0.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k(ranked("a"), {"a"}, 0)
        with pytest.raises(ValueError):
            recall_at_k(ranked("a"), {"a"}, -1)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(ranked("x", "y", "a"), {"x", "y"}) == pytest.approx(1.0)

    def test_interleaved_ranking(self):
        # relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2
        ap = average_precision(ranked("x", "a", "y"), {"x", "y"})
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)

    def test_missing_relevant_counts_as_zero(self):
        ap = average_precision(ranked("x", "a"), {"x", "never-found"})
        assert ap == pytest.approx(0.5)

    def test_map(self):
        runs = [
            (ranked("x", "a"), {"x"}),
            (ranked("a", "x"), {"x"}),
        ]
        assert mean_average_precision(runs) == pytest.approx((1.0 + 0.5) / 2)

    def test_map_empty(self):
        assert mean_average_precision([]) == 0.0
