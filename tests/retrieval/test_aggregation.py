"""Cross-document answer aggregation."""

import pytest

from repro.retrieval.qa import Answer, aggregate_answers


def answer(doc_id, score, **fields):
    spans = tuple((term, text, i) for i, (term, text) in enumerate(fields.items()))
    return Answer(doc_id, score, spans, snippet="")


class TestAggregateAnswers:
    def test_identical_fields_group(self):
        answers = [
            answer("d1", 2.0, maker="lenovo", sport="nba"),
            answer("d2", 1.5, maker="lenovo", sport="nba"),
            answer("d3", 3.0, maker="dell", sport="olympics"),
        ]
        aggregated = aggregate_answers(answers)
        assert len(aggregated) == 2
        top = aggregated[0]
        assert top.as_dict() == {"maker": "lenovo", "sport": "nba"}
        assert top.support == 2
        assert top.best_score == pytest.approx(2.0)
        assert top.doc_ids == ("d1", "d2")

    def test_support_outranks_score(self):
        answers = [
            answer("d1", 9.0, who="x"),
            answer("d2", 1.0, who="y"),
            answer("d3", 1.0, who="y"),
        ]
        aggregated = aggregate_answers(answers)
        assert aggregated[0].as_dict() == {"who": "y"}

    def test_score_breaks_support_ties(self):
        answers = [answer("d1", 1.0, who="a"), answer("d2", 2.0, who="b")]
        aggregated = aggregate_answers(answers)
        assert aggregated[0].as_dict() == {"who": "b"}

    def test_empty_input(self):
        assert aggregate_answers([]) == []

    def test_end_to_end_corroboration(self):
        """Two articles stating the same partnership beat one stating
        another, even when the lone one scores higher per-document."""
        from repro.core.query import Query
        from repro.core.scoring.presets import trec_max
        from repro.retrieval.qa import QAEngine
        from repro.text.document import Corpus, Document

        corpus = Corpus(
            [
                Document("a1", "Lenovo confirmed its partnership with the NBA."),
                Document("a2", "Sources say the Lenovo NBA partnership is growing."),
                Document("b1", "Dell tennis partnership announced with fanfare."),
            ]
        )
        engine = QAEngine(corpus, trec_max())
        answers = engine.ask(Query.of("pc maker", "sports", "partnership"), top_k=10)
        aggregated = aggregate_answers(answers)
        assert aggregated[0].support == 2
        assert "lenovo" in aggregated[0].as_dict().values()
