"""The DAAT path's central proof obligation: byte-identical answers.

For every scoring family, every k, with and without the two-term pair
index, and on both kernel paths (``REPRO_NO_KERNELS``), the DAAT
max-score loop must return *exactly* what the materialize-all pipeline
returns — same document ids, same scores, same matchsets, same tie
order.  The corpus deliberately mixes adjacent-term documents (the top
of every ranking), exact duplicates (tie-breaking exercised, not
assumed), synonym-only documents (pruned by the membership bound),
far-apart-terms documents (pruned only by the pair-proximity bound),
and partial matches (conjunctively excluded).
"""

import pytest

from repro.cluster import ClusterExecutor
from repro.retrieval.instrumentation import collect_join_stats
from repro.retrieval.ranking import rank_match_lists
from repro.retrieval.topk_retrieval import score_upper_bound
from repro.service.executor import SCORING_PRESETS
from repro.system import SearchSystem

FAMILIES = sorted(SCORING_PRESETS)  # max, med, win
KS = (1, 5, 20)

QUERIES = (
    "maker, partnership",
    # Reversed / shuffled term order: the pair index stores each pair
    # under its lexicographically smaller term, so these exercise the
    # (query order != entry order) orientation of pair-entry seeding.
    "partnership, maker",
    "maker, partnership, sports",
    "sports, maker, partnership",
)

PAIR_TERMS = ["maker", "partnership", "sports"]


def build_corpus():
    documents = []
    # Adjacent terms with growing gaps: distinct scores at the top.
    for i in range(8):
        filler = " ".join(f"w{j}" for j in range(i))
        documents.append(
            (
                f"a-{i:02d}",
                f"maker {filler} partnership sports maker {filler} partnership",
            )
        )
    # Exact duplicates under different ids: doc-id tie-breaks.
    for i in range(4):
        documents.append((f"t-{i}", "maker partnership sports maker partnership"))
    # Terms present but far apart: only the pair-proximity bound can
    # prune these (their membership bound is maximal).
    far = " ".join(f"y{j}" for j in range(40))
    for i in range(4):
        documents.append((f"y-{i:02d}", f"maker {far} partnership {far} sports"))
    # Synonym-only documents (vendor≈maker, alliance≈partnership at
    # 0.7): the membership bound prunes these once the floor is full.
    for i in range(6):
        documents.append(
            (f"z-{i:02d}", f"vendor {'x ' * i}alliance sports story number {i}")
        )
    # Partial matches: conjunctively excluded everywhere.
    for i in range(4):
        documents.append((f"p-{i}", f"partnership only number {i}"))
    return documents


@pytest.fixture(scope="module")
def plain_system():
    built = SearchSystem()
    built.add_texts(build_corpus())
    return built


@pytest.fixture(scope="module")
def paired_system():
    built = SearchSystem()
    built.add_texts(build_corpus())
    built.build_pair_index(PAIR_TERMS, min_pair_df=1)
    return built


def full_ranking(system, query_text, scoring, k):
    """The ground truth: rank every candidate, take the first k."""
    query, matcher = system._plan(query_text)
    assert matcher is None, "differential corpus must stay on the offline path"
    per_doc = system._per_document_lists(query, None)
    return rank_match_lists(per_doc, query, scoring, top_k=k)


def assert_identical(got, expected):
    assert [d.doc_id for d in got] == [d.doc_id for d in expected]
    assert [d.score for d in got] == [d.score for d in expected]
    assert [d.matchset for d in got] == [d.matchset for d in expected]
    assert list(got) == list(expected)


@pytest.mark.parametrize("kernels", ("on", "off"))
@pytest.mark.parametrize("use_pairs", (False, True))
@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("family", FAMILIES)
def test_daat_matches_materialize_all(
    request, family, k, use_pairs, kernels, monkeypatch
):
    system = request.getfixturevalue(
        "paired_system" if use_pairs else "plain_system"
    )
    scoring = SCORING_PRESETS[family]()
    if kernels == "off":
        monkeypatch.setenv("REPRO_NO_KERNELS", "1")
    else:
        monkeypatch.delenv("REPRO_NO_KERNELS", raising=False)
    for query in QUERIES:
        monkeypatch.delenv("REPRO_NO_DAAT", raising=False)
        daat = system.ask(query, top_k=k, scoring=scoring)
        monkeypatch.setenv("REPRO_NO_DAAT", "1")
        materialized = system.ask(query, top_k=k, scoring=scoring)
        exhaustive = full_ranking(system, query, scoring, k)
        assert_identical(daat, materialized)
        assert_identical(daat, exhaustive)


def test_membership_bound_skips_synonym_documents(plain_system, monkeypatch):
    monkeypatch.delenv("REPRO_NO_DAAT", raising=False)
    with collect_join_stats() as stats:
        plain_system.ask("maker, partnership", top_k=3)
    # The z- documents (0.7 expansion scores) cannot beat a floor of
    # adjacent exact-term documents; they are pruned before any match
    # list is materialized.
    assert stats.documents_scanned > 0
    assert stats.documents_pivot_skipped > 0
    assert stats.joins_run + stats.joins_skipped <= stats.documents_scanned


def test_pair_index_prunes_far_apart_documents(paired_system, monkeypatch):
    monkeypatch.delenv("REPRO_NO_DAAT", raising=False)
    with collect_join_stats() as stats:
        results = paired_system.ask("maker, partnership", top_k=3)
    assert stats.pair_index_hits > 0
    assert stats.documents_pivot_skipped > 0
    # The y- documents (maximal membership bound, huge min-gap) must
    # not reach the top 3.
    assert all(not d.doc_id.startswith("y-") for d in results)


def test_stale_pair_index_is_ignored(monkeypatch):
    system = SearchSystem()
    system.add_texts(build_corpus())
    system.build_pair_index(PAIR_TERMS, min_pair_df=1)
    # Mutating the corpus outdates the pair index; answers must come
    # from the live generation, not the stale precomputation.
    far = " ".join(f"q{j}" for j in range(60))
    system.add_texts([("b-00", f"maker partnership sports {far} end")])
    monkeypatch.delenv("REPRO_NO_DAAT", raising=False)
    daat = system.ask("maker, partnership", top_k=5)
    monkeypatch.setenv("REPRO_NO_DAAT", "1")
    materialized = system.ask("maker, partnership", top_k=5)
    assert_identical(daat, materialized)
    assert any(d.doc_id == "b-00" for d in daat)


def test_cluster_shards_run_daat_identically(plain_system, monkeypatch):
    # Shard workers inherit the default environment (DAAT on); the
    # single-process reference runs the materialize-all path.  Both must
    # agree through the scatter/threshold-merge pipeline.
    cluster = ClusterExecutor(
        plain_system, shards=2, watchdog_interval=0, cache_size=0
    )
    try:
        monkeypatch.setenv("REPRO_NO_DAAT", "1")
        for family in FAMILIES:
            scoring = SCORING_PRESETS[family]()
            for k in (1, 5):
                expected = plain_system.ask(
                    "maker, partnership", top_k=k, scoring=scoring
                )
                response = cluster.ask("maker, partnership", top_k=k, scoring=family)
                assert not response.degraded
                assert_identical(list(response.results), expected)
    finally:
        cluster.shutdown()


@pytest.mark.parametrize("family", FAMILIES)
def test_score_upper_bound_paths_agree(plain_system, family, monkeypatch):
    # The memoized object-path bound (REPRO_NO_KERNELS=1) must equal the
    # kernel-path bound — and its memoized re-read must equal the first
    # computation.
    scoring = SCORING_PRESETS[family]()
    concepts = plain_system._concepts
    lists = concepts.match_lists(["maker", "partnership"], "a-03")
    monkeypatch.delenv("REPRO_NO_KERNELS", raising=False)
    kernel_bound = score_upper_bound(scoring, lists)
    monkeypatch.setenv("REPRO_NO_KERNELS", "1")
    object_bound = score_upper_bound(scoring, lists)
    memoized_bound = score_upper_bound(scoring, lists)
    assert object_bound == kernel_bound
    assert memoized_bound == object_bound
