"""Document ranking by best-matchset score."""

import pytest

from repro.core.match import MatchList
from repro.core.query import Query
from repro.core.scoring.presets import trec_win
from repro.retrieval.ranking import rank_documents, rank_match_lists
from repro.text.document import Corpus, Document


class TestRankMatchLists:
    @pytest.fixture
    def query(self):
        return Query.of("a", "b")

    def test_ranks_by_descending_score(self, query):
        per_doc = [
            ("loose", [MatchList.from_pairs([(0, 1.0)]), MatchList.from_pairs([(50, 1.0)])]),
            ("tight", [MatchList.from_pairs([(0, 1.0)]), MatchList.from_pairs([(1, 1.0)])]),
        ]
        ranked = rank_match_lists(per_doc, query, trec_win())
        assert [r.doc_id for r in ranked] == ["tight", "loose"]
        assert ranked[0].score > ranked[1].score

    def test_documents_without_full_matchset_dropped(self, query):
        per_doc = [
            ("full", [MatchList.from_pairs([(0, 1.0)]), MatchList.from_pairs([(1, 1.0)])]),
            ("partial", [MatchList.from_pairs([(0, 1.0)]), MatchList()]),
        ]
        ranked = rank_match_lists(per_doc, query, trec_win())
        assert [r.doc_id for r in ranked] == ["full"]

    def test_duplicate_avoidance_respected(self, query):
        per_doc = [
            ("dup-only", [MatchList.from_pairs([(5, 1.0)]), MatchList.from_pairs([(5, 1.0)])]),
        ]
        assert rank_match_lists(per_doc, query, trec_win()) == []
        relaxed = rank_match_lists(per_doc, query, trec_win(), avoid_duplicates=False)
        assert len(relaxed) == 1

    def test_ties_broken_by_doc_id(self, query):
        lists = [MatchList.from_pairs([(0, 1.0)]), MatchList.from_pairs([(1, 1.0)])]
        ranked = rank_match_lists([("b", lists), ("a", lists)], query, trec_win())
        assert [r.doc_id for r in ranked] == ["a", "b"]


class TestRankDocuments:
    def test_end_to_end_over_corpus(self):
        corpus = Corpus(
            [
                Document("near", "the workshop was held in Pisa that June of 2008"),
                Document(
                    "far",
                    "a workshop happened. " + "filler words repeat here. " * 20
                    + "later in Pisa during June 2008",
                ),
                Document("none", "nothing relevant at all"),
            ]
        )
        query = Query.of("conference|workshop", "date", "place")
        ranked = rank_documents(corpus, query, trec_win())
        assert [r.doc_id for r in ranked][:2] == ["near", "far"]
        assert "none" not in [r.doc_id for r in ranked]
