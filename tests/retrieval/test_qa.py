"""The QA engine on a small corpus."""

import pytest

from repro.core.query import Query
from repro.retrieval.qa import QAEngine
from repro.core.scoring.presets import trec_max
from repro.text.document import Corpus, Document


@pytest.fixture
def corpus():
    return Corpus(
        [
            Document(
                "news-1",
                "As part of the new deal, Lenovo will become the official PC "
                "partner of the NBA, and it will be marketing its NBA "
                "affiliation in the U.S. and in China.",
            ),
            Document(
                "news-2",
                "Hewlett-Packard announced quarterly earnings, and a vague "
                "partnership between unnamed sponsors was discussed briefly.",
            ),
            Document("news-3", "Completely unrelated text about cooking pasta."),
        ]
    )


class TestQAEngine:
    def test_returns_ranked_answers(self, corpus):
        engine = QAEngine(corpus, trec_max())
        query = Query.of("pc maker", "sports", "partnership")
        answers = engine.ask(query, top_k=3)
        assert answers
        assert answers[0].doc_id == "news-1"
        assert all(a.score >= b.score for a, b in zip(answers, answers[1:]))

    def test_answer_spans_name_all_terms(self, corpus):
        engine = QAEngine(corpus, trec_max())
        query = Query.of("pc maker", "sports", "partnership")
        top = engine.ask(query, top_k=1)[0]
        assert {term for term, _text, _loc in top.spans} == set(query.terms)

    def test_snippet_covers_matchset(self, corpus):
        engine = QAEngine(corpus, trec_max(), snippet_window=3)
        query = Query.of("pc maker", "sports", "partnership")
        top = engine.ask(query, top_k=1)[0]
        assert "lenovo" in top.snippet.lower() or "nba" in top.snippet.lower()

    def test_top_k_limits_results(self, corpus):
        engine = QAEngine(corpus, trec_max())
        query = Query.of("pc maker", "sports", "partnership")
        assert len(engine.ask(query, top_k=1)) <= 1
