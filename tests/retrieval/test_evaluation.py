"""Answer-rank evaluation (Figure 12 semantics)."""

from repro.core.match import Match, MatchList
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.retrieval.evaluation import AnswerRank, answer_rank
from repro.retrieval.ranking import RankedDocument


def ranked_doc(doc_id: str, score: float) -> RankedDocument:
    q = Query.of("a")
    ms = MatchSet.from_sequence(q, [Match(0, 1.0)])
    return RankedDocument(doc_id, score, ms)


class TestAnswerRank:
    def test_unique_top_rank(self):
        ranked = [ranked_doc("ans", 5.0), ranked_doc("x", 3.0)]
        r = answer_rank(ranked, lambda d: d.doc_id == "ans")
        assert r.rank == 1 and r.ties == 1
        assert str(r) == "1"

    def test_rank_counts_strictly_higher(self):
        ranked = [ranked_doc("x", 9.0), ranked_doc("y", 7.0), ranked_doc("ans", 5.0)]
        r = answer_rank(ranked, lambda d: d.doc_id == "ans")
        assert r.rank == 3

    def test_ties_reported_like_the_paper(self):
        ranked = [
            ranked_doc("x", 9.0),
            ranked_doc("ans", 5.0),
            ranked_doc("y", 5.0),
            ranked_doc("z", 5.0),
        ]
        r = answer_rank(ranked, lambda d: d.doc_id == "ans")
        assert r.rank == 2 and r.ties == 3
        assert str(r) == "2(3)"

    def test_missing_answer(self):
        r = answer_rank([ranked_doc("x", 1.0)], lambda d: False)
        assert r.rank is None
        assert str(r) == "-"

    def test_tolerance_groups_near_equal_scores(self):
        ranked = [ranked_doc("ans", 5.0), ranked_doc("x", 5.0 + 1e-15)]
        r = answer_rank(ranked, lambda d: d.doc_id == "ans")
        assert r.rank == 1 and r.ties == 2
