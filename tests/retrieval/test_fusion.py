"""Reciprocal-rank fusion."""

import pytest

from repro.core.match import Match
from repro.core.matchset import MatchSet
from repro.core.query import Query
from repro.retrieval.fusion import reciprocal_rank_fusion
from repro.retrieval.ranking import RankedDocument


def ranking(*doc_ids):
    q = Query.of("a")
    ms = MatchSet.from_sequence(q, [Match(0, 1.0)])
    return [RankedDocument(d, 1.0 / (i + 1), ms) for i, d in enumerate(doc_ids)]


class TestReciprocalRankFusion:
    def test_consensus_document_wins(self):
        fused = reciprocal_rank_fusion(
            [ranking("x", "a", "b"), ranking("c", "x", "d"), ranking("x", "e", "f")]
        )
        assert fused[0].doc_id == "x"

    def test_score_formula(self):
        fused = reciprocal_rank_fusion([ranking("x", "y")], k=60)
        by_id = {d.doc_id: d.score for d in fused}
        assert by_id["x"] == pytest.approx(1 / 61)
        assert by_id["y"] == pytest.approx(1 / 62)

    def test_absent_documents_contribute_nothing(self):
        fused = reciprocal_rank_fusion([ranking("x"), ranking("y")])
        by_id = {d.doc_id: d for d in fused}
        assert by_id["x"].ranks == (1, None)
        assert by_id["x"].score == pytest.approx(1 / 61)

    def test_deterministic_tie_break(self):
        fused = reciprocal_rank_fusion([ranking("b"), ranking("a")])
        assert [d.doc_id for d in fused] == ["a", "b"]

    def test_empty_inputs(self):
        assert reciprocal_rank_fusion([]) == []

    def test_k_validation(self):
        with pytest.raises(ValueError):
            reciprocal_rank_fusion([ranking("a")], k=0)

    def test_fusing_the_three_families_end_to_end(self):
        from repro.core.match import MatchList
        from repro.core.query import Query
        from repro.core.scoring.presets import trec_max, trec_med, trec_win
        from repro.retrieval.ranking import rank_match_lists

        query = Query.of("a", "b")
        docs = [
            ("tight", [MatchList.from_pairs([(0, 0.6)]), MatchList.from_pairs([(1, 0.6)])]),
            ("strong", [MatchList.from_pairs([(0, 1.0)]), MatchList.from_pairs([(9, 1.0)])]),
            ("weak", [MatchList.from_pairs([(0, 0.1)]), MatchList.from_pairs([(40, 0.1)])]),
        ]
        rankings = [
            rank_match_lists(docs, query, scoring)
            for scoring in (trec_win(), trec_med(), trec_max())
        ]
        fused = reciprocal_rank_fusion(rankings)
        assert fused[-1].doc_id == "weak"  # consensus loser stays last
