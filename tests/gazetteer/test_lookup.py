"""Gazetteer tests."""

from repro.gazetteer.lookup import Gazetteer, default_gazetteer


class TestGazetteer:
    def test_city_country_region_lookup(self):
        g = default_gazetteer()
        assert "pisa" in g
        assert "italy" in g
        assert "asia" in g
        assert g.kind_of("pisa") == Gazetteer.CITY
        assert g.kind_of("italy") == Gazetteer.COUNTRY
        assert g.kind_of("asia") == Gazetteer.REGION

    def test_case_and_whitespace_insensitive(self):
        g = default_gazetteer()
        assert "PISA" in g
        assert "  New   York " in g

    def test_multiword_names(self):
        g = default_gazetteer()
        assert "hong kong" in g
        assert "rio de janeiro" in g
        assert g.max_words >= 3

    def test_unknown_names(self):
        g = default_gazetteer()
        assert "atlantis" not in g
        assert g.kind_of("atlantis") is None

    def test_city_wins_over_region_on_collision(self):
        # Custom tables where the same name is a region and a city: city
        # is loaded last and wins.
        g = Gazetteer(cities=("springfield",), countries=(), regions=("springfield",))
        assert g.kind_of("springfield") == Gazetteer.CITY

    def test_default_is_cached(self):
        assert default_gazetteer() is default_gazetteer()

    def test_names_iteration(self):
        g = Gazetteer(cities=("a",), countries=("b",), regions=("c",))
        assert sorted(g.names()) == ["a", "b", "c"]
        assert len(g) == 3
