"""Full-text factoid-QA corpora: generation and end-to-end answering."""

import pytest

from repro.datasets.qa_corpus import FACTOID_QUESTIONS, generate_qa_corpus
from repro.matching.queries import build_query_matcher
from repro.retrieval.ranking import rank_documents
from repro.core.scoring.presets import trec_max


class TestGeneration:
    def test_exactly_one_answer_document(self):
        corpus = generate_qa_corpus(FACTOID_QUESTIONS[0], num_docs=30)
        answers = [d for d in corpus if d.metadata["is_answer"]]
        assert len(answers) == 1
        assert FACTOID_QUESTIONS[0].answer_sentence in answers[0].text

    def test_reproducible(self):
        a = [d.text for d in generate_qa_corpus(FACTOID_QUESTIONS[1], num_docs=20, seed=3)]
        b = [d.text for d in generate_qa_corpus(FACTOID_QUESTIONS[1], num_docs=20, seed=3)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [d.text for d in generate_qa_corpus(FACTOID_QUESTIONS[1], num_docs=20, seed=1)]
        b = [d.text for d in generate_qa_corpus(FACTOID_QUESTIONS[1], num_docs=20, seed=2)]
        assert a != b

    def test_distractors_do_not_contain_the_answer(self):
        question = FACTOID_QUESTIONS[2]
        corpus = generate_qa_corpus(question, num_docs=30)
        for doc in corpus:
            if not doc.metadata["is_answer"]:
                assert question.answer_sentence not in doc.text

    def test_confusers_appear_somewhere(self):
        question = FACTOID_QUESTIONS[0]
        corpus = generate_qa_corpus(question, num_docs=60, confuser_rate=0.9)
        texts = " ".join(d.text for d in corpus if not d.metadata["is_answer"])
        assert any(c in texts for c in question.confusers)


class TestEndToEndAnswering:
    @pytest.mark.parametrize(
        "question", FACTOID_QUESTIONS, ids=[q.question_id for q in FACTOID_QUESTIONS]
    )
    def test_answer_document_ranks_first(self, question):
        corpus = generate_qa_corpus(question, num_docs=40)
        matcher = build_query_matcher(question.query)
        ranked = rank_documents(corpus, matcher.query, trec_max(), matcher=matcher)
        assert ranked, question.question_id
        top = ranked[0]
        assert corpus[top.doc_id].metadata["is_answer"], question.question_id

    @pytest.mark.parametrize(
        "question", FACTOID_QUESTIONS, ids=[q.question_id for q in FACTOID_QUESTIONS]
    )
    def test_extracted_fields_match_expectations(self, question):
        corpus = generate_qa_corpus(question, num_docs=40)
        matcher = build_query_matcher(question.query)
        ranked = rank_documents(corpus, matcher.query, trec_max(), matcher=matcher)
        fields = {t: m.token for t, m in ranked[0].matchset.items()}
        assert fields == question.expected, question.question_id
