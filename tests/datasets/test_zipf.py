"""Samplers for the synthetic generator."""

import random

import pytest

from repro.datasets.zipf import (
    TruncatedExponentialSampler,
    ZipfSampler,
    expected_duplicate_fraction,
)


class TestZipfSampler:
    def test_probabilities_follow_power_law(self):
        z = ZipfSampler(4, s=1.0)
        p = z.probabilities
        assert p[0] / p[1] == pytest.approx(2.0)
        assert p[0] / p[3] == pytest.approx(4.0)

    def test_higher_skew_concentrates_mass(self):
        flat = ZipfSampler(5, s=0.5).probabilities[0]
        steep = ZipfSampler(5, s=3.0).probabilities[0]
        assert steep > flat

    def test_samples_within_range(self):
        rng = random.Random(1)
        z = ZipfSampler(4, s=1.1)
        samples = [z.sample(rng) for _ in range(500)]
        assert set(samples) <= {0, 1, 2, 3}
        assert samples.count(0) > samples.count(3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)


class TestTruncatedExponentialSampler:
    def test_larger_lambda_prefers_tau_one(self):
        low = TruncatedExponentialSampler(4, 1.0).probabilities[0]
        high = TruncatedExponentialSampler(4, 3.0).probabilities[0]
        assert high > low

    def test_sample_tau_in_range(self):
        rng = random.Random(2)
        s = TruncatedExponentialSampler(4, 2.0)
        taus = [s.sample_tau(rng) for _ in range(300)]
        assert set(taus) <= {1, 2, 3, 4}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TruncatedExponentialSampler(4, 0.0)
        with pytest.raises(ValueError):
            TruncatedExponentialSampler(0, 1.0)


class TestExpectedDuplicateFraction:
    def test_matches_paper_percentages(self):
        """Section VIII: λ=1 → ~60%, λ=2 → a little less than 24%... our
        derivation gives ~57%, ~25%, ~10% for |Q| = 4."""
        assert expected_duplicate_fraction(4, 1.0) == pytest.approx(0.573, abs=0.02)
        assert expected_duplicate_fraction(4, 2.0) == pytest.approx(0.25, abs=0.02)
        assert expected_duplicate_fraction(4, 3.0) == pytest.approx(0.10, abs=0.02)

    def test_monotone_decreasing_in_lambda(self):
        values = [expected_duplicate_fraction(4, lam) for lam in (1.0, 1.5, 2.0, 2.5, 3.0)]
        assert values == sorted(values, reverse=True)
