"""The Section VIII synthetic generator."""

import random

import pytest

from repro.datasets.synthetic import (
    SyntheticConfig,
    duplicate_fraction,
    generate_dataset,
    generate_instance,
)
from repro.datasets.zipf import expected_duplicate_fraction


class TestGenerateInstance:
    def test_total_matches_exact(self):
        rng = random.Random(1)
        for _ in range(20):
            inst = generate_instance(SyntheticConfig(total_matches=30), rng)
            assert inst.total_matches == 30

    def test_lists_aligned_with_query(self):
        inst = generate_instance(SyntheticConfig(num_terms=5), random.Random(2))
        assert len(inst.query) == 5
        assert len(inst.lists) == 5
        for j, lst in enumerate(inst.lists):
            assert lst.term == inst.query[j]

    def test_locations_within_document(self):
        cfg = SyntheticConfig(doc_words=100)
        inst = generate_instance(cfg, random.Random(3))
        for lst in inst.lists:
            assert all(0 <= loc < 100 for loc in lst.locations)

    def test_scores_in_unit_interval(self):
        inst = generate_instance(SyntheticConfig(), random.Random(4))
        for lst in inst.lists:
            assert all(0 < m.score <= 1 for m in lst)

    def test_no_term_repeats_a_location(self):
        """τ matches at a location go to τ *distinct* terms."""
        inst = generate_instance(SyntheticConfig(lam=1.0), random.Random(5))
        for lst in inst.lists:
            assert len(set(lst.locations)) == len(lst)


class TestGenerateDataset:
    def test_reproducible_from_seed(self):
        a = generate_dataset(SyntheticConfig(num_docs=5, seed=42))
        b = generate_dataset(SyntheticConfig(num_docs=5, seed=42))
        assert [inst.lists for inst in a] == [inst.lists for inst in b]

    def test_different_seeds_differ(self):
        a = generate_dataset(SyntheticConfig(num_docs=5, seed=1))
        b = generate_dataset(SyntheticConfig(num_docs=5, seed=2))
        assert [inst.lists for inst in a] != [inst.lists for inst in b]

    @pytest.mark.parametrize("lam", [1.0, 2.0, 3.0])
    def test_duplicate_fraction_tracks_lambda(self, lam):
        data = generate_dataset(SyntheticConfig(lam=lam, num_docs=80))
        measured = duplicate_fraction(data)
        expected = expected_duplicate_fraction(4, lam)
        assert measured == pytest.approx(expected, abs=0.06)

    def test_zipf_skew_shapes_list_sizes(self):
        mild = generate_dataset(SyntheticConfig(zipf_s=1.1, num_docs=50, seed=7))
        steep = generate_dataset(SyntheticConfig(zipf_s=4.0, num_docs=50, seed=7))

        def biggest_share(data):
            sizes = [0] * 4
            for inst in data:
                for j, lst in enumerate(inst.lists):
                    sizes[j] += len(lst)
            return max(sizes) / sum(sizes)

        assert biggest_share(steep) > biggest_share(mild)

    def test_with_helper_overrides(self):
        cfg = SyntheticConfig().with_(num_terms=6, lam=1.5)
        assert cfg.num_terms == 6
        assert cfg.lam == 1.5
        assert cfg.total_matches == SyntheticConfig().total_matches
