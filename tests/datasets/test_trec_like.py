"""The TREC-like corpus generator (Figure 12 statistics)."""

import pytest

from repro.datasets.trec_like import TREC_QUERY_SPECS, generate_trec_like


class TestSpecs:
    def test_seven_queries_like_the_paper(self):
        assert len(TREC_QUERY_SPECS) == 7
        assert [s.query_id for s in TREC_QUERY_SPECS] == [
            "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7",
        ]

    def test_sizes_align_with_terms(self):
        for spec in TREC_QUERY_SPECS:
            assert len(spec.avg_list_sizes) == len(spec.terms)
            assert set(spec.paper_answer_ranks) == {"MED", "MAX", "WIN"}


class TestGeneration:
    @pytest.fixture(scope="class")
    def q2(self):
        return generate_trec_like(TREC_QUERY_SPECS[1], num_docs=400, seed=11)

    def test_document_count(self, q2):
        assert len(q2.documents) == 400

    def test_exactly_one_answer_document(self, q2):
        answers = [d for d in q2.documents if d.is_answer]
        assert len(answers) == 1

    def test_decoys_planted(self, q2):
        decoys = [d for d in q2.documents if d.is_decoy]
        assert len(decoys) == q2.spec.decoys

    def test_answer_document_has_full_matchset(self, q2):
        answer = next(d for d in q2.documents if d.is_answer)
        assert all(len(lst) >= 1 for lst in answer.lists)

    def test_measured_sizes_near_spec(self, q2):
        measured = q2.measured_avg_list_sizes()
        for got, want in zip(measured, q2.spec.avg_list_sizes):
            assert got == pytest.approx(want, abs=max(0.8, want * 0.25))

    def test_reproducible(self):
        a = generate_trec_like(TREC_QUERY_SPECS[0], num_docs=50, seed=3)
        b = generate_trec_like(TREC_QUERY_SPECS[0], num_docs=50, seed=3)
        assert [d.lists for d in a.documents] == [d.lists for d in b.documents]

    def test_lists_sorted_and_term_labelled(self, q2):
        for doc in q2.documents[:20]:
            for j, lst in enumerate(doc.lists):
                assert lst.term == q2.spec.terms[j]
                assert list(lst.locations) == sorted(lst.locations)
