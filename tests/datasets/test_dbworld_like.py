"""The DBWorld-like CFP corpus generator."""

import pytest

from repro.core.query import Query
from repro.datasets.dbworld_like import generate_dbworld_like
from repro.matching.pipeline import QueryMatcher


@pytest.fixture(scope="module")
def corpus():
    return generate_dbworld_like(seed=2008)


class TestCorpusShape:
    def test_25_messages_7_extensions(self, corpus):
        docs = list(corpus)
        assert len(docs) == 25
        extensions = [d for d in docs if d.metadata["truth"].is_extension]
        assert len(extensions) == 7

    def test_reproducible(self):
        a = [d.text for d in generate_dbworld_like(seed=1)]
        b = [d.text for d in generate_dbworld_like(seed=1)]
        assert a == b

    def test_ground_truth_points_at_real_tokens(self, corpus):
        for doc in corpus:
            truth = doc.metadata["truth"]
            tokens = doc.tokens
            date_tokens = {tokens[p].text for p in truth.event_date_positions}
            assert truth.event_month in date_tokens
            assert str(truth.event_year) in date_tokens
            place_tokens = {tokens[p].text for p in truth.event_place_positions}
            assert any(truth.event_city.split()[0] in t for t in place_tokens)


class TestMatchListProfile:
    """The corpus reproduces the paper's list-size profile (13.2/12.7/73.5)."""

    def test_average_sizes_in_paper_ballpark(self, corpus):
        query = Query.of("conference|workshop", "date", "place")
        matcher = QueryMatcher(query)
        sums = [0, 0, 0]
        for doc in corpus:
            for j, lst in enumerate(matcher.match_lists(doc)):
                sums[j] += len(lst)
        n = len(corpus)
        meeting, date, place = (s / n for s in sums)
        assert 8 <= meeting <= 20  # paper: 13.2
        assert 8 <= date <= 20  # paper: 12.7
        assert 55 <= place <= 95  # paper: 73.5

    def test_extension_messages_lead_with_wrong_date(self, corpus):
        """Footnote 12: in extension messages the first date is a deadline,
        not the event date."""
        from repro.matching.dates import DateMatcher

        matcher = DateMatcher()
        for doc in corpus:
            truth = doc.metadata["truth"]
            matches = matcher.matches(doc)
            if truth.is_extension:
                assert matches[0].location not in truth.event_date_positions
