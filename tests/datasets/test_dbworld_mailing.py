"""The full DBWorld-like mailing and the CFP selection step."""

import pytest

from repro.datasets.dbworld_like import (
    DBWORLD_MAILING_SIZE,
    DBWORLD_NUM_MESSAGES,
    generate_dbworld_mailing,
    select_cfp_messages,
)


@pytest.fixture(scope="module")
def mailing():
    return generate_dbworld_mailing(seed=2008)


class TestMailing:
    def test_paper_counts(self, mailing):
        assert len(mailing) == DBWORLD_MAILING_SIZE
        kinds = [d.metadata["kind"] for d in mailing]
        assert kinds.count("cfp") + kinds.count("extension") == DBWORLD_NUM_MESSAGES

    def test_non_cfp_kinds_present(self, mailing):
        kinds = {d.metadata["kind"] for d in mailing}
        assert {"job", "toc", "software"} <= kinds

    def test_cfp_documents_carry_ground_truth(self, mailing):
        for doc in mailing:
            if doc.metadata["kind"] in ("cfp", "extension"):
                assert "truth" in doc.metadata
            else:
                assert "truth" not in doc.metadata

    def test_reproducible(self):
        a = [d.doc_id for d in generate_dbworld_mailing(seed=5)]
        b = [d.doc_id for d in generate_dbworld_mailing(seed=5)]
        assert a == b

    def test_too_many_cfps_rejected(self):
        with pytest.raises(ValueError):
            generate_dbworld_mailing(total_messages=10, num_cfps=11)


class TestSelection:
    def test_selects_exactly_the_meeting_announcements(self, mailing):
        selected = select_cfp_messages(mailing)
        assert len(selected) == DBWORLD_NUM_MESSAGES
        for doc in selected:
            assert doc.metadata["kind"] in ("cfp", "extension")

    def test_selected_corpus_supports_extraction(self, mailing):
        """The filtered mailing feeds straight into the DBWorld pipeline."""
        from repro.core.query import Query
        from repro.extraction.extractor import MatchsetExtractor
        from repro.core.scoring.presets import trec_win

        selected = select_cfp_messages(mailing)
        query = Query.of("conference|workshop", "date", "place")
        extractor = MatchsetExtractor(query, trec_win())
        doc = next(iter(selected))
        best = extractor.extract_best(doc)
        assert best is not None
