"""Mutation endpoints: POST /documents and DELETE /documents/{id}.

Both routes go through the executor (``ingest`` / ``apply``), so every
mutation invalidates exactly the cache generations it must, newly added
documents are immediately searchable, and — against a durable system —
an acknowledged 2xx response survives a server restart.
"""

import json
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.service import SearchServer
from repro.system import SearchSystem

NEWS = [
    ("news-1", "Lenovo announced a marketing partnership with the NBA."),
    ("news-2", "Dell explored an alliance with the Olympic Games organizers."),
]


@pytest.fixture
def server():
    system = SearchSystem()
    system.add_texts(NEWS)
    with SearchServer.for_system(system, workers=2) as srv:
        yield srv


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def request(server, method, path, payload=None):
    body = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        server.url + path,
        data=body,
        method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestAddDocument:
    def test_add_then_search(self, server):
        status, payload = request(
            server,
            "POST",
            "/documents",
            {"id": "news-9", "text": "a fresh partnership with the NBA"},
        )
        assert status == 201
        assert payload["id"] == "news-9"
        assert payload["generation"] >= 2
        status, payload = get(server, "/search?q=partnership,+nba")
        assert status == 200
        assert "news-9" in [r["doc_id"] for r in payload["results"]]

    def test_add_invalidates_cached_results(self, server):
        get(server, "/search?q=partnership,+nba")
        status, payload = get(server, "/search?q=partnership,+nba")
        assert payload["cached"] is True
        request(
            server,
            "POST",
            "/documents",
            {"id": "news-9", "text": "partnership with the NBA again"},
        )
        status, payload = get(server, "/search?q=partnership,+nba")
        assert status == 200
        assert payload["cached"] is False  # the old generation is gone

    def test_duplicate_is_409(self, server):
        status, payload = request(
            server, "POST", "/documents", {"id": "news-1", "text": "again"}
        )
        assert status == 409
        assert payload["error"]["code"] == "duplicate_document"

    @pytest.mark.parametrize(
        "body",
        (
            {},
            {"id": "", "text": "x"},
            {"id": "d", "text": None},
            {"text": "no id"},
            {"id": 7, "text": "x"},
        ),
    )
    def test_bad_document_is_400(self, server, body):
        status, payload = request(server, "POST", "/documents", body)
        assert status == 400
        assert payload["error"]["code"] == "missing_parameter"


class TestDeleteDocument:
    def test_delete_then_search_misses(self, server):
        status, payload = request(server, "DELETE", "/documents/news-1")
        assert status == 200
        assert payload["id"] == "news-1"
        status, payload = get(server, "/search?q=partnership,+nba")
        assert status == 200
        assert "news-1" not in [r["doc_id"] for r in payload["results"]]
        status, payload = get(server, "/healthz")
        assert payload["documents"] == 1

    def test_unknown_document_is_404(self, server):
        status, payload = request(server, "DELETE", "/documents/ghost")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_empty_id_is_400(self, server):
        status, payload = request(server, "DELETE", "/documents/")
        assert status == 400
        assert payload["error"]["code"] == "invalid_parameter"

    def test_quoted_id_round_trips(self, server):
        request(
            server,
            "POST",
            "/documents",
            {"id": "spaced id", "text": "partnership text"},
        )
        encoded = urllib.parse.quote("spaced id")
        status, payload = request(server, "DELETE", f"/documents/{encoded}")
        assert status == 200
        assert payload["id"] == "spaced id"


class TestDurableServer:
    def test_mutations_survive_restart(self, tmp_path):
        data_dir = tmp_path / "data"
        system = SearchSystem.open(data_dir)
        system.add_texts(NEWS)
        try:
            with SearchServer.for_system(system, workers=2) as srv:
                status, _ = request(
                    srv,
                    "POST",
                    "/documents",
                    {"id": "news-9", "text": "a durable partnership story"},
                )
                assert status == 201
                status, _ = request(srv, "DELETE", "/documents/news-2")
                assert status == 200
        finally:
            system.close()
        reopened = SearchSystem.open(data_dir)
        try:
            doc_ids = {doc_id for doc_id, _ in reopened.index.stored_documents()}
            assert doc_ids == {"news-1", "news-9"}
            results = reopened.ask("partnership, story", top_k=3)
            assert "news-9" in [d.doc_id for d in results]
        finally:
            reopened.close()

    def test_concurrent_write_path_is_exercised(self, tmp_path):
        # Durable systems advertise concurrent writes; the executor's
        # ingest path must report the index's own generation.
        system = SearchSystem.open(tmp_path / "data")
        system.add_texts(NEWS)
        try:
            with SearchServer.for_system(system, workers=2) as srv:
                before = system.index_generation
                status, payload = request(
                    srv,
                    "POST",
                    "/documents",
                    {"id": "news-9", "text": "concurrent append"},
                )
                assert status == 201
                assert payload["generation"] == before + 1
                assert system.index_generation == before + 1
        finally:
            system.close()
