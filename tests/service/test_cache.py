"""The LRU result cache and its generation-based invalidation."""

import pytest

from repro.service.cache import ResultCache, make_key, normalize_query


class TestNormalizeQuery:
    def test_case_and_whitespace_insensitive(self):
        assert normalize_query("Sports,  Partnership") == normalize_query(
            "sports, partnership"
        )

    def test_comma_spacing_collapsed(self):
        assert normalize_query("a ,b") == normalize_query("a,   b") == "a,b"

    def test_distinct_queries_stay_distinct(self):
        assert normalize_query("a, b") != normalize_query("b, a")

    def test_inner_spaces_collapse_but_survive(self):
        assert normalize_query('"pc  maker", sports') == '"pc maker",sports'


class TestMakeKey:
    def test_key_embeds_generation(self):
        young = make_key("a, b", "max", 1, 5)
        old = make_key("a, b", "max", 2, 5)
        assert young != old

    def test_key_embeds_top_k_and_scoring(self):
        assert make_key("q", "max", 1, 5) != make_key("q", "max", 1, 10)
        assert make_key("q", "max", 1, 5) != make_key("q", "win", 1, 5)


class TestResultCache:
    def test_get_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("k") is None
        cache.put("k", ("v",))
        assert cache.get("k") == ("v",)
        assert cache.stats() == {
            "size": 1,
            "capacity": 4,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_capacity_evicts_lru(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: b is now the LRU entry
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: nothing evicted
        assert len(cache) == 2
        assert cache.get("a") == 10

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_clear(self):
        cache = ResultCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_drop_older_generations(self):
        cache = ResultCache(8)
        cache.put(make_key("q1", "max", 1, 5), "old")
        cache.put(make_key("q2", "max", 1, 5), "old")
        cache.put(make_key("q1", "max", 2, 5), "new")
        cache.put("not-a-cache-key", "kept")
        dropped = cache.drop_older_generations(2)
        assert dropped == 2
        assert cache.get(make_key("q1", "max", 2, 5)) == "new"
        assert cache.get("not-a-cache-key") == "kept"
        assert cache.get(make_key("q1", "max", 1, 5)) is None
