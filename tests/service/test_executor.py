"""QueryExecutor: correctness under concurrency, deadlines, lifecycle.

The stress tests are the satellite-task centerpiece: N client threads
hammering one executor must observe no lost or duplicated responses,
results byte-identical to the serial ``SearchSystem.ask`` path, and
correct cache invalidation across an ``add()``.
"""

import threading
import time
from concurrent.futures import wait

import pytest

from repro.service import (
    DeadlineExceeded,
    QueryExecutor,
    QueryRejected,
    ServiceMetrics,
)
from repro.system import SearchSystem
from repro.text.document import Document

NEWS = [
    ("news-1", "Lenovo announced a marketing partnership with the NBA."),
    ("news-2", "Dell explored an alliance with the Olympic Games organizers."),
    ("news-3", "A bakery opened downtown; nothing about computers here."),
    ("news-4", "Acer sponsors a cycling team in a sports partnership."),
    ("cfp-1", "CALL FOR PAPERS: the workshop will be held in Pisa, Italy on June 24, 2008."),
]

QUERIES = [
    "partnership, sports",
    '"pc maker", sports, partnership',
    "alliance|partnership, games",
    "conference|workshop, when:date, where:place",  # online path
    "sports, partnership",
]


def build_system() -> SearchSystem:
    system = SearchSystem()
    system.add_texts(NEWS)
    return system


def ranking_key(results):
    return [(r.doc_id, r.score) for r in results]


@pytest.fixture
def system():
    return build_system()


class TestBasicServing:
    def test_matches_serial_ask(self, system):
        serial = {q: ranking_key(system.ask(q)) for q in QUERIES}
        with QueryExecutor(system, workers=2) as executor:
            for q in QUERIES:
                assert ranking_key(executor.ask(q).results) == serial[q]

    def test_repeat_query_served_from_cache_without_rejoin(self, system):
        with QueryExecutor(system, workers=2) as executor:
            first = executor.ask("partnership, sports")
            joins_before = executor.metrics.count("joins_executed")
            second = executor.ask("partnership, sports")
            assert not first.cached and second.cached
            assert executor.metrics.count("joins_executed") == joins_before
            assert executor.metrics.count("cache_hits") == 1
            assert ranking_key(second.results) == ranking_key(first.results)

    def test_join_instrumentation_reaches_metrics(self, system):
        with QueryExecutor(system, workers=1) as executor:
            executor.ask("partnership, sports")
            run = executor.metrics.count("joins_run")
            skipped = executor.metrics.count("joins_skipped")
            assert run > 0
            assert skipped >= 0
            assert executor.metrics.count("join_micros") >= 0
            snap = executor.metrics.snapshot()
            assert snap["bound_skip_rate"] == pytest.approx(
                skipped / (run + skipped)
            )

    def test_normalized_spellings_share_cache_entry(self, system):
        with QueryExecutor(system, workers=1) as executor:
            executor.ask("partnership, sports")
            assert executor.ask("Partnership,   SPORTS").cached

    def test_cache_disabled(self, system):
        with QueryExecutor(system, workers=1, cache_size=0) as executor:
            executor.ask("partnership, sports")
            assert not executor.ask("partnership, sports").cached
            assert executor.cache is None

    def test_scoring_presets_cached_separately(self, system):
        with QueryExecutor(system, workers=1) as executor:
            a = executor.ask("partnership, sports", scoring="max")
            b = executor.ask("partnership, sports", scoring="win")
            assert not b.cached  # different preset, different key
            assert executor.ask("partnership, sports", scoring="win").cached
            assert ranking_key(a.results) != ranking_key(b.results) or (
                [r.doc_id for r in a.results] == [r.doc_id for r in b.results]
            )

    def test_batch_window_still_serves_correctly(self, system):
        serial = {q: ranking_key(system.ask(q)) for q in QUERIES}
        with QueryExecutor(
            system, workers=2, batch_wait_s=0.005, max_batch=4
        ) as executor:
            futures = [executor.submit(q) for q in QUERIES]
            for query, future in zip(QUERIES, futures):
                assert ranking_key(future.result(timeout=30).results) == serial[query]

    def test_negative_batch_window_rejected(self, system):
        with pytest.raises(ValueError):
            QueryExecutor(system, batch_wait_s=-1.0)

    def test_unknown_preset_rejected_at_submit(self, system):
        with QueryExecutor(system, workers=1) as executor:
            with pytest.raises(ValueError, match="unknown scoring preset"):
                executor.submit("a, b", scoring="bm25")

    def test_query_error_propagates_to_future(self, system):
        with QueryExecutor(system, workers=1) as executor:
            with pytest.raises(Exception):
                executor.ask('"unterminated, quote')
            # the worker survives a poisoned request
            assert executor.ask("partnership, sports").results


class TestDeadlines:
    def test_expired_deadline_fails_without_join(self, system):
        with QueryExecutor(system, workers=1) as executor:
            future = executor.submit("partnership, sports", timeout=0.0)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=5)
            assert executor.metrics.count("deadline_misses") == 1
            assert executor.metrics.count("joins_executed") == 0

    def test_near_deadline_degrades_to_approximate_join(self, system):
        """Park the worker behind the write lock until most of the budget
        is gone; the request must fall back to the approximate join."""
        with QueryExecutor(
            system, workers=1, degradation_margin=0.8
        ) as executor:
            with executor._rwlock.write():
                future = executor.submit("partnership, sports", timeout=1.0)
                time.sleep(0.4)  # remaining ≈0.6 < 0.8 × 1.0 → degrade
            response = future.result(timeout=10)
            assert response.degraded
            assert executor.metrics.count("degraded_responses") == 1
            # degraded results are never cached
            assert not executor.ask("partnership, sports").cached

    def test_untimed_requests_never_degrade(self, system):
        with QueryExecutor(
            system, workers=1, degradation_margin=0.99
        ) as executor:
            assert not executor.ask("partnership, sports").degraded

    def test_default_timeout_applies(self, system):
        with QueryExecutor(system, workers=1, default_timeout=0.0) as executor:
            with pytest.raises(DeadlineExceeded):
                executor.ask("partnership, sports")


class TestAdmissionControl:
    def test_backlog_overflow_rejected(self, system):
        executor = QueryExecutor(system, workers=1, queue_size=2, max_batch=1)
        try:
            with executor._rwlock.write():  # park the worker
                first = executor.submit("partnership, sports")
                deadline = time.monotonic() + 5
                while executor._queue.qsize() and time.monotonic() < deadline:
                    time.sleep(0.001)  # wait for the worker to take it
                backlog = [executor.submit("a%d, b" % i) for i in range(2)]
                with pytest.raises(QueryRejected):
                    executor.submit("overflow, query")
                assert executor.metrics.count("rejected_total") == 1
            wait([first, *backlog], timeout=5)
        finally:
            executor.shutdown()

    def test_submit_after_shutdown_rejected(self, system):
        executor = QueryExecutor(system, workers=1)
        executor.shutdown()
        with pytest.raises(QueryRejected):
            executor.submit("partnership, sports")


class TestLifecycle:
    def test_shutdown_is_idempotent(self, system):
        executor = QueryExecutor(system, workers=2)
        executor.shutdown()
        executor.shutdown()
        executor.shutdown(wait=False)

    def test_shutdown_from_many_threads(self, system):
        executor = QueryExecutor(system, workers=2)
        threads = [threading.Thread(target=executor.shutdown) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(not w.is_alive() for w in executor._threads)

    def test_context_manager_drains_pending_work(self, system):
        with QueryExecutor(system, workers=2) as executor:
            futures = [executor.submit(q) for q in QUERIES * 4]
        # __exit__ returned: every queued request completed
        assert all(f.done() for f in futures)
        assert all(f.exception() is None for f in futures)

    def test_no_threads_leak(self, system):
        executor = QueryExecutor(system, workers=3)
        executor.ask("partnership, sports")
        executor.shutdown()
        assert all(not w.is_alive() for w in executor._threads)


class TestMutation:
    def test_apply_bumps_generation_and_invalidates(self, system):
        with QueryExecutor(system, workers=2) as executor:
            before = executor.ask("partnership, sports", top_k=10)
            assert executor.ask("partnership, sports", top_k=10).cached
            executor.apply(
                lambda s: s.add(
                    Document("new-1", "A new sports partnership was signed today.")
                )
            )
            after = executor.ask("partnership, sports", top_k=10)
            assert not after.cached
            assert after.generation == before.generation + 1
            assert "new-1" in {r.doc_id for r in after.results}

    def test_apply_returns_mutator_result(self, system):
        with QueryExecutor(system, workers=1) as executor:
            assert executor.apply(lambda s: len(s)) == len(NEWS)


class TestConcurrencyStress:
    CLIENTS = 8
    REQUESTS_PER_CLIENT = 25

    def test_no_lost_or_duplicated_responses_and_serial_identical(self, system):
        """N threads × M requests: every response arrives exactly once and
        equals the serial ranking for its query."""
        reference = build_system()  # untouched serial twin
        serial = {q: ranking_key(reference.ask(q, top_k=10)) for q in QUERIES}
        responses: dict[tuple[int, int], object] = {}
        lock = threading.Lock()

        with QueryExecutor(system, workers=4, queue_size=1024) as executor:

            def client(client_id: int) -> None:
                for i in range(self.REQUESTS_PER_CLIENT):
                    query = QUERIES[(client_id + i) % len(QUERIES)]
                    response = executor.ask(query, top_k=10)
                    with lock:
                        key = (client_id, i)
                        assert key not in responses, "duplicated response"
                        responses[key] = (query, response)

            threads = [
                threading.Thread(target=client, args=(c,))
                for c in range(self.CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert len(responses) == self.CLIENTS * self.REQUESTS_PER_CLIENT
        for query, response in responses.values():
            assert ranking_key(response.results) == serial[query]
        snap = executor.metrics.snapshot()
        assert snap["requests_total"] == self.CLIENTS * self.REQUESTS_PER_CLIENT
        assert snap["completed_total"] == self.CLIENTS * self.REQUESTS_PER_CLIENT
        assert snap["cache_hits"] > 0  # repeats must hit

    def test_concurrent_queries_with_mutations_stay_consistent(self, system):
        """Queries racing an ``apply(add)`` see either the old or the new
        generation — never a torn state — and post-mutation queries match
        a serial system with the same documents."""
        queries = ["partnership, sports", "alliance|partnership, games"]
        new_docs = [
            Document("extra-%d" % i, "Another sports partnership, number %d." % i)
            for i in range(3)
        ]
        errors: list[BaseException] = []

        with QueryExecutor(system, workers=4, queue_size=1024) as executor:

            def reader() -> None:
                try:
                    for i in range(30):
                        response = executor.ask(queries[i % 2], top_k=20)
                        doc_ids = {r.doc_id for r in response.results}
                        # A result referencing a new doc must carry a
                        # post-mutation generation.
                        if doc_ids & {d.doc_id for d in new_docs}:
                            assert response.generation > 1
                except BaseException as exc:  # surfaced below
                    errors.append(exc)

            def writer() -> None:
                try:
                    for doc in new_docs:
                        executor.apply(lambda s, d=doc: s.add(d))
                        time.sleep(0.002)
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=reader) for _ in range(4)]
            threads.append(threading.Thread(target=writer))
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert not errors
        reference = build_system()
        reference.add(*new_docs)
        final = system.ask("partnership, sports", top_k=20)
        assert ranking_key(final) == ranking_key(
            reference.ask("partnership, sports", top_k=20)
        )

    def test_batched_execution_matches_serial(self, system):
        """Force heavy batching (1 worker, deep backlog) and check every
        response against the serial twin."""
        reference = build_system()
        serial = {q: ranking_key(reference.ask(q, top_k=10)) for q in QUERIES}
        with QueryExecutor(
            system, workers=1, queue_size=1024, max_batch=16
        ) as executor:
            futures = [
                (q, executor.submit(q, top_k=10)) for q in QUERIES * 10
            ]
            for query, future in futures:
                assert ranking_key(future.result(timeout=30).results) == serial[query]
        assert executor.metrics.count("batches") > 0
