"""Micro-batch planning: term extraction, grouping, splitting."""

from dataclasses import dataclass

import pytest

from repro.service.batching import MicroBatcher, query_terms


@dataclass
class FakeRequest:
    query_text: str
    key: object = "k"

    @property
    def batch_key(self):
        return self.key


class TestQueryTerms:
    def test_simple_split(self):
        assert query_terms("a, b, c") == ("a", "b", "c")

    def test_quotes_protect_commas(self):
        # Splitting honours the quotes; spacing inside them is normalized
        # like any other whitespace.
        assert query_terms('"pc maker, inc", sports') == ("pc maker,inc", "sports")

    def test_normalization_applies(self):
        assert query_terms("Sports ,  PARTNERSHIP") == ("sports", "partnership")

    def test_empty_terms_dropped(self):
        assert query_terms("a,, b,") == ("a", "b")


class TestPlan:
    def test_shared_terms_grouped(self):
        batcher = MicroBatcher(max_batch=8)
        a = FakeRequest("sports, partnership")
        b = FakeRequest("partnership, lenovo")
        c = FakeRequest("unrelated, thing")
        plan = batcher.plan([a, b, c])
        assert [sorted(r.query_text for r in batch) for batch in plan] == [
            sorted([a.query_text, b.query_text]),
            [c.query_text],
        ]

    def test_transitive_sharing_joins_components(self):
        batcher = MicroBatcher(max_batch=8)
        a = FakeRequest("x, y")
        b = FakeRequest("y, z")
        c = FakeRequest("z, w")
        assert batcher.plan([a, b, c]) == [[a, b, c]]

    def test_incompatible_keys_never_share_a_batch(self):
        batcher = MicroBatcher(max_batch=8)
        a = FakeRequest("sports, partnership", key=("max", 5))
        b = FakeRequest("sports, partnership", key=("win", 5))
        plan = batcher.plan([a, b])
        assert len(plan) == 2

    def test_max_batch_splits_components(self):
        batcher = MicroBatcher(max_batch=2)
        requests = [FakeRequest("common, t%d" % i) for i in range(5)]
        plan = batcher.plan(requests)
        assert [len(batch) for batch in plan] == [2, 2, 1]
        flat = [r for batch in plan for r in batch]
        assert flat == requests  # order-stable, nothing lost or duplicated

    def test_invalid_max_batch_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
