"""Counters, latency reservoir, and snapshots."""

import threading

import pytest

from repro.service.metrics import LatencyReservoir, ServiceMetrics


class TestLatencyReservoir:
    def test_empty_quantile_is_none(self):
        assert LatencyReservoir().quantile(0.5) is None

    def test_quantiles_of_known_samples(self):
        reservoir = LatencyReservoir()
        for v in range(1, 101):  # 1..100
            reservoir.record(float(v))
        assert reservoir.quantile(0.0) == 1.0
        assert reservoir.quantile(1.0) == 100.0
        assert reservoir.quantile(0.5) == pytest.approx(50.0, abs=1.0)
        assert reservoir.quantile(0.95) == pytest.approx(95.0, abs=1.0)

    def test_window_is_bounded(self):
        reservoir = LatencyReservoir(size=10)
        for v in range(100):
            reservoir.record(float(v))
        assert len(reservoir) == 10
        assert reservoir.quantile(0.0) == 90.0  # only the newest survive

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            LatencyReservoir(0)
        with pytest.raises(ValueError):
            LatencyReservoir().quantile(1.5)


class TestServiceMetrics:
    def test_counters_roundtrip(self):
        metrics = ServiceMetrics()
        metrics.increment("requests_total")
        metrics.increment("cache_hits", 3)
        assert metrics.count("requests_total") == 1
        assert metrics.count("cache_hits") == 3

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            ServiceMetrics().increment("nope")

    def test_snapshot_derives_rates(self):
        metrics = ServiceMetrics()
        metrics.increment("cache_hits", 3)
        metrics.increment("cache_misses", 1)
        metrics.observe_latency(0.010)
        metrics.observe_latency(0.030)
        snap = metrics.snapshot()
        assert snap["cache_hit_rate"] == pytest.approx(0.75)
        assert snap["completed_total"] == 2
        assert snap["qps"] > 0
        assert 0.010 <= snap["latency_p50"] <= 0.030
        assert snap["latency_p95"] == pytest.approx(0.030)

    def test_snapshot_with_no_traffic(self):
        snap = ServiceMetrics().snapshot()
        assert snap["cache_hit_rate"] == 0.0
        assert snap["latency_p50"] is None
        assert snap["bound_skip_rate"] == 0.0

    def test_join_counters_and_skip_rate(self):
        metrics = ServiceMetrics()
        metrics.increment("joins_run", 3)
        metrics.increment("joins_skipped", 9)
        metrics.increment("join_micros", 1500)
        snap = metrics.snapshot()
        assert snap["joins_run"] == 3
        assert snap["joins_skipped"] == 9
        assert snap["join_micros"] == 1500
        assert snap["bound_skip_rate"] == pytest.approx(0.75)

    def test_thread_safety_of_increments(self):
        metrics = ServiceMetrics()

        def spin():
            for _ in range(1000):
                metrics.increment("requests_total")

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.count("requests_total") == 8000


class TestIndexGauges:
    """The durable-index backlog and recovery gauges (observability)."""

    def test_index_gauges_set_and_exposed(self):
        metrics = ServiceMetrics()
        metrics.set_index_gauges(
            wal_depth=7, merge_debt_segments=2, memtable_docs=41
        )
        text = metrics.render_prometheus()
        assert "repro_wal_depth 7" in text
        assert "repro_merge_debt_segments 2" in text
        assert "repro_memtable_docs 41" in text

    def test_recovery_gauges_set_and_exposed(self):
        metrics = ServiceMetrics()
        metrics.set_recovery_gauges(
            wal_truncated_bytes=128, quarantined_segments=1, documents_lost=5
        )
        text = metrics.render_prometheus()
        assert "repro_wal_truncated_bytes 128" in text
        assert "repro_segments_quarantined 1" in text
        assert "repro_documents_lost 5" in text

    def test_gauges_default_to_zero(self):
        text = ServiceMetrics().render_prometheus()
        assert "repro_wal_depth 0" in text
        assert "repro_merge_debt_segments 0" in text
        assert "repro_memtable_docs 0" in text
        assert "repro_wal_truncated_bytes 0" in text
        assert "repro_segments_quarantined 0" in text
        assert "repro_documents_lost 0" in text
