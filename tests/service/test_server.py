"""The HTTP front end: endpoints, error mapping, lifecycle."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import SearchServer
from repro.system import SearchSystem

NEWS = [
    ("news-1", "Lenovo announced a marketing partnership with the NBA."),
    ("news-2", "Dell explored an alliance with the Olympic Games organizers."),
    ("news-3", "A bakery opened downtown; nothing about computers here."),
]


@pytest.fixture
def server():
    system = SearchSystem()
    system.add_texts(NEWS)
    with SearchServer.for_system(system, workers=2) as srv:
        yield srv


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = get(server, "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "documents": 3, "generation": 1}

    def test_search_get(self, server):
        status, payload = get(server, "/search?q=partnership,+sports&top_k=2")
        assert status == 200
        assert payload["results"][0]["doc_id"] == "news-1"
        assert len(payload["results"]) <= 2
        assert payload["cached"] is False
        assert payload["degraded"] is False

    def test_search_post(self, server):
        status, payload = post(
            server, "/search", {"q": "partnership, sports", "top_k": 1}
        )
        assert status == 200
        assert payload["results"][0]["doc_id"] == "news-1"

    def test_search_repeat_is_cached(self, server):
        get(server, "/search?q=partnership,+sports")
        status, payload = get(server, "/search?q=partnership,+sports")
        assert status == 200 and payload["cached"] is True

    def test_metrics_snapshot(self, server):
        get(server, "/search?q=partnership,+sports")
        status, payload = get(server, "/metrics")
        assert status == 200
        assert payload["requests_total"] >= 1
        assert "latency_p95" in payload
        assert payload["cache"]["capacity"] > 0
        assert payload["joins_run"] >= 1
        assert 0.0 <= payload["bound_skip_rate"] <= 1.0

    def test_scoring_parameter(self, server):
        status, payload = get(server, "/search?q=partnership,+sports&scoring=win")
        assert status == 200 and payload["results"]

    def test_timeout_parameter(self, server):
        status, payload = get(
            server, "/search?q=partnership,+sports&timeout_ms=30000"
        )
        assert status == 200


class TestErrorMapping:
    def test_unknown_endpoint_404(self, server):
        assert get(server, "/nope")[0] == 404
        assert post(server, "/nope", {})[0] == 404

    def test_missing_query_400(self, server):
        assert get(server, "/search")[0] == 400
        assert post(server, "/search", {})[0] == 400

    def test_bad_parameter_400(self, server):
        assert get(server, "/search?q=a,b&top_k=many")[0] == 400

    def test_bad_query_syntax_400(self, server):
        assert get(server, "/search?q=%22unterminated")[0] == 400

    def test_unknown_scoring_400(self, server):
        assert get(server, "/search?q=a,b&scoring=bm25")[0] == 400

    def test_bad_json_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/search", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestConcurrentClients:
    def test_parallel_requests_all_answered(self, server):
        results: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def client():
            outcome = get(server, "/search?q=partnership,+sports&top_k=3")
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=client) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 16
        assert all(status == 200 for status, _ in results)
        rankings = {
            tuple((r["doc_id"], r["score"]) for r in payload["results"])
            for _, payload in results
        }
        assert len(rankings) == 1  # identical answers for identical queries


class TestLifecycle:
    def test_close_is_idempotent(self):
        system = SearchSystem()
        system.add_texts(NEWS)
        server = SearchServer.for_system(system, workers=1).start()
        server.close()
        server.close()
        assert all(not w.is_alive() for w in server.executor._threads)

    def test_ephemeral_port_resolved(self, server):
        host, port = server.address
        assert port != 0
