"""The HTTP front end: endpoints, error mapping, lifecycle."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import SearchServer
from repro.system import SearchSystem

NEWS = [
    ("news-1", "Lenovo announced a marketing partnership with the NBA."),
    ("news-2", "Dell explored an alliance with the Olympic Games organizers."),
    ("news-3", "A bakery opened downtown; nothing about computers here."),
]


@pytest.fixture
def server():
    system = SearchSystem()
    system.add_texts(NEWS)
    with SearchServer.for_system(system, workers=2) as srv:
        yield srv


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get_raw(server, path):
    """GET returning (status, headers, body-text) without JSON parsing."""
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as response:
            return response.status, dict(response.headers), response.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read().decode()


def parse_prometheus(text):
    """Parse Prometheus text exposition into {series: value} + metadata.

    Validates the 0.0.4 format strictly enough to catch regressions:
    every sample line is ``name{labels} value`` with a float value, and
    every sample's metric family has # HELP and # TYPE lines.
    """
    samples, helps, types = {}, {}, {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in ("counter", "gauge", "histogram"), line
            types[name] = kind
        else:
            assert not line.startswith("#"), f"unknown comment line: {line!r}"
            series, _, value = line.rpartition(" ")
            assert series, f"bad sample line: {line!r}"
            family = series.split("{", 1)[0]
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix) and family.removesuffix(suffix) in types:
                    family = family.removesuffix(suffix)
                    break
            assert family in types, f"sample {series!r} has no # TYPE"
            assert family in helps, f"sample {series!r} has no # HELP"
            samples[series] = float(value)
    return samples, helps, types


def post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = get(server, "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "documents": 3, "generation": 1}

    def test_search_get(self, server):
        status, payload = get(server, "/search?q=partnership,+sports&top_k=2")
        assert status == 200
        assert payload["results"][0]["doc_id"] == "news-1"
        assert len(payload["results"]) <= 2
        assert payload["cached"] is False
        assert payload["degraded"] is False

    def test_search_post(self, server):
        status, payload = post(
            server, "/search", {"q": "partnership, sports", "top_k": 1}
        )
        assert status == 200
        assert payload["results"][0]["doc_id"] == "news-1"

    def test_search_repeat_is_cached(self, server):
        get(server, "/search?q=partnership,+sports")
        status, payload = get(server, "/search?q=partnership,+sports")
        assert status == 200 and payload["cached"] is True

    def test_metrics_snapshot(self, server):
        get(server, "/search?q=partnership,+sports")
        status, payload = get(server, "/metrics?format=json")
        assert status == 200
        assert payload["requests_total"] >= 1
        assert "latency_p95" in payload
        assert payload["cache"]["capacity"] > 0
        assert payload["joins_run"] >= 1
        assert 0.0 <= payload["bound_skip_rate"] <= 1.0

    def test_metrics_prometheus_default(self, server):
        get(server, "/search?q=partnership,+sports")
        status, headers, body = get_raw(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
        samples, helps, types = parse_prometheus(body)
        assert samples["repro_requests_total"] >= 1.0
        assert types["repro_requests_total"] == "counter"
        assert types["repro_queue_depth"] == "gauge"
        assert types["repro_request_latency_seconds"] == "histogram"
        # Histogram contract: cumulative buckets ending at +Inf that
        # agree with _count, plus a _sum.
        inf = samples['repro_request_latency_seconds_bucket{le="+Inf"}']
        assert inf == samples["repro_request_latency_seconds_count"] >= 1.0
        assert "repro_request_latency_seconds_sum" in samples
        buckets = [
            value
            for series, value in samples.items()
            if series.startswith("repro_request_latency_seconds_bucket")
        ]
        assert buckets == sorted(buckets)
        # The served request ran a join: the family-labelled histogram
        # and the result-cache gauges are both exposed.
        assert any(
            s.startswith("repro_join_seconds_count{family=") for s in samples
        )
        assert samples["repro_result_cache_capacity"] > 0

    def test_metrics_unknown_format(self, server):
        status, payload = get(server, "/metrics?format=xml")
        assert status == 400
        assert payload["error"]["code"] == "invalid_parameter"

    def test_telemetry_headers(self, server):
        """/metrics, /healthz, /readyz must never be cached (satellite b)."""
        for path in ("/metrics", "/metrics?format=json", "/healthz", "/readyz"):
            status, headers, _ = get_raw(server, path)
            assert status == 200, path
            assert headers["Cache-Control"] == "no-store", path
            if path == "/metrics":
                assert headers["Content-Type"].startswith("text/plain"), path
            else:
                assert headers["Content-Type"] == "application/json", path

    def test_search_response_carries_trace_id(self, server):
        status, payload = get(server, "/search?q=partnership,+sports&top_k=1")
        assert status == 200
        assert payload["trace_id"].startswith("t")

    def test_scoring_parameter(self, server):
        status, payload = get(server, "/search?q=partnership,+sports&scoring=win")
        assert status == 200 and payload["results"]

    def test_timeout_parameter(self, server):
        status, payload = get(
            server, "/search?q=partnership,+sports&timeout_ms=30000"
        )
        assert status == 200


class TestErrorMapping:
    def test_unknown_endpoint_404(self, server):
        assert get(server, "/nope")[0] == 404
        assert post(server, "/nope", {})[0] == 404

    def test_missing_query_400(self, server):
        assert get(server, "/search")[0] == 400
        assert post(server, "/search", {})[0] == 400

    def test_bad_parameter_400(self, server):
        assert get(server, "/search?q=a,b&top_k=many")[0] == 400

    def test_bad_query_syntax_400(self, server):
        assert get(server, "/search?q=%22unterminated")[0] == 400

    def test_unknown_scoring_400(self, server):
        assert get(server, "/search?q=a,b&scoring=bm25")[0] == 400

    def test_expired_deadline_504(self, server):
        # DeadlineExceeded subclasses TimeoutError, which on 3.11+ is
        # also the futures timeout; the handler must map it to 504, not
        # to the worker-lost 500 branch.
        status, payload = get(server, "/search?q=partnership,+sports&timeout_ms=0")
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"

    def test_bad_json_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/search", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestConcurrentClients:
    def test_parallel_requests_all_answered(self, server):
        results: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def client():
            outcome = get(server, "/search?q=partnership,+sports&top_k=3")
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=client) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 16
        assert all(status == 200 for status, _ in results)
        rankings = {
            tuple((r["doc_id"], r["score"]) for r in payload["results"])
            for _, payload in results
        }
        assert len(rankings) == 1  # identical answers for identical queries


class TestLifecycle:
    def test_close_is_idempotent(self):
        system = SearchSystem()
        system.add_texts(NEWS)
        server = SearchServer.for_system(system, workers=1).start()
        server.close()
        server.close()
        assert all(not w.is_alive() for w in server.executor._threads)

    def test_ephemeral_port_resolved(self, server):
        host, port = server.address
        assert port != 0


class TestExplainOverHTTP:
    def test_explain_flag_attaches_the_report(self, server):
        status, payload = get(
            server, "/search?q=partnership,+sports&top_k=2&explain=1"
        )
        assert status == 200
        assert payload["results"]
        report = payload["explain"]
        assert report["version"] == 1
        assert report["query"] == "partnership, sports"
        assert set(report) == {
            "version", "query", "generation", "plan", "terms", "daat",
            "index", "provenance", "stages",
        }
        # The serving layer overwrites the system-level provenance
        # default ("none") with what its cache actually did.
        assert report["provenance"]["result_cache"] in ("hit", "miss", "bypass")

    def test_without_the_flag_no_report_is_attached(self, server):
        status, payload = get(server, "/search?q=partnership,+sports")
        assert status == 200
        assert "explain" not in payload

    def test_bad_explain_value_400(self, server):
        status, payload = get(server, "/search?q=a,b&explain=maybe")
        assert status == 400
        assert payload["error"]["code"] == "invalid_parameter"


class TestStatusz:
    def test_statusz_reports_live_serving_state(self, server):
        get(server, "/search?q=partnership,+sports")
        status, payload = get(server, "/statusz")
        assert status == 200
        assert payload["server"] == {"draining": False}
        assert payload["documents"] == 3
        assert payload["generation"] == 1
        assert payload["executor"]["ready"] is True
        assert payload["cache"]["capacity"] > 0
        # This fixture serves an in-memory index; the durable fields
        # are exercised end-to-end in tests/index/test_segments.py.
        assert payload["index"]["durable"] is False
        traces = payload["traces"]
        assert traces["sample_rate"] == 1.0
        assert traces["started"] >= 1
        assert traces["buffered"] >= 1


class TestDebugTraces:
    def test_trace_index_lists_finished_requests_newest_first(self, server):
        get(server, "/search?q=partnership,+sports")
        get(server, "/search?q=alliance,+olympic")
        status, payload = get(server, "/debug/traces")
        assert status == 200
        rows = payload["traces"]
        assert len(rows) >= 2
        assert rows[0]["name"] == "request"
        assert rows[0]["tags"]["query"] == "alliance, olympic"
        assert rows[1]["tags"]["query"] == "partnership, sports"
        for row in rows:
            assert row["trace_id"].startswith("t")
            assert row["duration_ms"] >= 0
            assert row["spans"] >= 1

    def test_trace_detail_returns_the_full_span_tree(self, server):
        _, search = get(server, "/search?q=partnership,+sports")
        trace_id = search["trace_id"]
        status, payload = get(server, f"/debug/traces/{trace_id}")
        assert status == 200
        assert payload["trace_id"] == trace_id
        names = {span["name"] for span in payload["spans"]}
        assert "request" in names
        assert "ask" in names
        for span in payload["spans"]:
            assert span["trace_id"] == trace_id

    def test_unknown_trace_404(self, server):
        status, payload = get(server, "/debug/traces/t-does-not-exist")
        assert status == 404
        assert payload["error"]["code"] == "not_found"


class TestDurableStatusz:
    def test_statusz_and_metrics_report_wal_and_segment_state(self, tmp_path):
        # The acceptance path for background-work telemetry: a durable
        # system behind the server reports live WAL/segment/merge state
        # on /statusz, and the backlog gauges reach /metrics once an
        # index event publishes them.
        system = SearchSystem(data_dir=tmp_path / "data")
        system.add_texts(NEWS)
        with SearchServer.for_system(system, workers=1) as srv:
            system.attach_observability(
                metrics=srv.executor.metrics, tracer=srv.executor.tracer
            )
            post(srv, "/documents", {"id": "live-1", "text": "alpha beta"})

            status, payload = get(srv, "/statusz")
            assert status == 200
            index = payload["index"]
            assert index["durable"] is True
            assert index["wal_depth"] >= 1  # the live add is unsealed
            assert index["memtable_docs"] >= len(NEWS) + 1
            assert "merge_debt_segments" in index
            assert "recovery" in index

            _, _, body = get_raw(srv, "/metrics")
            samples, _helps, types = parse_prometheus(body)
            assert types["repro_wal_depth"] == "gauge"
            assert samples["repro_wal_depth"] >= 1.0
            assert samples["repro_memtable_docs"] >= 1.0
            assert "repro_merge_debt_segments" in samples
