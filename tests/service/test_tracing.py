"""End-to-end tracing: span trees across the live serving path.

Satellite coverage for the observability layer: N parallel HTTP
requests must yield N disjoint, complete traces (every stage spanned,
child durations bounded by their parents), and failure paths must tag
the request root with the degraded/shed outcome taxonomy.
"""

import json
import threading
import time
import urllib.parse
import urllib.request

import pytest

from repro.obs import MemorySink, StructuredLogger
from repro.reliability.faults import FAULTS
from repro.service import QueryExecutor, QueryRejected, SearchServer
from repro.system import SearchSystem

NEWS = [
    ("news-1", "Lenovo announced a marketing partnership with the NBA."),
    ("news-2", "Dell explored an alliance with the Olympic Games organizers."),
    ("news-3", "Acer sponsors a cycling team in a sports partnership."),
    ("news-4", "The Olympic sponsor unveiled a marketing alliance deal."),
    ("news-5", "A sports league signed a computer maker as partner."),
    ("news-6", "The partnership brings sports marketing to the league."),
]

#: Six distinct queries so nothing is served from the result cache and
#: every request exercises the full join path.
QUERIES = [
    "partnership, sports",
    "alliance, games",
    "marketing, partnership",
    "olympic, sponsor",
    "sports, league",
    "marketing, alliance",
]

#: Stages every successfully served, uncached request must record.
EXPECTED_STAGES = {
    "request",
    "queue",
    "batch",
    "cache.get",
    "join",
    "ask",
    "plan",
    "rank",
}


@pytest.fixture(autouse=True)
def clean_faults():
    FAULTS.reset()
    yield
    FAULTS.reset()


@pytest.fixture
def system():
    built = SearchSystem()
    built.add_texts(NEWS)
    return built


def wait_for_traces(tracer, expected, timeout=5.0):
    """The trace finishes in the handler's ``finally`` — possibly after
    the client already read the response — so poll briefly."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        traces = tracer.finished()
        if len(traces) >= expected:
            return traces
        time.sleep(0.01)
    raise AssertionError(
        f"expected {expected} finished traces, got {len(tracer.finished())}"
    )


def assert_tree_is_complete(trace):
    """The acceptance check: a connected span tree whose child
    durations sum to no more than their parent's duration."""
    spans = trace.spans
    ids = {s.span_id for s in spans}
    assert len(ids) == len(spans), "span ids must be unique"
    assert all(s.trace_id == trace.trace_id for s in spans)
    assert all(s.finished for s in spans), [s.name for s in spans if not s.finished]
    roots = [s for s in spans if s.parent_id is None]
    assert roots == [trace.root]
    children_ns = {}
    for s in spans:
        if s.parent_id is not None:
            assert s.parent_id in ids, f"{s.name} parented outside the trace"
            children_ns[s.parent_id] = children_ns.get(s.parent_id, 0) + s.duration_ns
    for s in spans:
        assert children_ns.get(s.span_id, 0) <= s.duration_ns, (
            f"children of {s.name} outlast it"
        )


class TestHttpTracing:
    def test_parallel_requests_produce_disjoint_complete_traces(self, system):
        sink = MemorySink()
        logger = StructuredLogger()
        logger.add_sink(sink)
        with SearchServer.for_system(
            system, workers=3, logger=logger
        ) as server:
            responses = [None] * len(QUERIES)
            errors = []

            def client(index):
                query = urllib.parse.quote(QUERIES[index])
                url = f"{server.url}/search?q={query}"
                try:
                    with urllib.request.urlopen(url, timeout=10) as response:
                        responses[index] = json.loads(response.read())
                except Exception as exc:  # surfaced below
                    errors.append((index, exc))

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(QUERIES))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            traces = wait_for_traces(server.executor.tracer, len(QUERIES))

        by_id = {t.trace_id: t for t in traces}
        assert len(by_id) == len(QUERIES), "traces must be disjoint"

        # Every HTTP response names a finished trace, and that trace is
        # the one carrying its query.
        for payload in responses:
            trace = by_id[payload["trace_id"]]
            assert trace.root.tags["query"] == payload["query"]
            assert trace.root.tags["outcome"] == "ok"
            assert trace.root.tags["transport"] == "http"

        for trace in traces:
            names = {s.name for s in trace.spans}
            assert EXPECTED_STAGES <= names, (
                f"missing stages: {EXPECTED_STAGES - names}"
            )
            assert_tree_is_complete(trace)
            # The in-trace join accounting matches the rank stage tags.
            (rank,) = trace.find("rank")
            assert rank.tags["joins_run"] >= 1
            assert rank.tags["candidates"] >= 1

        # One structured request event per request, joined by trace id.
        events = sink.named("request")
        assert len(events) == len(QUERIES)
        assert {e["trace_id"] for e in events} == set(by_id)
        assert all(e["outcome"] == "ok" for e in events)
        assert all(e["latency_ms"] >= 0 for e in events)


class TestFailureOutcomes:
    def test_degraded_outcomes_tag_join_failure_then_breaker(self, system):
        sink = MemorySink()
        logger = StructuredLogger()
        logger.add_sink(sink)
        with QueryExecutor(
            system,
            workers=1,
            max_batch=1,
            cache_size=0,
            watchdog_interval=0,
            breaker_threshold=1,
            logger=logger,
        ) as executor:
            # First request: the exact join dies -> degraded fallback,
            # and the single-failure threshold opens the breaker.
            FAULTS.arm("join.execute", "error", times=1)
            first = executor.ask(QUERIES[0])
            assert first.degraded
            # Second request: the open breaker sheds the exact join
            # pre-emptively -> degraded without touching the fault.
            second = executor.ask(QUERIES[1])
            assert second.degraded
            traces = wait_for_traces(executor.tracer, 2)

        outcomes = [t.root.tags["outcome"] for t in traces]
        assert outcomes == ["degraded", "degraded"]
        assert traces[0].root.tags["degraded_by"] == "join_failure"
        assert traces[1].root.tags["degraded_by"] == "breaker"
        for trace in traces:
            assert_tree_is_complete(trace)

        events = sink.named("request")
        assert [e["outcome"] for e in events] == ["degraded", "degraded"]
        assert {e["trace_id"] for e in events} == {t.trace_id for t in traces}
        # The reliability layer's events carry trace ids too.
        assert sink.named("fault.injected")
        transitions = sink.named("breaker.transition")
        assert any(
            e["old_state"] == "closed" and e["new_state"] == "open"
            for e in transitions
        )

    def test_full_queue_sheds_with_tagged_trace(self, system):
        sink = MemorySink()
        logger = StructuredLogger()
        logger.add_sink(sink)
        with QueryExecutor(
            system,
            workers=1,
            queue_size=1,
            max_batch=1,
            cache_size=0,
            watchdog_interval=0,
            logger=logger,
        ) as executor:
            # Pin the only worker inside a slow join so submissions pile
            # up behind it until the 1-slot queue overflows.
            FAULTS.arm("join.execute", "delay", delay_s=0.3, times=1)
            accepted = [executor.submit(QUERIES[0])]
            shed = None
            for query in QUERIES[1:] * 3:
                try:
                    accepted.append(executor.submit(query))
                except QueryRejected:
                    shed = query
                    break
            assert shed is not None, "queue never overflowed"
            for future in accepted:
                future.result(timeout=5)

            shed_traces = [
                t
                for t in executor.tracer.finished()
                if t.root.tags.get("outcome") == "shed"
            ]
            assert shed_traces, "shed request left no tagged trace"
            assert shed_traces[0].root.tags["query"] == shed

        events = sink.named("request")
        shed_events = [e for e in events if e["outcome"] == "shed"]
        assert shed_events and shed_events[0]["reason"] == "backlog_full"
        assert shed_events[0]["trace_id"] == shed_traces[0].trace_id
